//! Churn scenarios: random sequences of failures and arrivals.

use crate::error::DynamicError;
use crate::network::{ChangeReport, DynamicNetwork, RepairStrategy};
use rand::Rng;
use serde::{Deserialize, Serialize};
use wagg_geometry::rng::seeded_rng;
use wagg_geometry::{BoundingBox, Point};
use wagg_schedule::SchedulerConfig;

/// Configuration of a churn scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Number of churn events to apply.
    pub events: usize,
    /// Probability that an event is a failure (the rest are arrivals).
    pub failure_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            events: 20,
            failure_probability: 0.5,
            seed: 0,
        }
    }
}

/// One executed churn event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// A node failed.
    Failure {
        /// The failed node.
        node: usize,
        /// What the failure did to the tree and schedule.
        change: ChangeReport,
    },
    /// A node arrived.
    Arrival {
        /// The new node's index.
        node: usize,
        /// What the arrival did to the tree and schedule.
        change: ChangeReport,
    },
}

impl ChurnEvent {
    /// The change report of the event.
    pub fn change(&self) -> &ChangeReport {
        match self {
            ChurnEvent::Failure { change, .. } | ChurnEvent::Arrival { change, .. } => change,
        }
    }
}

/// The accumulated outcome of a churn scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnSummary {
    /// The repair strategy that was exercised.
    pub strategy: RepairStrategy,
    /// Every executed event, in order.
    pub events: Vec<ChurnEvent>,
    /// Total links changed across all events.
    pub total_links_changed: usize,
    /// Mean links changed per event.
    pub mean_links_changed: f64,
    /// The largest schedule length observed after any event.
    pub max_slots: usize,
    /// The tree stretch after the final event (1.0 = still an MST).
    pub final_stretch: f64,
    /// Number of alive nodes at the end.
    pub final_alive: usize,
}

/// Applies a random sequence of failures and arrivals to a fresh network and
/// summarises the churn cost.
///
/// Failures pick a uniformly random alive non-sink node; arrivals place the
/// new node uniformly inside the bounding box of the initial deployment.
/// Events that would be invalid (e.g. a failure when only two nodes remain)
/// are converted into arrivals.
///
/// # Errors
///
/// Returns construction errors for malformed initial deployments.
///
/// # Examples
///
/// ```
/// use wagg_dynamic::{run_churn_scenario, ChurnConfig, RepairStrategy};
/// use wagg_instances::random::uniform_square;
/// use wagg_schedule::{PowerMode, SchedulerConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let inst = uniform_square(30, 100.0, 4);
/// let summary = run_churn_scenario(
///     inst.points.clone(),
///     inst.sink,
///     SchedulerConfig::new(PowerMode::GlobalControl),
///     RepairStrategy::LocalReattach,
///     ChurnConfig { events: 10, failure_probability: 0.5, seed: 1 },
/// )?;
/// assert_eq!(summary.events.len(), 10);
/// assert!(summary.final_stretch >= 1.0 - 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn run_churn_scenario(
    points: Vec<Point>,
    sink: usize,
    config: SchedulerConfig,
    strategy: RepairStrategy,
    churn: ChurnConfig,
) -> Result<ChurnSummary, DynamicError> {
    let bbox = BoundingBox::of_points(&points).unwrap_or(BoundingBox::new(0.0, 0.0, 1.0, 1.0));
    let mut net = DynamicNetwork::new(points, sink, config, strategy)?;
    let mut rng = seeded_rng(churn.seed);
    let mut events = Vec::with_capacity(churn.events);

    for _ in 0..churn.events {
        let want_failure = rng.gen::<f64>() < churn.failure_probability;
        let alive_non_sink: Vec<usize> = (0..net.node_count())
            .filter(|&v| net.is_alive(v) && v != net.sink())
            .collect();
        let event = if want_failure && alive_non_sink.len() > 1 && net.alive_count() > 2 {
            let victim = alive_non_sink[rng.gen_range(0..alive_non_sink.len())];
            let change = net.fail_node(victim)?;
            ChurnEvent::Failure {
                node: victim,
                change,
            }
        } else {
            // Arrival: sample positions until one does not coincide with an
            // alive node (coincidences are measure-zero but cheap to guard).
            loop {
                let position = Point::new(
                    rng.gen_range(bbox.min_x..=bbox.max_x.max(bbox.min_x + 1.0)),
                    rng.gen_range(bbox.min_y..=bbox.max_y.max(bbox.min_y + 1.0)),
                );
                match net.add_node(position) {
                    Ok((node, change)) => break ChurnEvent::Arrival { node, change },
                    Err(DynamicError::CoincidentNode { .. }) => continue,
                    Err(e) => return Err(e),
                }
            }
        };
        events.push(event);
    }

    let total_links_changed: usize = events.iter().map(|e| e.change().links_changed).sum();
    let max_slots = events
        .iter()
        .map(|e| e.change().slots_after)
        .max()
        .unwrap_or(net.schedule_slots());
    Ok(ChurnSummary {
        strategy,
        mean_links_changed: if events.is_empty() {
            0.0
        } else {
            total_links_changed as f64 / events.len() as f64
        },
        total_links_changed,
        max_slots,
        final_stretch: net.stretch(),
        final_alive: net.alive_count(),
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_instances::random::uniform_square;
    use wagg_schedule::PowerMode;

    fn scenario(strategy: RepairStrategy, seed: u64) -> ChurnSummary {
        let inst = uniform_square(35, 120.0, 17);
        run_churn_scenario(
            inst.points,
            inst.sink,
            SchedulerConfig::new(PowerMode::GlobalControl),
            strategy,
            ChurnConfig {
                events: 15,
                failure_probability: 0.6,
                seed,
            },
        )
        .unwrap()
    }

    #[test]
    fn scenarios_execute_every_event() {
        let summary = scenario(RepairStrategy::LocalReattach, 2);
        assert_eq!(summary.events.len(), 15);
        assert_eq!(summary.strategy, RepairStrategy::LocalReattach);
        assert!(summary.total_links_changed >= 15);
        assert!(summary.mean_links_changed >= 1.0);
        assert!(summary.max_slots >= 1);
        assert!(summary.final_alive >= 2);
        assert!(summary.final_stretch >= 1.0 - 1e-9);
    }

    #[test]
    fn rebuild_scenarios_keep_the_tree_optimal() {
        let summary = scenario(RepairStrategy::Rebuild, 5);
        assert!((summary.final_stretch - 1.0).abs() < 1e-9);
        for event in &summary.events {
            assert!((event.change().stretch - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn scenarios_are_deterministic_given_the_seed() {
        let a = scenario(RepairStrategy::LocalReattach, 9);
        let b = scenario(RepairStrategy::LocalReattach, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn pure_arrival_scenarios_grow_the_network() {
        let inst = uniform_square(20, 80.0, 3);
        let summary = run_churn_scenario(
            inst.points,
            inst.sink,
            SchedulerConfig::new(PowerMode::mean_oblivious()),
            RepairStrategy::LocalReattach,
            ChurnConfig {
                events: 8,
                failure_probability: 0.0,
                seed: 4,
            },
        )
        .unwrap();
        assert_eq!(summary.final_alive, 28);
        assert!(summary
            .events
            .iter()
            .all(|e| matches!(e, ChurnEvent::Arrival { .. })));
    }
}
