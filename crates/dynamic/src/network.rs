//! The dynamic convergecast network.

use crate::error::DynamicError;
use serde::{Deserialize, Serialize};
use std::fmt;
use wagg_geometry::Point;
use wagg_mst::euclidean_mst;
use wagg_schedule::{ScheduleReport, SchedulerConfig, SolveReport};
use wagg_session::{Backend, RepairPolicy, Session};
use wagg_sinr::{Link, NodeId};

/// How the tree is repaired after a failure or arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairStrategy {
    /// Local repair: orphaned children (or the new node) attach to the
    /// nearest alive node that currently reaches the sink. Cheap — the
    /// change is confined to the failed node's neighbourhood — but the tree
    /// slowly drifts away from the true MST.
    LocalReattach,
    /// Full rebuild: recompute the MST of the alive nodes from scratch.
    /// Expensive in churn (many links may change) but the tree stays optimal.
    Rebuild,
}

impl fmt::Display for RepairStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairStrategy::LocalReattach => write!(f, "local reattach"),
            RepairStrategy::Rebuild => write!(f, "full rebuild"),
        }
    }
}

/// What one failure or arrival did to the tree and its schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChangeReport {
    /// Human-readable description of the event ("fail 17", "add 40").
    pub event: String,
    /// Size of the symmetric difference between the old and new edge sets.
    pub links_changed: usize,
    /// Schedule length before the event.
    pub slots_before: usize,
    /// Schedule length after the event and repair.
    pub slots_after: usize,
    /// Number of alive nodes after the event.
    pub alive_nodes: usize,
    /// Total tree length divided by the MST length of the alive nodes (1.0
    /// means the repaired tree is still an MST).
    pub stretch: f64,
}

/// A convergecast tree under churn: nodes fail and arrive, the tree is
/// repaired with the configured strategy, and the schedule is recomputed
/// after every event.
///
/// Interference state is **not** rebuilt from scratch per event: the network
/// schedules through a [`Session`] on the incremental engine backend
/// (`Backend::Engine`) mirroring the current tree links, and each repair
/// diffs the old and new parent assignments and applies only the per-link
/// insert/remove events for the edges that actually changed. The session's
/// engine incrementally maintains the spatial grids, the conflict adjacency
/// and the path-loss state, and rescheduling goes through
/// [`Session::solve`], which reuses all of it.
///
/// See the [crate documentation](crate) for an end-to-end example.
///
/// `DynamicNetwork` is deliberately not `Clone`: the session's engine
/// backend owns incrementally maintained state behind a trait object. To
/// snapshot a network, rebuild one from the same points/sink/config and
/// replay the events.
#[derive(Debug)]
pub struct DynamicNetwork {
    points: Vec<Point>,
    alive: Vec<bool>,
    parent: Vec<Option<usize>>,
    sink: usize,
    strategy: RepairStrategy,
    report: SolveReport,
    /// The scheduling session (incremental engine backend) over the tree's
    /// uplinks — the single source of the scheduler configuration.
    session: Session,
    /// The parent assignment currently mirrored into the session.
    session_parent: Vec<Option<usize>>,
    /// Session key of each node's uplink (child node → key).
    uplink_key: Vec<Option<u64>>,
}

impl DynamicNetwork {
    /// Builds the initial network: the MST of all points, oriented towards
    /// the sink, scheduled under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicError::TooFewNodes`], [`DynamicError::SinkOutOfRange`]
    /// or tree-construction errors for malformed inputs.
    pub fn new(
        points: Vec<Point>,
        sink: usize,
        config: SchedulerConfig,
        strategy: RepairStrategy,
    ) -> Result<Self, DynamicError> {
        Self::with_slot_repair(points, sink, config, strategy, RepairPolicy::default())
    }

    /// Like [`DynamicNetwork::new`], but with warm-start **slot** repair
    /// turned on in the underlying session: after each tree repair, the
    /// reschedule re-places only the links the parent diff actually touched
    /// instead of recoloring from scratch (falling back to a full recolor
    /// past `policy`'s drift watermark). Tree repair and slot repair are
    /// independent axes — either [`RepairStrategy`] composes with either
    /// policy.
    pub fn with_slot_repair(
        points: Vec<Point>,
        sink: usize,
        config: SchedulerConfig,
        strategy: RepairStrategy,
        policy: RepairPolicy,
    ) -> Result<Self, DynamicError> {
        if points.len() < 2 {
            return Err(DynamicError::TooFewNodes {
                found: points.len(),
            });
        }
        if sink >= points.len() {
            return Err(DynamicError::SinkOutOfRange {
                sink,
                nodes: points.len(),
            });
        }
        let n = points.len();
        let mut session = Session::builder()
            .scheduler(config)
            .backend(Backend::Engine)
            .repair(policy)
            .build();
        let report = session.solve();
        let mut net = DynamicNetwork {
            points,
            alive: vec![true; n],
            parent: vec![None; n],
            sink,
            strategy,
            report,
            session,
            session_parent: vec![None; n],
            uplink_key: vec![None; n],
        };
        net.rebuild_tree()?;
        net.reschedule();
        Ok(net)
    }

    /// The repair strategy in use.
    pub fn strategy(&self) -> RepairStrategy {
        self.strategy
    }

    /// The sink node.
    pub fn sink(&self) -> usize {
        self.sink
    }

    /// Number of alive nodes.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Total number of node slots ever created (alive and failed); node
    /// indices always lie in `0..node_count()`.
    pub fn node_count(&self) -> usize {
        self.points.len()
    }

    /// Whether a node is currently alive.
    pub fn is_alive(&self, node: usize) -> bool {
        self.alive.get(node).copied().unwrap_or(false)
    }

    /// The scheduler configuration (owned by the session).
    pub fn config(&self) -> SchedulerConfig {
        self.session.config().scheduler
    }

    /// The current convergecast links (one per alive non-sink node), in the
    /// session's vertex order — the order the current schedule indexes into.
    pub fn links(&self) -> Vec<Link> {
        self.session.links()
    }

    /// The scheduling session behind the network (event accounting, the
    /// resolved backend).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The latest schedule report (the classic diagnostics; see
    /// [`DynamicNetwork::solve_report`] for backend provenance).
    pub fn schedule_report(&self) -> &ScheduleReport {
        &self.report.report
    }

    /// The latest unified solve report.
    pub fn solve_report(&self) -> &SolveReport {
        &self.report
    }

    /// The current schedule length.
    pub fn schedule_slots(&self) -> usize {
        self.report.slots()
    }

    /// Whether every alive non-sink node reaches the sink through alive
    /// parents without cycles (the repair invariant; always true between
    /// operations).
    pub fn is_valid_tree(&self) -> bool {
        let n = self.points.len();
        (0..n)
            .filter(|&v| self.alive[v] && v != self.sink)
            .all(|v| self.reaches_sink(v))
            && self
                .parent
                .iter()
                .enumerate()
                .filter(|(v, _)| self.alive[*v] && *v != self.sink)
                .all(|(_, p)| p.map(|p| self.alive[p]).unwrap_or(false))
    }

    /// Total length of the current tree divided by the length of the true MST
    /// of the alive nodes (1.0 for an optimal tree).
    pub fn stretch(&self) -> f64 {
        let alive_points: Vec<Point> = self
            .points
            .iter()
            .zip(&self.alive)
            .filter_map(|(p, &a)| a.then_some(*p))
            .collect();
        if alive_points.len() < 2 {
            return 1.0;
        }
        let current: f64 = self.links().iter().map(Link::length).sum();
        match euclidean_mst(&alive_points) {
            Ok(mst) => {
                let optimal = mst.total_length();
                if optimal <= 0.0 {
                    1.0
                } else {
                    current / optimal
                }
            }
            Err(_) => 1.0,
        }
    }

    /// Fails a node and repairs the tree with the configured strategy.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicError::CannotFailSink`], [`DynamicError::UnknownNode`],
    /// [`DynamicError::AlreadyFailed`] or [`DynamicError::TooFewNodes`] (when
    /// fewer than two alive nodes would remain).
    pub fn fail_node(&mut self, node: usize) -> Result<ChangeReport, DynamicError> {
        if node >= self.points.len() {
            return Err(DynamicError::UnknownNode { node });
        }
        if node == self.sink {
            return Err(DynamicError::CannotFailSink);
        }
        if !self.alive[node] {
            return Err(DynamicError::AlreadyFailed { node });
        }
        if self.alive_count() <= 2 {
            return Err(DynamicError::TooFewNodes {
                found: self.alive_count() - 1,
            });
        }
        let old_edges = self.edge_set();
        let slots_before = self.schedule_slots();

        self.alive[node] = false;
        self.parent[node] = None;
        let orphans: Vec<usize> = (0..self.points.len())
            .filter(|&v| self.alive[v] && self.parent[v] == Some(node))
            .collect();
        for &c in &orphans {
            self.parent[c] = None;
        }
        match self.strategy {
            RepairStrategy::LocalReattach => {
                for &c in &orphans {
                    let target = self.nearest_sink_reaching(c);
                    self.parent[c] = Some(target);
                }
            }
            RepairStrategy::Rebuild => self.rebuild_tree()?,
        }
        self.reschedule();
        Ok(self.change_report(format!("fail {node}"), &old_edges, slots_before))
    }

    /// Adds a node at the given position and attaches it to the tree.
    ///
    /// Returns the index of the new node together with the change report.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicError::CoincidentNode`] when the position coincides
    /// with an alive node, and tree errors for the rebuild strategy.
    pub fn add_node(&mut self, position: Point) -> Result<(usize, ChangeReport), DynamicError> {
        if let Some(existing) = (0..self.points.len())
            .find(|&v| self.alive[v] && self.points[v].distance(position) == 0.0)
        {
            return Err(DynamicError::CoincidentNode { existing });
        }
        let old_edges = self.edge_set();
        let slots_before = self.schedule_slots();

        let new_index = self.points.len();
        self.points.push(position);
        self.alive.push(true);
        self.parent.push(None);
        match self.strategy {
            RepairStrategy::LocalReattach => {
                let target = self.nearest_sink_reaching(new_index);
                self.parent[new_index] = Some(target);
            }
            RepairStrategy::Rebuild => self.rebuild_tree()?,
        }
        self.reschedule();
        let report = self.change_report(format!("add {new_index}"), &old_edges, slots_before);
        Ok((new_index, report))
    }

    fn change_report(
        &self,
        event: String,
        old_edges: &[(usize, usize)],
        slots_before: usize,
    ) -> ChangeReport {
        let new_edges = self.edge_set();
        let removed = old_edges.iter().filter(|e| !new_edges.contains(e)).count();
        let added = new_edges.iter().filter(|e| !old_edges.contains(e)).count();
        ChangeReport {
            event,
            links_changed: removed + added,
            slots_before,
            slots_after: self.schedule_slots(),
            alive_nodes: self.alive_count(),
            stretch: self.stretch(),
        }
    }

    fn edge_set(&self) -> Vec<(usize, usize)> {
        self.links()
            .iter()
            .map(|l| {
                (
                    l.sender_node.expect("links carry node ids").index(),
                    l.receiver_node.expect("links carry node ids").index(),
                )
            })
            .collect()
    }

    fn reaches_sink(&self, start: usize) -> bool {
        let mut cur = start;
        let mut steps = 0;
        while cur != self.sink {
            match self.parent[cur] {
                Some(p) if self.alive[p] => cur = p,
                _ => return false,
            }
            steps += 1;
            if steps > self.points.len() {
                return false;
            }
        }
        true
    }

    /// The alive node nearest to `from` that currently reaches the sink
    /// (never `from` itself; the sink always qualifies).
    fn nearest_sink_reaching(&self, from: usize) -> usize {
        (0..self.points.len())
            .filter(|&u| u != from && self.alive[u] && self.reaches_sink(u))
            .min_by(|&a, &b| {
                self.points[a]
                    .distance(self.points[from])
                    .partial_cmp(&self.points[b].distance(self.points[from]))
                    .expect("finite distances")
            })
            .expect("the sink is alive and reaches itself")
    }

    fn rebuild_tree(&mut self) -> Result<(), DynamicError> {
        let alive_indices: Vec<usize> = (0..self.points.len()).filter(|&v| self.alive[v]).collect();
        if alive_indices.len() < 2 {
            return Err(DynamicError::TooFewNodes {
                found: alive_indices.len(),
            });
        }
        let alive_points: Vec<Point> = alive_indices.iter().map(|&v| self.points[v]).collect();
        let mst = euclidean_mst(&alive_points)?;
        let sink_local = alive_indices
            .iter()
            .position(|&v| v == self.sink)
            .expect("the sink is alive");
        let links = mst.try_orient_towards(sink_local)?;
        for &v in &alive_indices {
            self.parent[v] = None;
        }
        for link in links {
            let s = alive_indices[link.sender_node.expect("oriented links carry ids").index()];
            let r = alive_indices[link
                .receiver_node
                .expect("oriented links carry ids")
                .index()];
            self.parent[s] = Some(r);
        }
        Ok(())
    }

    /// Mirrors the current parent assignment into the session by **diffing**:
    /// only uplinks that actually changed are removed/inserted, so the
    /// engine backend's incremental maintenance cost tracks the size of the
    /// repair, not the network. Returns the number of uplinks touched.
    fn sync_session(&mut self) -> usize {
        let n = self.points.len();
        self.session_parent.resize(n, None);
        self.uplink_key.resize(n, None);
        let mut touched = 0;
        for v in 0..n {
            let desired = if self.alive[v] && v != self.sink {
                self.parent[v]
            } else {
                None
            };
            if desired == self.session_parent[v] {
                continue;
            }
            if let Some(key) = self.uplink_key[v].take() {
                self.session
                    .remove(key)
                    .expect("tracked uplink key is live");
            }
            if let Some(p) = desired {
                let key = self.session.insert_with_nodes(
                    self.points[v],
                    self.points[p],
                    NodeId(v),
                    NodeId(p),
                );
                self.uplink_key[v] = Some(key);
            }
            self.session_parent[v] = desired;
            touched += 1;
        }
        touched
    }

    fn reschedule(&mut self) {
        self.sync_session();
        self.report = self.session.solve();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_instances::random::{grid, uniform_square};
    use wagg_schedule::PowerMode;

    fn network(n: usize, seed: u64, strategy: RepairStrategy) -> DynamicNetwork {
        let inst = uniform_square(n, 120.0, seed);
        DynamicNetwork::new(
            inst.points,
            inst.sink,
            SchedulerConfig::new(PowerMode::GlobalControl),
            strategy,
        )
        .unwrap()
    }

    #[test]
    fn construction_rejects_malformed_inputs() {
        assert!(matches!(
            DynamicNetwork::new(
                vec![Point::origin()],
                0,
                SchedulerConfig::default(),
                RepairStrategy::Rebuild
            ),
            Err(DynamicError::TooFewNodes { found: 1 })
        ));
        assert!(matches!(
            DynamicNetwork::new(
                vec![Point::origin(), Point::new(1.0, 0.0)],
                4,
                SchedulerConfig::default(),
                RepairStrategy::Rebuild
            ),
            Err(DynamicError::SinkOutOfRange { sink: 4, nodes: 2 })
        ));
    }

    #[test]
    fn initial_tree_is_the_mst() {
        let net = network(30, 3, RepairStrategy::LocalReattach);
        assert!(net.is_valid_tree());
        assert!((net.stretch() - 1.0).abs() < 1e-9);
        assert_eq!(net.links().len(), 29);
        assert_eq!(net.alive_count(), 30);
    }

    #[test]
    fn sink_and_dead_and_unknown_failures_are_rejected() {
        let mut net = network(10, 1, RepairStrategy::LocalReattach);
        assert_eq!(net.fail_node(net.sink()), Err(DynamicError::CannotFailSink));
        assert!(matches!(
            net.fail_node(99),
            Err(DynamicError::UnknownNode { node: 99 })
        ));
        let victim = (net.sink() + 1) % 10;
        net.fail_node(victim).unwrap();
        assert_eq!(
            net.fail_node(victim),
            Err(DynamicError::AlreadyFailed { node: victim })
        );
    }

    #[test]
    fn local_repair_keeps_the_tree_spanning_and_schedulable() {
        let mut net = network(40, 7, RepairStrategy::LocalReattach);
        for k in 0..10 {
            let victim = (net.sink() + 1 + 3 * k) % 40;
            if !net.is_alive(victim) || victim == net.sink() {
                continue;
            }
            let report = net.fail_node(victim).unwrap();
            assert!(net.is_valid_tree(), "tree broken after failing {victim}");
            assert!(report.links_changed >= 1);
            assert_eq!(report.alive_nodes, net.alive_count());
            assert!(report.stretch >= 1.0 - 1e-9);
            assert_eq!(net.links().len(), net.alive_count() - 1);
            // The recomputed schedule is genuinely feasible.
            let links = net.links();
            let cfg = SchedulerConfig::new(PowerMode::GlobalControl);
            assert!(net
                .schedule_report()
                .schedule
                .verify(&links, &cfg.model, cfg.mode));
        }
    }

    #[test]
    fn rebuild_repair_keeps_the_tree_optimal() {
        let mut net = network(35, 11, RepairStrategy::Rebuild);
        for k in 0..8 {
            let victim = (net.sink() + 2 + 4 * k) % 35;
            if !net.is_alive(victim) || victim == net.sink() {
                continue;
            }
            net.fail_node(victim).unwrap();
            assert!(net.is_valid_tree());
            assert!(
                (net.stretch() - 1.0).abs() < 1e-9,
                "rebuild drifted from the MST"
            );
        }
    }

    #[test]
    fn local_repair_changes_fewer_links_than_rebuild_on_the_same_failure() {
        // Starting from identical trees, failing the same node changes exactly
        // 2·deg − 1 edges under local repair, which is a lower bound on what any
        // tree replacement (including the rebuilt MST) must change.
        let mut local = network(40, 13, RepairStrategy::LocalReattach);
        let mut rebuild = network(40, 13, RepairStrategy::Rebuild);
        let victim = (local.sink() + 7) % 40;
        let local_change = local.fail_node(victim).unwrap();
        let rebuild_change = rebuild.fail_node(victim).unwrap();
        assert!(
            local_change.links_changed <= rebuild_change.links_changed,
            "local repair changed {} links, rebuild {}",
            local_change.links_changed,
            rebuild_change.links_changed
        );
        // Further churn: local repair may drift from the MST, rebuild never does.
        for &victim in &[5usize, 12, 23, 31, 8] {
            if victim == local.sink() || !local.is_alive(victim) {
                continue;
            }
            local.fail_node(victim).unwrap();
            rebuild.fail_node(victim).unwrap();
        }
        assert!((rebuild.stretch() - 1.0).abs() < 1e-9);
        assert!(local.stretch() >= rebuild.stretch() - 1e-9);
    }

    #[test]
    fn additions_attach_to_the_tree() {
        let mut net = network(20, 5, RepairStrategy::LocalReattach);
        let (idx, report) = net.add_node(Point::new(500.0, 500.0)).unwrap();
        assert_eq!(idx, 20);
        assert!(net.is_alive(idx));
        assert!(net.is_valid_tree());
        assert_eq!(report.alive_nodes, 21);
        assert_eq!(report.links_changed, 1);
        // Coincident additions are rejected.
        assert!(matches!(
            net.add_node(Point::new(500.0, 500.0)),
            Err(DynamicError::CoincidentNode { existing }) if existing == 20
        ));
    }

    #[test]
    fn failing_down_to_two_nodes_is_the_limit() {
        let inst = grid(2, 2, 1.0);
        let mut net = DynamicNetwork::new(
            inst.points,
            0,
            SchedulerConfig::new(PowerMode::Uniform),
            RepairStrategy::LocalReattach,
        )
        .unwrap();
        let first = (1..4).find(|&v| net.is_alive(v)).unwrap();
        net.fail_node(first).unwrap();
        let second = (1..4).find(|&v| net.is_alive(v)).unwrap();
        net.fail_node(second).unwrap();
        let third = (1..4).find(|&v| net.is_alive(v)).unwrap();
        assert!(matches!(
            net.fail_node(third),
            Err(DynamicError::TooFewNodes { found: 1 })
        ));
    }

    #[test]
    fn churn_repair_flows_through_the_session() {
        let mut net = network(30, 19, RepairStrategy::LocalReattach);
        assert_eq!(net.session().len(), 29); // one uplink per non-sink node
        assert_eq!(
            net.session().backend_kind(),
            wagg_schedule::BackendKind::Engine
        );
        let before = net.session().stats();
        let victim = (net.sink() + 3) % 30;
        let report = net.fail_node(victim).unwrap();
        let after = net.session().stats();
        // The repair was applied as session events, and only for the edges
        // the repair actually changed (victim's uplink + each orphan's), not
        // as a from-scratch rebuild of all ~29 links.
        assert!(after.removals > before.removals);
        assert_eq!(
            after.inserts - before.inserts + (after.removals - before.removals),
            report.links_changed,
            "session events should match the repair's changed links"
        );
        assert_eq!(net.session().len(), net.alive_count() - 1);
        // The session-produced schedule stays verifiable against the links.
        let links = net.links();
        assert!(net.schedule_report().schedule.verify(
            &links,
            &net.config().model,
            net.config().mode
        ));
        assert_eq!(
            net.solve_report().backend,
            wagg_schedule::BackendKind::Engine
        );
    }

    #[test]
    fn strategy_display_is_informative() {
        assert_eq!(RepairStrategy::LocalReattach.to_string(), "local reattach");
        assert_eq!(RepairStrategy::Rebuild.to_string(), "full rebuild");
    }
}
