//! Error type for the dynamic-network layer.

use std::error::Error;
use std::fmt;

/// Errors raised by dynamic-network operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DynamicError {
    /// Fewer than two alive nodes would remain, or were supplied initially.
    TooFewNodes {
        /// Number of (alive) nodes involved.
        found: usize,
    },
    /// The sink index does not refer to a node.
    SinkOutOfRange {
        /// The offending sink index.
        sink: usize,
        /// Number of nodes.
        nodes: usize,
    },
    /// The sink cannot fail.
    CannotFailSink,
    /// The referenced node does not exist.
    UnknownNode {
        /// The offending node index.
        node: usize,
    },
    /// The referenced node has already failed.
    AlreadyFailed {
        /// The offending node index.
        node: usize,
    },
    /// A new node coincides with an existing alive node.
    CoincidentNode {
        /// The existing node it collides with.
        existing: usize,
    },
    /// Rebuilding the tree failed (degenerate alive pointset).
    Tree(wagg_mst::MstError),
}

impl fmt::Display for DynamicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynamicError::TooFewNodes { found } => {
                write!(f, "need at least two alive nodes, found {found}")
            }
            DynamicError::SinkOutOfRange { sink, nodes } => {
                write!(f, "sink index {sink} is out of range for {nodes} nodes")
            }
            DynamicError::CannotFailSink => write!(f, "the sink node cannot fail"),
            DynamicError::UnknownNode { node } => write!(f, "node {node} does not exist"),
            DynamicError::AlreadyFailed { node } => {
                write!(f, "node {node} has already failed")
            }
            DynamicError::CoincidentNode { existing } => {
                write!(f, "new node coincides with existing node {existing}")
            }
            DynamicError::Tree(e) => write!(f, "tree reconstruction failed: {e}"),
        }
    }
}

impl Error for DynamicError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DynamicError::Tree(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wagg_mst::MstError> for DynamicError {
    fn from(e: wagg_mst::MstError) -> Self {
        DynamicError::Tree(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let errors = [
            DynamicError::TooFewNodes { found: 1 },
            DynamicError::SinkOutOfRange { sink: 4, nodes: 3 },
            DynamicError::CannotFailSink,
            DynamicError::UnknownNode { node: 12 },
            DynamicError::AlreadyFailed { node: 3 },
            DynamicError::CoincidentNode { existing: 7 },
            DynamicError::Tree(wagg_mst::MstError::TooFewPoints { found: 1 }),
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn tree_errors_expose_their_source() {
        let err: DynamicError = wagg_mst::MstError::TooFewPoints { found: 0 }.into();
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync_and_static() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<DynamicError>();
    }
}
