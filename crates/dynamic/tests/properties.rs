//! Property-based tests for the dynamic-network layer: under arbitrary churn
//! the tree stays a spanning convergecast of the alive nodes and the schedule
//! stays a feasible partition.

use proptest::prelude::*;
use wagg_dynamic::{DynamicNetwork, RepairPolicy, RepairStrategy};
use wagg_instances::random::uniform_square;
use wagg_schedule::{PowerMode, SchedulerConfig};

fn churn_inputs() -> impl Strategy<Value = (usize, u64, Vec<u8>, RepairStrategy)> {
    (
        10usize..40,
        0u64..300,
        proptest::collection::vec(0u8..=255, 1..12),
        prop_oneof![
            Just(RepairStrategy::LocalReattach),
            Just(RepairStrategy::Rebuild)
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn churn_preserves_the_repair_invariants((n, seed, ops, strategy) in churn_inputs()) {
        let inst = uniform_square(n, 150.0, seed);
        let config = SchedulerConfig::new(PowerMode::GlobalControl);
        let mut net = DynamicNetwork::new(inst.points.clone(), inst.sink, config, strategy).unwrap();

        for (step, op) in ops.iter().enumerate() {
            if op % 3 == 0 && net.alive_count() > 3 {
                // Fail a pseudo-randomly chosen alive non-sink node.
                let candidates: Vec<usize> = (0..net.node_count())
                    .filter(|&v| net.is_alive(v) && v != net.sink())
                    .collect();
                let victim = candidates[(*op as usize + step) % candidates.len()];
                let change = net.fail_node(victim).unwrap();
                prop_assert!(change.links_changed >= 1);
            } else {
                let position = wagg_geometry::Point::new(
                    200.0 + step as f64 * 7.3 + *op as f64,
                    150.0 - step as f64 * 3.1,
                );
                let _ = net.add_node(position).unwrap();
            }
            // Invariants after every event.
            prop_assert!(net.is_valid_tree());
            prop_assert_eq!(net.links().len(), net.alive_count() - 1);
            prop_assert!(net.stretch() >= 1.0 - 1e-9);
            let links = net.links();
            prop_assert!(net.schedule_report().schedule.is_partition(links.len()));
            prop_assert!(net.schedule_report().schedule.verify(&links, &config.model, config.mode));
            if strategy == RepairStrategy::Rebuild {
                prop_assert!((net.stretch() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn churn_with_slot_repair_stays_feasible((n, seed, ops, strategy) in churn_inputs()) {
        // Same invariants with warm-start slot repair switched on: the
        // reschedule after each tree repair re-places only the diffed
        // uplinks, and the result must still be a feasible partition.
        let inst = uniform_square(n, 150.0, seed);
        let config = SchedulerConfig::new(PowerMode::mean_oblivious());
        let mut net = DynamicNetwork::with_slot_repair(
            inst.points.clone(),
            inst.sink,
            config,
            strategy,
            RepairPolicy::enabled(),
        )
        .unwrap();

        for (step, op) in ops.iter().enumerate() {
            if op % 3 == 0 && net.alive_count() > 3 {
                let candidates: Vec<usize> = (0..net.node_count())
                    .filter(|&v| net.is_alive(v) && v != net.sink())
                    .collect();
                let victim = candidates[(*op as usize + step) % candidates.len()];
                net.fail_node(victim).unwrap();
            } else {
                let position = wagg_geometry::Point::new(
                    200.0 + step as f64 * 7.3 + *op as f64,
                    150.0 - step as f64 * 3.1,
                );
                let _ = net.add_node(position).unwrap();
            }
            prop_assert!(net.is_valid_tree());
            let links = net.links();
            prop_assert!(net.schedule_report().schedule.is_partition(links.len()));
            prop_assert!(net.schedule_report().schedule.verify(&links, &config.model, config.mode));
        }
    }
}
