//! Aggregation schedules: from a link set (typically an oriented MST) to a verified
//! TDMA schedule, under each of the paper's power-control modes.
//!
//! The pipeline mirrors Sec. 3 of the paper:
//!
//! 1. pick a [`PowerMode`] — uniform power, an oblivious scheme `P_τ`, or global
//!    power control;
//! 2. build the matching conflict graph (`G_γ`, `G^δ_γ` or `G_{γ log}`) over the
//!    links and color it greedily in non-increasing length order
//!    ([`scheduler::solve_static`], the kernel behind the session facade's
//!    static backend);
//! 3. **verify** every color class against the actual SINR condition for that power
//!    mode, splitting any class that the (constant-factor) conflict graph let
//!    through but the physical model rejects — so the returned [`Schedule`] is
//!    always genuinely feasible slot by slot;
//! 4. the schedule's [`rate`](Schedule::rate) is the reciprocal of its length, as
//!    for any periodic coloring schedule.
//!
//! The [`multicolor`] module covers the other side of Sec. 4: periodic schedules
//! that beat proper colorings (the 5-cycle example with rate `2/5` vs `1/3`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod multicolor;
pub mod power_mode;
pub mod repair;
pub mod report;
pub mod schedule;
pub mod scheduler;

pub use power_mode::PowerMode;
pub use repair::{
    capture_budgets, solve_repair, solve_repair_traced, CacheJudge, RepairDecision, RepairOutcome,
    RepairPlacement, RepairStats, SlotJudge,
};
pub use report::{BackendKind, ShardingStats, SolveReport};
pub use schedule::Schedule;
#[allow(deprecated)]
pub use scheduler::{schedule_links, schedule_mst};
pub use scheduler::{
    schedule_prebuilt, schedule_prebuilt_traced, solve_static, solve_static_traced,
    split_class_into_feasible, ScheduleReport, SchedulerConfig,
};
