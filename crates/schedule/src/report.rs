//! The unified solve report: one output type for every scheduling backend.
//!
//! The workspace grew four generations of scheduling machinery (the static
//! kernel, the incremental engine, the sharded pipeline, the hierarchical
//! verifier) and with them two incompatible report types — the static/engine
//! paths returned [`ScheduleReport`], the sharded path its own wrapper. The
//! [`SolveReport`] defined here is the single outcome type the session facade
//! (`wagg_core::session::Session`) returns from every backend: the full
//! [`ScheduleReport`] (nothing is dropped), the backend that produced it, and
//! the sharding accounting when a decomposition ran.
//!
//! Both legacy report types convert in losslessly:
//!
//! * [`ScheduleReport`] via `From` (static/engine provenance is supplied by
//!   the converting backend; the plain `From` impl tags
//!   [`BackendKind::Static`]),
//! * `wagg_partition::ShardedReport` via the `From` impl living in
//!   `wagg-partition` (tags [`BackendKind::Sharded`] and fills
//!   [`ShardingStats`]).
//!
//! [`SolveReport::summary`] renders the one-line report format every bench
//! and profiling binary prints, and [`SolveReport::to_json`] /
//! [`SolveReport::from_json`] round-trip the report through a self-contained
//! JSON encoding (the offline `serde` shim is a no-op, so the round-trip is
//! implemented here and unit-tested against itself).

use crate::power_mode::PowerMode;
use crate::repair::{RepairDecision, RepairStats};
use crate::schedule::Schedule;
use crate::scheduler::ScheduleReport;
use serde::{Deserialize, Serialize};
use std::fmt;
use wagg_obs::{
    BackendTag, CounterMetric, HealthReport, HealthSignal, Histogram, HistogramMetric, Metrics,
    PhaseMetric, RepairTag, SignalKind,
};

/// Which execution strategy produced a [`SolveReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// One global conflict graph, built and colored from scratch.
    Static,
    /// The incrementally maintained interference engine.
    Engine,
    /// The spatially sharded pipeline (tiling, per-shard coloring,
    /// stitching, certified verification).
    Sharded,
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendKind::Static => write!(f, "static"),
            BackendKind::Engine => write!(f, "engine"),
            BackendKind::Sharded => write!(f, "sharded"),
        }
    }
}

impl From<BackendKind> for BackendTag {
    /// The flight recorder's backend tag for this provenance (the
    /// `wagg-obs` mirror; the session facade uses this when it samples
    /// a solve).
    fn from(kind: BackendKind) -> BackendTag {
        match kind {
            BackendKind::Static => BackendTag::Static,
            BackendKind::Engine => BackendTag::Engine,
            BackendKind::Sharded => BackendTag::Sharded,
        }
    }
}

impl From<RepairDecision> for RepairTag {
    /// The flight recorder's repair tag for this decision.
    fn from(decision: RepairDecision) -> RepairTag {
        match decision {
            RepairDecision::Repaired => RepairTag::Repaired,
            RepairDecision::ColdStart => RepairTag::ColdStart,
            RepairDecision::WatermarkBreach => RepairTag::WatermarkBreach,
            RepairDecision::Unsupported => RepairTag::Unsupported,
        }
    }
}

/// The sharded pipeline's own accounting, carried by [`SolveReport`]s with
/// [`BackendKind::Sharded`] provenance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardingStats {
    /// Number of shards actually realised.
    pub shards: usize,
    /// The conflict radius the tiling was sized for.
    pub radius: f64,
    /// Links ghosted into at least one neighbouring shard.
    pub boundary_links: usize,
    /// Boundary links the stitching repair sweep recolored.
    pub repaired_links: usize,
    /// Links the global verification pass evicted and re-packed.
    pub evicted_links: usize,
    /// Largest per-shard owned-link count (the imbalance numerator).
    pub max_owned: usize,
    /// Mean per-shard owned-link count.
    pub mean_owned: f64,
    /// Ghost copies per owned link — the halo replication overhead.
    pub ghost_fraction: f64,
}

/// The outcome of a scheduling run, uniform across backends: the full
/// [`ScheduleReport`] plus backend provenance and (for sharded runs) the
/// decomposition accounting. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveReport {
    /// The verified schedule and the paper's analysis quantities — exactly
    /// what the legacy entry points returned, nothing dropped.
    pub report: ScheduleReport,
    /// The backend that produced the schedule.
    pub backend: BackendKind,
    /// Sharded-pipeline accounting; `None` unless `backend` is
    /// [`BackendKind::Sharded`].
    pub sharding: Option<ShardingStats>,
    /// Warm-start repair accounting; `None` unless the solve ran through a
    /// repair-enabled session (see [`RepairStats`]).
    pub repair: Option<RepairStats>,
    /// Instrumentation snapshot (phase timings and work counters) from the
    /// `wagg-obs` recorder the solve ran under; `None` when the solve was
    /// not instrumented (or the workspace `obs` feature is off).
    pub metrics: Option<Metrics>,
    /// Longitudinal health detectors from the session's flight recorder;
    /// `None` when no flight recorder is installed (or the workspace
    /// `obs` feature is off).
    pub health: Option<HealthReport>,
}

impl SolveReport {
    /// Wraps a [`ScheduleReport`] with explicit backend provenance (the
    /// engine backend tags [`BackendKind::Engine`]; plain `From` tags
    /// [`BackendKind::Static`]).
    pub fn new(report: ScheduleReport, backend: BackendKind) -> Self {
        SolveReport {
            report,
            backend,
            sharding: None,
            repair: None,
            metrics: None,
            health: None,
        }
    }

    /// Attaches warm-start repair accounting (builder-style, used by the
    /// repair-enabled session backends).
    pub fn with_repair(mut self, repair: RepairStats) -> Self {
        self.repair = Some(repair);
        self
    }

    /// Attaches an instrumentation snapshot (builder-style; the session
    /// facade calls this with `Recorder::metrics()` when a recorder is
    /// installed). Empty snapshots are dropped — an obs-off build records
    /// nothing, and `None` keeps the JSON encoding identical to an
    /// uninstrumented run.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = if metrics.is_empty() {
            None
        } else {
            Some(metrics)
        };
        self
    }

    /// Attaches the flight recorder's health report (builder-style; the
    /// session facade calls this when a flight recorder is installed).
    /// Empty reports are dropped, mirroring [`SolveReport::with_metrics`]:
    /// an obs-off or recorder-less solve keeps `health: None` and a
    /// byte-identical JSON encoding.
    pub fn with_health(mut self, health: HealthReport) -> Self {
        self.health = if health.is_empty() {
            None
        } else {
            Some(health)
        };
        self
    }

    /// The schedule itself.
    pub fn schedule(&self) -> &Schedule {
        &self.report.schedule
    }

    /// The schedule length (number of slots).
    pub fn slots(&self) -> usize {
        self.report.schedule.len()
    }

    /// The achieved aggregation rate `1 / slots`.
    pub fn rate(&self) -> f64 {
        self.report.rate()
    }

    /// Number of links scheduled.
    pub fn num_links(&self) -> usize {
        self.report.num_links
    }

    /// The uniform one-line report format, identical in shape for every
    /// backend (sharded runs append their decomposition accounting):
    ///
    /// ```text
    /// [static] 99 links -> 7 slots (coloring 7, rate 0.1429, diversity 12.3, global power control)
    /// [sharded] 200000 links -> 34 slots (...); shards 16, radius 42.0, boundary 1234, repaired 56, evicted 7
    /// ```
    pub fn summary(&self) -> String {
        let r = &self.report;
        let mut line = format!(
            "[{}] {} links -> {} slots (coloring {}, rate {:.4}, diversity {:.3}, {})",
            self.backend,
            r.num_links,
            r.schedule.len(),
            r.coloring_slots,
            r.rate(),
            r.diversity,
            r.mode,
        );
        if let Some(s) = &self.sharding {
            line.push_str(&format!(
                "; shards {}, radius {:.1}, boundary {}, repaired {}, evicted {}, \
                 owned max {}/mean {:.1}, ghosts {:.1}%",
                s.shards,
                s.radius,
                s.boundary_links,
                s.repaired_links,
                s.evicted_links,
                s.max_owned,
                s.mean_owned,
                s.ghost_fraction * 100.0,
            ));
        }
        if let Some(r) = &self.repair {
            line.push_str(&format!(
                "; repair {}, dirty {}, replaced {}, drift {:.3} (watermark {:.3})",
                r.decision, r.dirty_links, r.replaced_links, r.drift, r.watermark
            ));
        }
        if let Some(m) = &self.metrics {
            line.push_str(&format!(
                "; metrics {} phases/{} counters, instrumented {:.1}ms",
                m.phases.len(),
                m.counters.len(),
                m.root_nanos() as f64 / 1e6,
            ));
            // The session facade observes each solve's wall time into this
            // histogram, so long-running sessions get their latency
            // quantiles in the one-liner.
            if let Some(h) = m.hist("session.solve_ns") {
                line.push_str(&format!(
                    ", solve p50 {:.1}ms/p99 {:.1}ms",
                    h.quantile(0.5) as f64 / 1e6,
                    h.quantile(0.99) as f64 / 1e6,
                ));
            }
        }
        if let Some(h) = &self.health {
            line.push_str("; ");
            line.push_str(&h.summary());
        }
        line
    }

    /// Serialises the report to a self-contained JSON document. The format
    /// is lossless — [`SolveReport::from_json`] parses it back to an equal
    /// value — and stable enough for benches to archive next to the
    /// `BENCH_*.json` files.
    pub fn to_json(&self) -> String {
        let r = &self.report;
        let mut out = String::with_capacity(256 + 8 * r.num_links);
        out.push_str(&format!(
            "{{\"backend\":\"{}\",\"mode\":\"{}\",\"num_links\":{},\"coloring_slots\":{},\
             \"verified_slots\":{},\"diversity\":{},\"log_star_diversity\":{},\"log_log_diversity\":{}",
            self.backend,
            mode_token(r.mode),
            r.num_links,
            r.coloring_slots,
            r.verified_slots,
            r.diversity,
            r.log_star_diversity,
            r.log_log_diversity,
        ));
        match &self.sharding {
            None => out.push_str(",\"sharding\":null"),
            Some(s) => out.push_str(&format!(
                ",\"sharding\":{{\"shards\":{},\"radius\":{},\"boundary_links\":{},\
                 \"repaired_links\":{},\"evicted_links\":{},\"max_owned\":{},\
                 \"mean_owned\":{},\"ghost_fraction\":{}}}",
                s.shards,
                s.radius,
                s.boundary_links,
                s.repaired_links,
                s.evicted_links,
                s.max_owned,
                s.mean_owned,
                s.ghost_fraction
            )),
        }
        match &self.repair {
            None => out.push_str(",\"repair\":null"),
            Some(r) => out.push_str(&format!(
                ",\"repair\":{{\"decision\":\"{}\",\"dirty_links\":{},\"replaced_links\":{},\
                 \"baseline_slots\":{},\"drift\":{},\"watermark\":{}}}",
                r.decision.token(),
                r.dirty_links,
                r.replaced_links,
                r.baseline_slots,
                r.drift,
                r.watermark
            )),
        }
        match &self.metrics {
            None => out.push_str(",\"metrics\":null"),
            Some(m) => {
                out.push_str(",\"metrics\":{\"phases\":[");
                for (i, p) in m.phases.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"path\":\"{}\",\"nanos\":{},\"count\":{}}}",
                        p.path, p.nanos, p.count
                    ));
                }
                out.push_str("],\"counters\":[");
                for (i, c) in m.counters.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"name\":\"{}\",\"value\":{}}}",
                        c.name, c.value
                    ));
                }
                // Histograms serialise sparsely: the non-empty log2
                // buckets as [index, count] pairs plus the sample sum.
                out.push_str("],\"hists\":[");
                for (i, h) in m.hists.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"name\":\"{}\",\"sum\":{},\"buckets\":[",
                        h.name,
                        h.hist.sum()
                    ));
                    for (k, (b, n)) in h.hist.bucket_counts().into_iter().enumerate() {
                        if k > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{b},{n}]"));
                    }
                    out.push_str("]}");
                }
                out.push_str("]}");
            }
        }
        match &self.health {
            None => out.push_str(",\"health\":null"),
            Some(h) => {
                out.push_str(&format!(
                    ",\"health\":{{\"solves\":{},\"signals\":[",
                    h.solves
                ));
                for (i, s) in h.signals.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"kind\":\"{}\",\"active\":{},\"value\":{},\"fire\":{},\
                         \"clear\":{},\"fired\":{},\"cleared\":{},\"since\":{}}}",
                        s.kind.token(),
                        s.active,
                        s.value,
                        s.fire_threshold,
                        s.clear_threshold,
                        s.fired,
                        s.cleared,
                        s.since
                    ));
                }
                out.push_str("]}");
            }
        }
        out.push_str(",\"slots\":[");
        for (t, slot) in r.schedule.slots().iter().enumerate() {
            if t > 0 {
                out.push(',');
            }
            out.push('[');
            for (k, idx) in slot.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&idx.to_string());
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }

    /// Parses a document produced by [`SolveReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token. Only the schema
    /// `to_json` emits is supported (this is a round-trip codec, not a
    /// general JSON parser).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let mut p = Parser::new(text);
        p.expect('{')?;
        let mut backend: Option<BackendKind> = None;
        let mut mode: Option<PowerMode> = None;
        let mut num_links: Option<usize> = None;
        let mut coloring_slots: Option<usize> = None;
        let mut verified_slots: Option<usize> = None;
        let mut diversity: Option<f64> = None;
        let mut log_star_diversity: Option<u32> = None;
        let mut log_log_diversity: Option<f64> = None;
        let mut sharding: Option<Option<ShardingStats>> = None;
        // Pre-repair documents have no "repair" key; default to `None`
        // instead of rejecting them so archived reports stay parseable.
        let mut repair: Option<RepairStats> = None;
        // Same for pre-observability documents and "metrics", and for
        // pre-telemetry documents and "health".
        let mut metrics: Option<Metrics> = None;
        let mut health: Option<HealthReport> = None;
        let mut slots: Option<Vec<Vec<usize>>> = None;
        loop {
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "backend" => {
                    backend = Some(match p.string()?.as_str() {
                        "static" => BackendKind::Static,
                        "engine" => BackendKind::Engine,
                        "sharded" => BackendKind::Sharded,
                        other => return Err(format!("unknown backend {other:?}")),
                    })
                }
                "mode" => mode = Some(parse_mode_token(&p.string()?)?),
                "num_links" => num_links = Some(p.integer()?),
                "coloring_slots" => coloring_slots = Some(p.integer()?),
                "verified_slots" => verified_slots = Some(p.integer()?),
                "diversity" => diversity = Some(p.number()?),
                "log_star_diversity" => log_star_diversity = Some(p.integer()? as u32),
                "log_log_diversity" => log_log_diversity = Some(p.number()?),
                "sharding" => sharding = Some(p.sharding()?),
                "repair" => repair = p.repair()?,
                "metrics" => metrics = p.metrics()?,
                "health" => health = p.health()?,
                "slots" => slots = Some(p.slots()?),
                other => return Err(format!("unknown key {other:?}")),
            }
            if !p.comma_or_end('}')? {
                break;
            }
        }
        let slots = slots.ok_or("missing slots")?;
        let report = ScheduleReport {
            schedule: Schedule::new(slots),
            coloring_slots: coloring_slots.ok_or("missing coloring_slots")?,
            verified_slots: verified_slots.ok_or("missing verified_slots")?,
            diversity: diversity.ok_or("missing diversity")?,
            log_star_diversity: log_star_diversity.ok_or("missing log_star_diversity")?,
            log_log_diversity: log_log_diversity.ok_or("missing log_log_diversity")?,
            mode: mode.ok_or("missing mode")?,
            num_links: num_links.ok_or("missing num_links")?,
        };
        Ok(SolveReport {
            report,
            backend: backend.ok_or("missing backend")?,
            sharding: sharding.ok_or("missing sharding")?,
            repair,
            metrics,
            health,
        })
    }
}

impl From<ScheduleReport> for SolveReport {
    /// Tags [`BackendKind::Static`] — the provenance of every report the
    /// static kernel produces directly.
    fn from(report: ScheduleReport) -> Self {
        SolveReport::new(report, BackendKind::Static)
    }
}

/// The round-trippable token for a power mode (`Display` is prose).
fn mode_token(mode: PowerMode) -> String {
    match mode {
        PowerMode::Uniform => "uniform".into(),
        PowerMode::Linear => "linear".into(),
        PowerMode::Oblivious { tau } => format!("oblivious:{tau}"),
        PowerMode::GlobalControl => "global".into(),
    }
}

fn parse_mode_token(token: &str) -> Result<PowerMode, String> {
    match token {
        "uniform" => Ok(PowerMode::Uniform),
        "linear" => Ok(PowerMode::Linear),
        "global" => Ok(PowerMode::GlobalControl),
        other => match other.strip_prefix("oblivious:") {
            Some(tau) => tau
                .parse()
                .map(|tau| PowerMode::Oblivious { tau })
                .map_err(|e| format!("bad tau in {other:?}: {e}")),
            None => Err(format!("unknown power mode {other:?}")),
        },
    }
}

/// A minimal cursor over the JSON subset [`SolveReport::to_json`] emits.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".into())
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        let got = self.peek()?;
        if got == c as u8 {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {c:?} at byte {}", self.pos))
        }
    }

    /// Consumes `,` (returning `true`) or the closing delimiter (`false`).
    fn comma_or_end(&mut self, end: char) -> Result<bool, String> {
        let got = self.peek()?;
        self.pos += 1;
        if got == b',' {
            Ok(true)
        } else if got == end as u8 {
            Ok(false)
        } else {
            Err(format!("expected ',' or {end:?} at byte {}", self.pos - 1))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|&b| b != b'"') {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 string")?
            .to_string();
        self.expect('"')?;
        Ok(s)
    }

    fn number_str(&mut self) -> Result<&'a str, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "non-utf8 number".into())
    }

    fn number(&mut self) -> Result<f64, String> {
        let s = self.number_str()?;
        // `{}` on f64 prints `inf`/`NaN` for non-finite values; the reports
        // only carry finite numbers, so reject anything else.
        s.parse().map_err(|e| format!("bad number {s:?}: {e}"))
    }

    fn integer(&mut self) -> Result<usize, String> {
        let s = self.number_str()?;
        s.parse().map_err(|e| format!("bad integer {s:?}: {e}"))
    }

    fn sharding(&mut self) -> Result<Option<ShardingStats>, String> {
        if self.peek()? == b'n' {
            // `null`
            if self.bytes[self.pos..].starts_with(b"null") {
                self.pos += 4;
                return Ok(None);
            }
            return Err(format!("expected null at byte {}", self.pos));
        }
        self.expect('{')?;
        // Occupancy keys default to zero so documents archived before the
        // imbalance accounting existed keep parsing.
        let mut stats = ShardingStats {
            shards: 0,
            radius: 0.0,
            boundary_links: 0,
            repaired_links: 0,
            evicted_links: 0,
            max_owned: 0,
            mean_owned: 0.0,
            ghost_fraction: 0.0,
        };
        loop {
            let key = self.string()?;
            self.expect(':')?;
            match key.as_str() {
                "shards" => stats.shards = self.integer()?,
                "radius" => stats.radius = self.number()?,
                "boundary_links" => stats.boundary_links = self.integer()?,
                "repaired_links" => stats.repaired_links = self.integer()?,
                "evicted_links" => stats.evicted_links = self.integer()?,
                "max_owned" => stats.max_owned = self.integer()?,
                "mean_owned" => stats.mean_owned = self.number()?,
                "ghost_fraction" => stats.ghost_fraction = self.number()?,
                other => return Err(format!("unknown sharding key {other:?}")),
            }
            if !self.comma_or_end('}')? {
                break;
            }
        }
        Ok(Some(stats))
    }

    fn repair(&mut self) -> Result<Option<RepairStats>, String> {
        if self.peek()? == b'n' {
            // `null`
            if self.bytes[self.pos..].starts_with(b"null") {
                self.pos += 4;
                return Ok(None);
            }
            return Err(format!("expected null at byte {}", self.pos));
        }
        self.expect('{')?;
        let mut stats = RepairStats {
            decision: RepairDecision::Unsupported,
            dirty_links: 0,
            replaced_links: 0,
            baseline_slots: 0,
            drift: 0.0,
            watermark: 0.0,
        };
        loop {
            let key = self.string()?;
            self.expect(':')?;
            match key.as_str() {
                "decision" => stats.decision = RepairDecision::parse_token(&self.string()?)?,
                "dirty_links" => stats.dirty_links = self.integer()?,
                "replaced_links" => stats.replaced_links = self.integer()?,
                "baseline_slots" => stats.baseline_slots = self.integer()?,
                "drift" => stats.drift = self.number()?,
                "watermark" => stats.watermark = self.number()?,
                other => return Err(format!("unknown repair key {other:?}")),
            }
            if !self.comma_or_end('}')? {
                break;
            }
        }
        Ok(Some(stats))
    }

    fn metrics(&mut self) -> Result<Option<Metrics>, String> {
        if self.peek()? == b'n' {
            // `null`
            if self.bytes[self.pos..].starts_with(b"null") {
                self.pos += 4;
                return Ok(None);
            }
            return Err(format!("expected null at byte {}", self.pos));
        }
        self.expect('{')?;
        let mut metrics = Metrics::default();
        loop {
            let key = self.string()?;
            self.expect(':')?;
            match key.as_str() {
                "phases" => {
                    self.objects(|p, obj: &mut PhaseMetric, key| {
                        match key {
                            "path" => obj.path = p.string()?,
                            "nanos" => obj.nanos = p.integer()? as u64,
                            "count" => obj.count = p.integer()? as u64,
                            other => return Err(format!("unknown phase key {other:?}")),
                        }
                        Ok(())
                    })
                    .map(|phases| metrics.phases = phases)?;
                }
                "counters" => {
                    self.objects(|p, obj: &mut CounterMetric, key| {
                        match key {
                            "name" => obj.name = p.string()?,
                            "value" => obj.value = p.integer()? as u64,
                            other => return Err(format!("unknown counter key {other:?}")),
                        }
                        Ok(())
                    })
                    .map(|counters| metrics.counters = counters)?;
                }
                "hists" => metrics.hists = self.hists()?,
                other => return Err(format!("unknown metrics key {other:?}")),
            }
            if !self.comma_or_end('}')? {
                break;
            }
        }
        Ok(Some(metrics))
    }

    /// Parses the sparse histogram array:
    /// `[{"name":"...","sum":N,"buckets":[[b,n],...]},...]`.
    fn hists(&mut self) -> Result<Vec<HistogramMetric>, String> {
        self.expect('[')?;
        let mut hists = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(hists);
        }
        loop {
            self.expect('{')?;
            let mut name = String::new();
            let mut sum = 0u64;
            let mut buckets: Vec<(usize, u64)> = Vec::new();
            loop {
                let key = self.string()?;
                self.expect(':')?;
                match key.as_str() {
                    "name" => name = self.string()?,
                    "sum" => sum = self.integer()? as u64,
                    "buckets" => {
                        self.expect('[')?;
                        if self.peek()? == b']' {
                            self.pos += 1;
                        } else {
                            loop {
                                self.expect('[')?;
                                let b = self.integer()?;
                                self.expect(',')?;
                                let n = self.integer()? as u64;
                                self.expect(']')?;
                                if b > 64 {
                                    return Err(format!("histogram bucket {b} out of range"));
                                }
                                buckets.push((b, n));
                                if !self.comma_or_end(']')? {
                                    break;
                                }
                            }
                        }
                    }
                    other => return Err(format!("unknown histogram key {other:?}")),
                }
                if !self.comma_or_end('}')? {
                    break;
                }
            }
            hists.push(HistogramMetric {
                name,
                hist: Histogram::from_parts(sum, &buckets),
            });
            if !self.comma_or_end(']')? {
                break;
            }
        }
        Ok(hists)
    }

    fn boolean(&mut self) -> Result<bool, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"true") {
            self.pos += 4;
            Ok(true)
        } else if self.bytes[self.pos..].starts_with(b"false") {
            self.pos += 5;
            Ok(false)
        } else {
            Err(format!("expected a boolean at byte {}", self.pos))
        }
    }

    fn health(&mut self) -> Result<Option<HealthReport>, String> {
        if self.peek()? == b'n' {
            // `null`
            if self.bytes[self.pos..].starts_with(b"null") {
                self.pos += 4;
                return Ok(None);
            }
            return Err(format!("expected null at byte {}", self.pos));
        }
        self.expect('{')?;
        let mut report = HealthReport::default();
        loop {
            let key = self.string()?;
            self.expect(':')?;
            match key.as_str() {
                "solves" => report.solves = self.integer()? as u64,
                "signals" => {
                    self.expect('[')?;
                    if self.peek()? == b']' {
                        self.pos += 1;
                    } else {
                        loop {
                            self.expect('{')?;
                            let mut sig = HealthSignal {
                                kind: SignalKind::Skew,
                                active: false,
                                value: 0.0,
                                fire_threshold: 0.0,
                                clear_threshold: 0.0,
                                fired: 0,
                                cleared: 0,
                                since: 0,
                            };
                            loop {
                                let key = self.string()?;
                                self.expect(':')?;
                                match key.as_str() {
                                    "kind" => {
                                        let tok = self.string()?;
                                        sig.kind =
                                            SignalKind::parse_token(&tok).ok_or_else(|| {
                                                format!("unknown signal kind {tok:?}")
                                            })?;
                                    }
                                    "active" => sig.active = self.boolean()?,
                                    "value" => sig.value = self.number()?,
                                    "fire" => sig.fire_threshold = self.number()?,
                                    "clear" => sig.clear_threshold = self.number()?,
                                    "fired" => sig.fired = self.integer()? as u64,
                                    "cleared" => sig.cleared = self.integer()? as u64,
                                    "since" => sig.since = self.integer()? as u64,
                                    other => return Err(format!("unknown signal key {other:?}")),
                                }
                                if !self.comma_or_end('}')? {
                                    break;
                                }
                            }
                            report.signals.push(sig);
                            if !self.comma_or_end(']')? {
                                break;
                            }
                        }
                    }
                }
                other => return Err(format!("unknown health key {other:?}")),
            }
            if !self.comma_or_end('}')? {
                break;
            }
        }
        Ok(Some(report))
    }

    /// Parses `[{...},{...}]` where each object's fields are handled by
    /// `field` against a default-initialised `T`.
    fn objects<T: Default>(
        &mut self,
        mut field: impl FnMut(&mut Self, &mut T, &str) -> Result<(), String>,
    ) -> Result<Vec<T>, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(items);
        }
        loop {
            self.expect('{')?;
            let mut item = T::default();
            loop {
                let key = self.string()?;
                self.expect(':')?;
                field(self, &mut item, &key)?;
                if !self.comma_or_end('}')? {
                    break;
                }
            }
            items.push(item);
            if !self.comma_or_end(']')? {
                break;
            }
        }
        Ok(items)
    }

    fn slots(&mut self) -> Result<Vec<Vec<usize>>, String> {
        self.expect('[')?;
        let mut slots = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(slots);
        }
        loop {
            self.expect('[')?;
            let mut slot = Vec::new();
            if self.peek()? == b']' {
                self.pos += 1;
            } else {
                loop {
                    slot.push(self.integer()?);
                    if !self.comma_or_end(']')? {
                        break;
                    }
                }
            }
            slots.push(slot);
            if !self.comma_or_end(']')? {
                break;
            }
        }
        Ok(slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::solve_static;
    use crate::SchedulerConfig;
    use wagg_geometry::Point;
    use wagg_sinr::Link;

    fn sample_links() -> Vec<Link> {
        (0..24)
            .map(|i| {
                let x = (i % 6) as f64 * 5.0;
                let y = (i / 6) as f64 * 5.0;
                Link::new(i, Point::new(x, y), Point::new(x + 1.0 + 0.1 * i as f64, y))
            })
            .collect()
    }

    #[test]
    fn from_schedule_report_is_lossless() {
        let report = solve_static(&sample_links(), SchedulerConfig::default());
        let solve: SolveReport = report.clone().into();
        assert_eq!(solve.report, report);
        assert_eq!(solve.backend, BackendKind::Static);
        assert_eq!(solve.sharding, None);
        assert_eq!(solve.slots(), report.schedule.len());
        assert_eq!(solve.rate(), report.rate());
        assert_eq!(solve.num_links(), report.num_links);
    }

    #[test]
    fn summary_is_uniform_across_backends() {
        let report = solve_static(&sample_links(), SchedulerConfig::default());
        let solve = SolveReport::new(report.clone(), BackendKind::Engine);
        let line = solve.summary();
        assert!(line.starts_with("[engine] 24 links -> "), "{line}");
        assert!(line.contains("coloring"), "{line}");

        let sharded = SolveReport {
            report,
            backend: BackendKind::Sharded,
            sharding: Some(ShardingStats {
                shards: 4,
                radius: 12.5,
                boundary_links: 3,
                repaired_links: 1,
                evicted_links: 0,
                max_owned: 9,
                mean_owned: 6.0,
                ghost_fraction: 0.125,
            }),
            repair: None,
            metrics: None,
            health: None,
        };
        let line = sharded.summary();
        assert!(line.starts_with("[sharded]"), "{line}");
        assert!(line.contains("shards 4"), "{line}");
        assert!(line.contains("radius 12.5"), "{line}");
        assert!(line.contains("owned max 9/mean 6.0"), "{line}");
        assert!(line.contains("ghosts 12.5%"), "{line}");
    }

    #[test]
    fn summary_appends_repair_accounting_when_present() {
        let report = solve_static(&sample_links(), SchedulerConfig::default());
        let solve = SolveReport::new(report, BackendKind::Engine).with_repair(RepairStats {
            decision: RepairDecision::Repaired,
            dirty_links: 3,
            replaced_links: 5,
            baseline_slots: 7,
            drift: 0.142857,
            watermark: 0.25,
        });
        let line = solve.summary();
        assert!(line.contains("repair repaired"), "{line}");
        assert!(line.contains("dirty 3"), "{line}");
        assert!(line.contains("replaced 5"), "{line}");
        assert!(line.contains("drift 0.143 (watermark 0.250)"), "{line}");
    }

    #[test]
    fn json_round_trips_every_mode_and_provenance() {
        let links = sample_links();
        for mode in [
            PowerMode::Uniform,
            PowerMode::Linear,
            PowerMode::Oblivious { tau: 0.5 },
            PowerMode::GlobalControl,
        ] {
            let report = solve_static(&links, SchedulerConfig::new(mode));
            for solve in [
                SolveReport::new(report.clone(), BackendKind::Static),
                SolveReport::new(report.clone(), BackendKind::Engine),
                SolveReport::new(report.clone(), BackendKind::Engine).with_repair(RepairStats {
                    decision: RepairDecision::Repaired,
                    dirty_links: 2,
                    replaced_links: 4,
                    baseline_slots: 6,
                    drift: 0.125,
                    watermark: 0.25,
                }),
                SolveReport::new(report.clone(), BackendKind::Static).with_repair(RepairStats {
                    decision: RepairDecision::Unsupported,
                    dirty_links: 0,
                    replaced_links: report.num_links,
                    baseline_slots: report.schedule.len(),
                    drift: 0.0,
                    watermark: 0.25,
                }),
                SolveReport {
                    report: report.clone(),
                    backend: BackendKind::Sharded,
                    sharding: Some(ShardingStats {
                        shards: 16,
                        radius: 42.25,
                        boundary_links: 7,
                        repaired_links: 2,
                        evicted_links: 1,
                        max_owned: 1501,
                        mean_owned: 1250.5,
                        ghost_fraction: 0.0625,
                    }),
                    repair: Some(RepairStats {
                        decision: RepairDecision::WatermarkBreach,
                        dirty_links: 9,
                        replaced_links: report.num_links,
                        baseline_slots: report.schedule.len(),
                        drift: 0.5,
                        watermark: 0.25,
                    }),
                    metrics: Some(Metrics {
                        phases: vec![
                            PhaseMetric {
                                path: "partition".into(),
                                nanos: 3_200_000,
                                count: 1,
                            },
                            PhaseMetric {
                                path: "partition/build/shard".into(),
                                nanos: 1_000_000,
                                count: 16,
                            },
                        ],
                        counters: vec![
                            CounterMetric {
                                name: "partition.owned_links".into(),
                                value: 20008,
                            },
                            CounterMetric {
                                name: "verifier.expansions".into(),
                                value: 731,
                            },
                        ],
                        hists: vec![HistogramMetric {
                            name: "session.solve_ns".into(),
                            hist: {
                                let mut h = Histogram::new();
                                for v in [1_200_000u64, 1_900_000, 2_400_000, 75_000_000] {
                                    h.observe(v);
                                }
                                h
                            },
                        }],
                    }),
                    health: Some(HealthReport {
                        solves: 12,
                        signals: vec![
                            HealthSignal {
                                kind: SignalKind::Skew,
                                active: true,
                                value: 2.5,
                                fire_threshold: 2.0,
                                clear_threshold: 1.5,
                                fired: 2,
                                cleared: 1,
                                since: 9,
                            },
                            HealthSignal {
                                kind: SignalKind::Latency,
                                active: false,
                                value: 1.0625,
                                fire_threshold: 2.0,
                                clear_threshold: 1.25,
                                fired: 0,
                                cleared: 0,
                                since: 0,
                            },
                        ],
                    }),
                },
            ] {
                let json = solve.to_json();
                let back = SolveReport::from_json(&json).expect("round-trip parses");
                assert_eq!(back, solve, "round-trip drifted for {mode}");
            }
        }
    }

    #[test]
    fn json_round_trips_empty_schedules() {
        let report = solve_static(&[], SchedulerConfig::default());
        let solve: SolveReport = report.into();
        let back = SolveReport::from_json(&solve.to_json()).unwrap();
        assert_eq!(back, solve);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(SolveReport::from_json("").is_err());
        assert!(SolveReport::from_json("{}").is_err());
        assert!(SolveReport::from_json("{\"backend\":\"quantum\"}").is_err());
        let good =
            SolveReport::from(solve_static(&sample_links(), SchedulerConfig::default())).to_json();
        assert!(SolveReport::from_json(&good[..good.len() - 1]).is_err());
        let bad_repair = good.replace("\"repair\":null", "\"repair\":{\"decision\":\"quantum\"}");
        assert!(SolveReport::from_json(&bad_repair).is_err());
    }

    #[test]
    fn pre_repair_documents_still_parse() {
        // Reports archived before the repair field existed carry no
        // "repair" key; they must keep parsing (as `repair: None`).
        let solve = SolveReport::from(solve_static(&sample_links(), SchedulerConfig::default()));
        let legacy = solve.to_json().replace(",\"repair\":null", "");
        let back = SolveReport::from_json(&legacy).expect("legacy document parses");
        assert_eq!(back, solve);
    }

    #[test]
    fn pre_observability_documents_still_parse() {
        // Reports archived before the metrics field and the occupancy keys
        // existed must keep parsing: "metrics" defaults to `None`, the
        // occupancy stats to zero.
        let mut solve =
            SolveReport::from(solve_static(&sample_links(), SchedulerConfig::default()));
        solve.backend = BackendKind::Sharded;
        solve.sharding = Some(ShardingStats {
            shards: 4,
            radius: 10.0,
            boundary_links: 5,
            repaired_links: 1,
            evicted_links: 0,
            max_owned: 0,
            mean_owned: 0.0,
            ghost_fraction: 0.0,
        });
        let legacy = solve
            .to_json()
            .replace(",\"metrics\":null", "")
            .replace(",\"max_owned\":0,\"mean_owned\":0,\"ghost_fraction\":0", "");
        assert!(!legacy.contains("max_owned"), "replace must have fired");
        let back = SolveReport::from_json(&legacy).expect("legacy document parses");
        assert_eq!(back, solve);
    }

    #[test]
    fn pre_telemetry_documents_still_parse() {
        // Reports archived before the flight recorder existed carry no
        // "health" key; they must keep parsing (as `health: None`).
        let solve = SolveReport::from(solve_static(&sample_links(), SchedulerConfig::default()));
        let legacy = solve.to_json().replace(",\"health\":null", "");
        assert!(!legacy.contains("health"), "replace must have fired");
        let back = SolveReport::from_json(&legacy).expect("legacy document parses");
        assert_eq!(back, solve);
    }

    #[test]
    fn empty_health_reports_are_dropped() {
        // A recorder-less session attaches the empty report; the result —
        // and its JSON — must be identical to a flight-recorder-off run.
        let solve = SolveReport::from(solve_static(&sample_links(), SchedulerConfig::default()));
        let attached = solve.clone().with_health(HealthReport::default());
        assert_eq!(attached, solve);
        assert_eq!(attached.to_json(), solve.to_json());
    }

    #[test]
    fn summary_appends_solve_quantiles_and_health() {
        let mut hist = Histogram::new();
        // 10 solves at ~2ms, one at 80ms: p50 sits in the 2ms bucket and
        // p99 in the 80ms bucket.
        for _ in 0..10 {
            hist.observe(2_000_000);
        }
        hist.observe(80_000_000);
        let metrics = Metrics {
            phases: vec![PhaseMetric {
                path: "session".into(),
                nanos: 100_000_000,
                count: 11,
            }],
            counters: vec![],
            hists: vec![HistogramMetric {
                name: "session.solve_ns".into(),
                hist,
            }],
        };
        let health = HealthReport {
            solves: 11,
            signals: vec![HealthSignal {
                kind: SignalKind::Skew,
                active: true,
                value: 2.31,
                fire_threshold: 2.0,
                clear_threshold: 1.5,
                fired: 1,
                cleared: 0,
                since: 7,
            }],
        };
        let solve = SolveReport::from(solve_static(&sample_links(), SchedulerConfig::default()))
            .with_metrics(metrics)
            .with_health(health);
        let line = solve.summary();
        assert!(line.contains("solve p50 "), "{line}");
        assert!(line.contains("/p99 "), "{line}");
        assert!(line.contains("health FIRING (skew 2.310!)"), "{line}");
        // The quantiles land in the samples' own log2 buckets: 2ms sits
        // in [2^20, 2^21) ns ≈ [1.05, 2.10) ms, 80ms in [2^26, 2^27) ns
        // ≈ [67.1, 134.3) ms.
        let p50 = line.split("solve p50 ").nth(1).unwrap();
        let p50: f64 = p50.split("ms").next().unwrap().parse().unwrap();
        assert!((1.0..2.2).contains(&p50), "p50 = {p50}");
        let p99 = line.split("/p99 ").nth(1).unwrap();
        let p99: f64 = p99.split("ms").next().unwrap().parse().unwrap();
        assert!((67.0..134.3).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn empty_metrics_are_dropped() {
        // An obs-off (or disabled-recorder) run yields an empty snapshot;
        // attaching it must leave the report — and its JSON — identical to
        // an uninstrumented run.
        let solve = SolveReport::from(solve_static(&sample_links(), SchedulerConfig::default()));
        let attached = solve.clone().with_metrics(Metrics::default());
        assert_eq!(attached, solve);
        assert_eq!(attached.to_json(), solve.to_json());
    }

    #[test]
    fn metrics_json_round_trips() {
        let metrics = Metrics {
            phases: vec![
                PhaseMetric {
                    path: "static".into(),
                    nanos: 42_000,
                    count: 1,
                },
                PhaseMetric {
                    path: "static/color".into(),
                    nanos: 17_500,
                    count: 1,
                },
            ],
            counters: vec![CounterMetric {
                name: "static.coloring_slots".into(),
                value: 7,
            }],
            hists: vec![HistogramMetric {
                name: "session.solve_ns".into(),
                hist: {
                    let mut h = Histogram::new();
                    h.observe(42_000);
                    h.observe(51_000);
                    h
                },
            }],
        };
        let solve = SolveReport::from(solve_static(&sample_links(), SchedulerConfig::default()))
            .with_metrics(metrics.clone());
        assert_eq!(solve.metrics.as_ref(), Some(&metrics));
        let back = SolveReport::from_json(&solve.to_json()).expect("round-trip parses");
        assert_eq!(back, solve);
        let m = back.metrics.expect("metrics survive the round trip");
        assert_eq!(m.phase("static/color").unwrap().nanos, 17_500);
        assert_eq!(m.counter("static.coloring_slots"), Some(7));
        let line = solve.summary();
        assert!(line.contains("metrics 2 phases/1 counters"), "{line}");
    }
}
