//! The [`Schedule`] type: an ordered sequence of slots over a link set.

use crate::power_mode::PowerMode;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use wagg_sinr::{Link, SinrModel};

/// A (periodic) TDMA schedule over a fixed link set.
///
/// Slot `t` holds the indices (into the link slice the schedule was built for) of the
/// links transmitting in time slot `t`. Repeating the slots periodically yields an
/// aggregation schedule of rate `1 / len()`, as described in the paper (Sec. 2).
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_sinr::Link;
/// use wagg_schedule::Schedule;
///
/// let links = vec![
///     Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
///     Link::new(1, Point::new(1.0, 0.0), Point::new(2.0, 0.0)),
/// ];
/// let schedule = Schedule::new(vec![vec![0], vec![1]]);
/// assert_eq!(schedule.len(), 2);
/// assert_eq!(schedule.rate(), 0.5);
/// assert!(schedule.covers_all(links.len()));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    slots: Vec<Vec<usize>>,
}

impl Schedule {
    /// Creates a schedule from explicit slots (each a list of link indices).
    pub fn new(slots: Vec<Vec<usize>>) -> Self {
        Schedule { slots }
    }

    /// Creates the trivial TDMA schedule: one link per slot, in index order.
    ///
    /// This is the `1/n`-rate baseline that needs no power control and no geometry —
    /// the paper's point of comparison for "no spatial reuse".
    pub fn round_robin(num_links: usize) -> Self {
        Schedule {
            slots: (0..num_links).map(|i| vec![i]).collect(),
        }
    }

    /// The slots of the schedule.
    pub fn slots(&self) -> &[Vec<usize>] {
        &self.slots
    }

    /// The slot at position `t`.
    pub fn slot(&self, t: usize) -> &[usize] {
        &self.slots[t]
    }

    /// Number of slots (the schedule length `T`).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the schedule has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The aggregation rate of the periodic repetition of this schedule: `1 / T`
    /// (and `0` for an empty schedule over a non-empty link set, by convention).
    pub fn rate(&self) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        1.0 / self.slots.len() as f64
    }

    /// Total number of link transmissions across all slots.
    pub fn total_transmissions(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// Size of the largest slot.
    pub fn max_slot_size(&self) -> usize {
        self.slots.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether every link index in `0..num_links` appears in at least one slot and no
    /// slot references an out-of-range index or repeats an index within a slot.
    pub fn covers_all(&self, num_links: usize) -> bool {
        let mut seen = vec![false; num_links];
        for slot in &self.slots {
            let mut in_slot = HashSet::new();
            for &idx in slot {
                if idx >= num_links || !in_slot.insert(idx) {
                    return false;
                }
                seen[idx] = true;
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// Whether the schedule is a *partition* of `0..num_links`: covers everything and
    /// schedules each link exactly once (a coloring schedule).
    pub fn is_partition(&self, num_links: usize) -> bool {
        self.covers_all(num_links) && self.total_transmissions() == num_links
    }

    /// Verifies that every slot is feasible for `links` under `mode` and `model`.
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::Point;
    /// use wagg_sinr::{Link, SinrModel};
    /// use wagg_schedule::{PowerMode, Schedule};
    ///
    /// let links = vec![
    ///     Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
    ///     Link::new(1, Point::new(1.5, 0.0), Point::new(2.5, 0.0)),
    /// ];
    /// let model = SinrModel::default();
    /// let together = Schedule::new(vec![vec![0, 1]]);
    /// let apart = Schedule::new(vec![vec![0], vec![1]]);
    /// assert!(!together.verify(&links, &model, PowerMode::Uniform));
    /// assert!(apart.verify(&links, &model, PowerMode::Uniform));
    /// ```
    pub fn verify(&self, links: &[Link], model: &SinrModel, mode: PowerMode) -> bool {
        self.slots.iter().all(|slot| {
            let slot_links: Vec<Link> = slot.iter().map(|&i| links[i]).collect();
            mode.slot_feasible(model, &slot_links)
        })
    }

    /// For each link index, how many of the first `window` slots (cyclically repeated)
    /// include it. Used to compute rates of general periodic schedules.
    pub fn transmissions_in_window(&self, num_links: usize, window: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_links];
        if self.slots.is_empty() {
            return counts;
        }
        for t in 0..window {
            for &idx in &self.slots[t % self.slots.len()] {
                if idx < num_links {
                    counts[idx] += 1;
                }
            }
        }
        counts
    }

    /// The sustained per-link rate of the periodic repetition: the minimum over links
    /// of (appearances per period) / (period length).
    ///
    /// For a coloring schedule this equals [`Schedule::rate`]; for multicoloring
    /// schedules (links appearing several times per period) it can be higher.
    pub fn sustained_rate(&self, num_links: usize) -> f64 {
        if self.slots.is_empty() || num_links == 0 {
            return 0.0;
        }
        let counts = self.transmissions_in_window(num_links, self.slots.len());
        let min_count = counts.into_iter().min().unwrap_or(0);
        min_count as f64 / self.slots.len() as f64
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule with {} slots (rate {:.4})",
            self.len(),
            self.rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_geometry::Point;

    fn line_link(id: usize, s: f64, r: f64) -> Link {
        Link::new(id, Point::on_line(s), Point::on_line(r))
    }

    #[test]
    fn round_robin_properties() {
        let s = Schedule::round_robin(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.rate(), 0.2);
        assert!(s.is_partition(5));
        assert_eq!(s.max_slot_size(), 1);
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.rate(), 0.0);
        assert_eq!(s.sustained_rate(3), 0.0);
        assert!(s.covers_all(0));
        assert!(!s.covers_all(1));
    }

    #[test]
    fn coverage_checks() {
        let s = Schedule::new(vec![vec![0, 2], vec![1]]);
        assert!(s.covers_all(3));
        assert!(s.is_partition(3));
        assert!(!s.covers_all(4));
        let repeated_in_slot = Schedule::new(vec![vec![0, 0], vec![1]]);
        assert!(!repeated_in_slot.covers_all(2));
        let out_of_range = Schedule::new(vec![vec![0, 5]]);
        assert!(!out_of_range.covers_all(2));
    }

    #[test]
    fn multicolor_schedule_is_not_a_partition_but_covers() {
        let s = Schedule::new(vec![
            vec![0, 2],
            vec![1, 3],
            vec![0, 3],
            vec![1, 4],
            vec![2, 4],
        ]);
        assert!(s.covers_all(5));
        assert!(!s.is_partition(5));
        assert_eq!(s.sustained_rate(5), 2.0 / 5.0);
    }

    #[test]
    fn sustained_rate_of_coloring_matches_rate() {
        let s = Schedule::new(vec![vec![0], vec![1], vec![2]]);
        assert_eq!(s.sustained_rate(3), s.rate());
    }

    #[test]
    fn transmissions_in_window_cycles() {
        let s = Schedule::new(vec![vec![0], vec![1]]);
        assert_eq!(s.transmissions_in_window(2, 5), vec![3, 2]);
    }

    #[test]
    fn verify_under_different_modes() {
        let model = SinrModel::default();
        // One long link whose receiver is near a short link: needs power control.
        let links = vec![line_link(0, 0.0, 1.0), line_link(1, 30.0, 3.0)];
        let together = Schedule::new(vec![vec![0, 1]]);
        assert!(!together.verify(&links, &model, PowerMode::Uniform));
        assert!(together.verify(&links, &model, PowerMode::GlobalControl));
        let apart = Schedule::round_robin(2);
        assert!(apart.verify(&links, &model, PowerMode::Uniform));
    }

    #[test]
    fn display_contains_slot_count() {
        let s = Schedule::round_robin(4);
        assert!(s.to_string().contains("4 slots"));
    }
}
