//! The power-control modes of the paper and their slot-feasibility checks.

use serde::{Deserialize, Serialize};
use std::fmt;
use wagg_conflict::ConflictRelation;
use wagg_sinr::affectance::is_feasible_by_affectance;
use wagg_sinr::power_control::is_feasible_with_power_control;
use wagg_sinr::{Link, PowerAssignment, SinrModel};

/// How transmission powers are chosen, which determines both the conflict graph used
/// for coloring and the SINR check used to verify each slot.
///
/// # Examples
///
/// ```
/// use wagg_schedule::PowerMode;
///
/// let modes = [PowerMode::Uniform, PowerMode::Oblivious { tau: 0.5 }, PowerMode::GlobalControl];
/// assert_eq!(modes[1].to_string(), "oblivious power P_0.5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PowerMode {
    /// No power control: every sender uses the same power (`P_0`).
    Uniform,
    /// Linear power (`P_1`): power proportional to `l^α`. Like uniform power, this is
    /// a "no-control" baseline — the paper's near-constant bounds need `τ` strictly
    /// inside `(0, 1)` or global control.
    Linear,
    /// An oblivious scheme `P_τ` with `τ ∈ (0, 1)`; the paper's `O(log log Δ)` bound
    /// applies (with the default `τ = 1/2`).
    Oblivious {
        /// The exponent parameter `τ`.
        tau: f64,
    },
    /// Global (arbitrary) power control; the paper's `O(log* Δ)` bound applies.
    GlobalControl,
}

impl PowerMode {
    /// The default oblivious mode `P_{1/2}` used throughout the experiments.
    pub fn mean_oblivious() -> Self {
        PowerMode::Oblivious { tau: 0.5 }
    }

    /// The conflict relation the paper matches to this power mode, for a model with
    /// path-loss exponent `alpha`.
    ///
    /// * uniform / linear power → the constant relation `G_γ` (no length-aware
    ///   separation is possible, so only equal-length-style separation helps),
    /// * oblivious `P_τ` → the polynomial relation `G^δ_γ`,
    /// * global control → the log-shaped relation `G_{γ log}`.
    pub fn conflict_relation(&self, alpha: f64) -> ConflictRelation {
        match self {
            PowerMode::Uniform | PowerMode::Linear => ConflictRelation::constant(2.0),
            PowerMode::Oblivious { .. } => ConflictRelation::polynomial(2.0, 0.5),
            PowerMode::GlobalControl => ConflictRelation::log_shaped(2.0, alpha),
        }
    }

    /// The concrete power assignment used to verify slots in this mode, or `None`
    /// for global control (where the witness powers are computed per slot).
    pub fn assignment(&self) -> Option<PowerAssignment> {
        match self {
            PowerMode::Uniform => Some(PowerAssignment::uniform(1.0)),
            PowerMode::Linear => Some(PowerAssignment::linear(1.0)),
            PowerMode::Oblivious { tau } => Some(PowerAssignment::oblivious(*tau)),
            PowerMode::GlobalControl => None,
        }
    }

    /// Whether the given set of links can share a slot in this power mode, under
    /// `model`.
    ///
    /// For fixed assignments this is the SINR check with that assignment; for global
    /// control it is existence of *some* feasible assignment (spectral-radius test).
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::Point;
    /// use wagg_sinr::{Link, SinrModel};
    /// use wagg_schedule::PowerMode;
    ///
    /// let model = SinrModel::default();
    /// let links = vec![
    ///     Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
    ///     Link::new(1, Point::new(30.0, 0.0), Point::new(3.0, 0.0)),
    /// ];
    /// // Uniform power cannot hold this pair, global control can.
    /// assert!(!PowerMode::Uniform.slot_feasible(&model, &links));
    /// assert!(PowerMode::GlobalControl.slot_feasible(&model, &links));
    /// ```
    pub fn slot_feasible(&self, model: &SinrModel, links: &[Link]) -> bool {
        if links.len() <= 1 {
            return links.iter().all(|l| l.length() > 0.0);
        }
        match self.assignment() {
            // Noise-free fixed assignments go through the cached affectance
            // kernel — mathematically the SINR quotient rearranged, and the
            // *same* predicate the scheduler's shared-cache slot probes use,
            // so a schedule built from subset probes always verifies.
            Some(assignment) if model.noise() == 0.0 => {
                is_feasible_by_affectance(model, links, &assignment)
            }
            Some(assignment) => model.is_feasible(links, &assignment),
            None => is_feasible_with_power_control(model, links),
        }
    }
}

impl fmt::Display for PowerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerMode::Uniform => write!(f, "uniform power P_0"),
            PowerMode::Linear => write!(f, "linear power P_1"),
            PowerMode::Oblivious { tau } => write!(f, "oblivious power P_{tau}"),
            PowerMode::GlobalControl => write!(f, "global power control"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_geometry::Point;

    fn line_link(id: usize, s: f64, r: f64) -> Link {
        Link::new(id, Point::on_line(s), Point::on_line(r))
    }

    #[test]
    fn relations_match_modes() {
        let alpha = 3.0;
        assert!(matches!(
            PowerMode::Uniform.conflict_relation(alpha),
            ConflictRelation::Constant { .. }
        ));
        assert!(matches!(
            PowerMode::mean_oblivious().conflict_relation(alpha),
            ConflictRelation::Polynomial { .. }
        ));
        assert!(matches!(
            PowerMode::GlobalControl.conflict_relation(alpha),
            ConflictRelation::LogShaped { .. }
        ));
    }

    #[test]
    fn assignments_match_modes() {
        assert_eq!(PowerMode::Uniform.assignment().unwrap().tau(), Some(0.0));
        assert_eq!(PowerMode::Linear.assignment().unwrap().tau(), Some(1.0));
        assert_eq!(
            PowerMode::Oblivious { tau: 0.25 }
                .assignment()
                .unwrap()
                .tau(),
            Some(0.25)
        );
        assert!(PowerMode::GlobalControl.assignment().is_none());
    }

    #[test]
    fn singleton_and_empty_slots_always_feasible() {
        let model = SinrModel::default();
        for mode in [
            PowerMode::Uniform,
            PowerMode::Linear,
            PowerMode::mean_oblivious(),
            PowerMode::GlobalControl,
        ] {
            assert!(mode.slot_feasible(&model, &[]));
            assert!(mode.slot_feasible(&model, &[line_link(0, 0.0, 5.0)]));
        }
    }

    #[test]
    fn global_control_dominates_fixed_assignments() {
        // Any pair feasible under a fixed scheme is feasible under global control.
        let model = SinrModel::default();
        let pairs = vec![
            vec![line_link(0, 0.0, 1.0), line_link(1, 10.0, 11.0)],
            vec![line_link(0, 0.0, 2.0), line_link(1, 30.0, 20.0)],
            vec![line_link(0, 0.0, 1.0), line_link(1, 3.0, 4.0)],
        ];
        for links in pairs {
            for mode in [
                PowerMode::Uniform,
                PowerMode::Linear,
                PowerMode::mean_oblivious(),
            ] {
                if mode.slot_feasible(&model, &links) {
                    assert!(PowerMode::GlobalControl.slot_feasible(&model, &links));
                }
            }
        }
    }

    #[test]
    fn display_strings() {
        assert_eq!(PowerMode::Uniform.to_string(), "uniform power P_0");
        assert_eq!(PowerMode::GlobalControl.to_string(), "global power control");
        assert_eq!(PowerMode::Linear.to_string(), "linear power P_1");
    }
}
