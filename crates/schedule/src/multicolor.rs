//! Multicoloring (fractional) schedules: periodic schedules that beat proper colorings.
//!
//! Sec. 4 of the paper opens with the classic example: the edges of a 5-cycle, under
//! a conflict relation where consecutive edges conflict, need 3 colors (rate `1/3`)
//! as a proper coloring, but the periodic schedule
//! `{1,3}, {2,4}, {1,4}, {2,5}, {3,5}` gives every edge 2 slots out of every 5 —
//! rate `2/5`. This module provides that example and a greedy multicoloring
//! routine for small instances, used by experiment E11.

use crate::schedule::Schedule;
use wagg_conflict::{greedy_color, ConflictGraph};

/// The 5-cycle conflict structure of the paper's Sec. 4 example, as an abstract
/// adjacency list: vertex `i` conflicts with `i ± 1 (mod 5)`.
///
/// The paper notes this conflict pattern is realisable as an actual aggregation tree
/// in the SINR model with `β = 1`; here we work with the abstract structure, which is
/// all the rate comparison needs.
pub fn cycle5_adjacency() -> Vec<Vec<usize>> {
    (0..5).map(|i| vec![(i + 4) % 5, (i + 1) % 5]).collect()
}

/// The paper's 5-slot periodic schedule for the 5-cycle, achieving rate `2/5`:
/// slots `{0,2}, {1,3}, {0,3}, {1,4}, {2,4}` (0-indexed).
///
/// # Examples
///
/// ```
/// use wagg_schedule::multicolor::{cycle5_adjacency, cycle5_multicolor_schedule};
///
/// let schedule = cycle5_multicolor_schedule();
/// assert_eq!(schedule.len(), 5);
/// assert_eq!(schedule.sustained_rate(5), 0.4);
/// ```
pub fn cycle5_multicolor_schedule() -> Schedule {
    Schedule::new(vec![
        vec![0, 2],
        vec![1, 3],
        vec![0, 3],
        vec![1, 4],
        vec![2, 4],
    ])
}

/// Checks that a schedule only ever puts pairwise non-adjacent vertices (under the
/// given adjacency lists) into the same slot.
pub fn schedule_respects_adjacency(schedule: &Schedule, adjacency: &[Vec<usize>]) -> bool {
    schedule.slots().iter().all(|slot| {
        slot.iter().enumerate().all(|(pos, &u)| {
            slot[pos + 1..]
                .iter()
                .all(|&v| u != v && !adjacency[u].contains(&v))
        })
    })
}

/// The best *coloring* rate for the 5-cycle: three colors, rate `1/3`.
///
/// Computed by exhaustive search over colorings to make the comparison in
/// experiment E11 self-contained (no reliance on the known chromatic number).
pub fn cycle5_optimal_coloring_slots() -> usize {
    let adjacency = cycle5_adjacency();
    let n = 5usize;
    // Try k = 1, 2, ... colors by brute force over all k^5 assignments
    // (5 vertices, so this is instant).
    for k in 1..=n {
        let total = k.pow(n as u32);
        for code in 0..total {
            let mut assignment = Vec::with_capacity(n);
            let mut rest = code;
            for _ in 0..n {
                assignment.push(rest % k);
                rest /= k;
            }
            let proper =
                (0..n).all(|v| adjacency[v].iter().all(|&u| assignment[u] != assignment[v]));
            if proper {
                return k;
            }
        }
    }
    n
}

/// A greedy multicoloring of a conflict graph: repeatedly schedules maximal
/// independent sets, cycling the starting vertex, until every vertex has appeared at
/// least `repetitions` times. Returns the resulting periodic schedule.
///
/// This is a heuristic improvement channel over plain coloring for small instances;
/// it never does worse than repeating the greedy coloring `repetitions` times.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_sinr::Link;
/// use wagg_conflict::{ConflictGraph, ConflictRelation};
/// use wagg_schedule::multicolor::greedy_multicolor;
///
/// let links = vec![
///     Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
///     Link::new(1, Point::new(1.0, 0.0), Point::new(2.0, 0.0)),
/// ];
/// let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
/// let schedule = greedy_multicolor(&g, 2);
/// assert!(schedule.sustained_rate(2) >= 0.5 - 1e-12);
/// ```
pub fn greedy_multicolor(graph: &ConflictGraph, repetitions: usize) -> Schedule {
    let n = graph.len();
    if n == 0 || repetitions == 0 {
        return Schedule::new(vec![]);
    }
    let baseline = greedy_color(graph);
    let mut counts = vec![0usize; n];
    let mut slots: Vec<Vec<usize>> = Vec::new();
    let mut start = 0usize;
    let budget = baseline.num_colors() * repetitions + n;
    while counts.iter().any(|&c| c < repetitions) && slots.len() < budget {
        // Build a maximal independent set, preferring vertices with the fewest
        // appearances so far (round-robin fairness), starting from a rotating vertex.
        let mut order: Vec<usize> = (0..n).collect();
        order.rotate_left(start % n);
        order.sort_by_key(|&v| counts[v]);
        let mut slot: Vec<usize> = Vec::new();
        for &v in &order {
            if slot.iter().all(|&u| !graph.are_adjacent(u, v)) {
                slot.push(v);
            }
        }
        for &v in &slot {
            counts[v] += 1;
        }
        slots.push(slot);
        start += 1;
    }
    Schedule::new(slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_conflict::ConflictRelation;
    use wagg_geometry::Point;
    use wagg_sinr::Link;

    #[test]
    fn cycle5_schedule_is_valid_and_beats_coloring() {
        let adjacency = cycle5_adjacency();
        let multicolor = cycle5_multicolor_schedule();
        assert!(schedule_respects_adjacency(&multicolor, &adjacency));
        let coloring_slots = cycle5_optimal_coloring_slots();
        assert_eq!(coloring_slots, 3);
        let coloring_rate = 1.0 / coloring_slots as f64;
        let multicolor_rate = multicolor.sustained_rate(5);
        assert_eq!(multicolor_rate, 0.4);
        assert!(multicolor_rate > coloring_rate);
    }

    #[test]
    fn cycle5_every_vertex_appears_exactly_twice() {
        let s = cycle5_multicolor_schedule();
        let counts = s.transmissions_in_window(5, 5);
        assert_eq!(counts, vec![2; 5]);
    }

    #[test]
    fn adjacency_violations_are_detected() {
        let adjacency = cycle5_adjacency();
        let bad = Schedule::new(vec![vec![0, 1]]);
        assert!(!schedule_respects_adjacency(&bad, &adjacency));
        let repeated = Schedule::new(vec![vec![2, 2]]);
        assert!(!schedule_respects_adjacency(&repeated, &adjacency));
    }

    fn tight_chain(n: usize) -> Vec<Link> {
        (0..n)
            .map(|i| {
                let start = i as f64 * 1.5;
                Link::new(i, Point::on_line(start), Point::on_line(start + 1.0))
            })
            .collect()
    }

    #[test]
    fn greedy_multicolor_covers_everyone_enough_times() {
        let links = tight_chain(7);
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        for reps in [1, 2, 3] {
            let s = greedy_multicolor(&g, reps);
            let counts = s.transmissions_in_window(7, s.len());
            assert!(counts.iter().all(|&c| c >= reps), "reps {reps}: {counts:?}");
            // Slots are independent sets of the conflict graph.
            for slot in s.slots() {
                assert!(g.is_independent_set(slot));
            }
        }
    }

    #[test]
    fn greedy_multicolor_rate_at_least_coloring_rate() {
        let links = tight_chain(9);
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        let coloring_rate = 1.0 / greedy_color(&g).num_colors() as f64;
        let s = greedy_multicolor(&g, 3);
        assert!(s.sustained_rate(9) >= coloring_rate - 1e-12);
    }

    #[test]
    fn greedy_multicolor_empty_inputs() {
        let g = ConflictGraph::build(&[], ConflictRelation::unit_constant());
        assert!(greedy_multicolor(&g, 3).is_empty());
        let links = tight_chain(3);
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        assert!(greedy_multicolor(&g, 0).is_empty());
    }
}
