//! The end-to-end scheduler: conflict-graph coloring plus SINR verification.

use crate::power_mode::PowerMode;
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};
use wagg_conflict::{greedy_color, ConflictGraph};
use wagg_geometry::logmath::{log_log2, log_star};
use wagg_mst::MstError;
use wagg_sinr::link::{indices_by_decreasing_length, link_diversity};
use wagg_sinr::{Link, SinrModel};

/// Configuration of the end-to-end scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// The SINR model parameters.
    pub model: SinrModel,
    /// The power-control mode (determines conflict graph and verification).
    pub mode: PowerMode,
    /// Whether to verify every color class against the physical model and split
    /// classes that fail (guarantees a genuinely feasible schedule at the cost of
    /// possibly more slots). Defaults to `true`.
    pub verify_slots: bool,
}

impl SchedulerConfig {
    /// A configuration with the default model (`α = 3`, `β = 1`, noise-free) and the
    /// given power mode, with slot verification enabled.
    pub fn new(mode: PowerMode) -> Self {
        SchedulerConfig {
            model: SinrModel::default(),
            mode,
            verify_slots: true,
        }
    }

    /// Replaces the SINR model.
    pub fn with_model(mut self, model: SinrModel) -> Self {
        self.model = model;
        self
    }

    /// Enables or disables per-slot verification/splitting.
    pub fn with_verification(mut self, verify: bool) -> Self {
        self.verify_slots = verify;
        self
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig::new(PowerMode::GlobalControl)
    }
}

/// The outcome of scheduling a link set: the schedule itself plus the quantities the
/// paper's analysis talks about, ready for the experiment harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// The verified schedule.
    pub schedule: Schedule,
    /// Number of colors the conflict-graph coloring used, before verification
    /// splitting.
    pub coloring_slots: usize,
    /// Number of slots after verification splitting (equals the schedule length).
    pub verified_slots: usize,
    /// The link diversity `Δ(L)` of the scheduled link set (1.0 for empty sets).
    pub diversity: f64,
    /// `log* Δ` — the paper's bound shape for global power control.
    pub log_star_diversity: u32,
    /// `log log Δ` — the paper's bound shape for oblivious power.
    pub log_log_diversity: f64,
    /// The power mode that was scheduled for.
    pub mode: PowerMode,
    /// Number of links scheduled.
    pub num_links: usize,
}

impl ScheduleReport {
    /// The achieved aggregation rate `1 / slots`.
    pub fn rate(&self) -> f64 {
        self.schedule.rate()
    }
}

/// Schedules an arbitrary link set under the given configuration.
///
/// The links are colored greedily on the conflict graph matched to the power mode;
/// if `verify_slots` is set, each color class is then re-checked against the actual
/// SINR condition and split greedily (first-fit in non-increasing length order) into
/// feasible sub-slots where necessary.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_sinr::Link;
/// use wagg_schedule::{schedule_links, PowerMode, SchedulerConfig};
///
/// let links = vec![
///     Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
///     Link::new(1, Point::new(10.0, 0.0), Point::new(11.0, 0.0)),
///     Link::new(2, Point::new(20.0, 0.0), Point::new(21.0, 0.0)),
/// ];
/// let report = schedule_links(&links, SchedulerConfig::new(PowerMode::Uniform));
/// // Three well-separated unit links fit in a single slot.
/// assert_eq!(report.schedule.len(), 1);
/// assert!(report.schedule.verify(&links, &SchedulerConfig::new(PowerMode::Uniform).model, PowerMode::Uniform));
/// ```
pub fn schedule_links(links: &[Link], config: SchedulerConfig) -> ScheduleReport {
    let relation = config.mode.conflict_relation(config.model.alpha());
    let graph = ConflictGraph::build(links, relation);
    let coloring = greedy_color(&graph);
    let coloring_slots = coloring.num_colors();

    let mut slots: Vec<Vec<usize>> = Vec::new();
    for class in coloring.classes() {
        if class.is_empty() {
            continue;
        }
        if !config.verify_slots {
            slots.push(class);
            continue;
        }
        slots.extend(split_into_feasible(links, &class, &config));
    }

    let diversity = link_diversity(links).unwrap_or(1.0);
    ScheduleReport {
        verified_slots: slots.len(),
        schedule: Schedule::new(slots),
        coloring_slots,
        diversity,
        log_star_diversity: log_star(diversity),
        log_log_diversity: log_log2(diversity),
        mode: config.mode,
        num_links: links.len(),
    }
}

/// Splits one candidate slot into SINR-feasible sub-slots by first-fit over links in
/// non-increasing length order. Singleton slots are always feasible (for positive
/// length links), so the split terminates with at most `|class|` sub-slots.
fn split_into_feasible(
    links: &[Link],
    class: &[usize],
    config: &SchedulerConfig,
) -> Vec<Vec<usize>> {
    // Fast path: the whole class verifies.
    let class_links: Vec<Link> = class.iter().map(|&i| links[i]).collect();
    if config.mode.slot_feasible(&config.model, &class_links) {
        return vec![class.to_vec()];
    }

    // First-fit split in non-increasing length order.
    let class_order = {
        let order_within = indices_by_decreasing_length(&class_links);
        order_within
            .into_iter()
            .map(|pos| class[pos])
            .collect::<Vec<usize>>()
    };
    let mut sub_slots: Vec<Vec<usize>> = Vec::new();
    for idx in class_order {
        let mut placed = false;
        for slot in sub_slots.iter_mut() {
            let mut candidate: Vec<Link> = slot.iter().map(|&i| links[i]).collect();
            candidate.push(links[idx]);
            if config.mode.slot_feasible(&config.model, &candidate) {
                slot.push(idx);
                placed = true;
                break;
            }
        }
        if !placed {
            sub_slots.push(vec![idx]);
        }
    }
    sub_slots
}

/// Schedules the MST of a pointset, oriented towards `sink`, under the given
/// configuration — the full pipeline of Theorem 1.
///
/// # Errors
///
/// Propagates [`MstError`] if the pointset is degenerate (fewer than two points,
/// duplicates) or the sink index is invalid.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_schedule::{schedule_mst, PowerMode, SchedulerConfig};
///
/// let points: Vec<Point> = (0..10).map(|i| Point::new(i as f64, 0.0)).collect();
/// let report = schedule_mst(&points, 0, SchedulerConfig::new(PowerMode::GlobalControl)).unwrap();
/// assert_eq!(report.num_links, 9);
/// assert!(report.schedule.is_partition(9));
/// ```
pub fn schedule_mst(
    points: &[wagg_geometry::Point],
    sink: usize,
    config: SchedulerConfig,
) -> Result<ScheduleReport, MstError> {
    let tree = wagg_mst::euclidean_mst(points)?;
    let links = tree.try_orient_towards(sink)?;
    Ok(schedule_links(&links, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_geometry::Point;
    use wagg_instances::chains::{doubly_exponential_chain, exponential_chain, uniform_chain};
    use wagg_instances::random::{grid, uniform_square};

    fn check_report(links: &[Link], config: SchedulerConfig) -> ScheduleReport {
        let report = schedule_links(links, config);
        assert!(report.schedule.is_partition(links.len()));
        assert!(report.schedule.verify(links, &config.model, config.mode));
        assert!(report.verified_slots >= report.coloring_slots.min(report.verified_slots));
        report
    }

    #[test]
    fn empty_link_set_gives_empty_schedule() {
        let report = schedule_links(&[], SchedulerConfig::default());
        assert!(report.schedule.is_empty());
        assert_eq!(report.num_links, 0);
        assert_eq!(report.diversity, 1.0);
    }

    #[test]
    fn single_link_gets_one_slot() {
        let links = vec![Link::new(0, Point::on_line(0.0), Point::on_line(1.0))];
        for mode in [
            PowerMode::Uniform,
            PowerMode::Linear,
            PowerMode::mean_oblivious(),
            PowerMode::GlobalControl,
        ] {
            let report = check_report(&links, SchedulerConfig::new(mode));
            assert_eq!(report.schedule.len(), 1);
        }
    }

    #[test]
    fn uniform_chain_schedules_in_constant_slots() {
        // Equal-length links on a line: a couple of slots suffice in every mode.
        let inst = uniform_chain(20, 1.0);
        let links = inst.mst_links().unwrap();
        for mode in [PowerMode::mean_oblivious(), PowerMode::GlobalControl] {
            let report = check_report(&links, SchedulerConfig::new(mode));
            assert!(
                report.schedule.len() <= 6,
                "{mode}: {} slots for a uniform chain",
                report.schedule.len()
            );
        }
    }

    #[test]
    fn exponential_chain_needs_many_slots_without_power_control() {
        let inst = exponential_chain(12, 2.0).unwrap();
        let links = inst.mst_links().unwrap();
        let uniform = check_report(&links, SchedulerConfig::new(PowerMode::Uniform));
        let global = check_report(&links, SchedulerConfig::new(PowerMode::GlobalControl));
        // The separation the paper's introduction highlights: uniform power degenerates
        // towards one-link-per-slot, power control keeps the schedule short.
        assert!(uniform.schedule.len() >= links.len() / 2);
        assert!(global.schedule.len() <= 10);
        assert!(global.schedule.len() < uniform.schedule.len());
    }

    #[test]
    fn doubly_exponential_chain_defeats_oblivious_power() {
        let inst = doubly_exponential_chain(6, 0.5, 3.0, 1.0).unwrap();
        let links = inst.mst_links().unwrap();
        let oblivious = check_report(&links, SchedulerConfig::new(PowerMode::mean_oblivious()));
        // Proposition 1: no two links share a slot under P_tau.
        assert_eq!(oblivious.schedule.len(), links.len());
        // Global power control does strictly better on the same instance.
        let global = check_report(&links, SchedulerConfig::new(PowerMode::GlobalControl));
        assert!(global.schedule.len() < oblivious.schedule.len());
    }

    #[test]
    fn random_instances_schedule_near_constant_with_global_power() {
        for seed in [1, 2, 3] {
            let inst = uniform_square(64, 100.0, seed);
            let links = inst.mst_links().unwrap();
            let report = check_report(&links, SchedulerConfig::new(PowerMode::GlobalControl));
            // Theorem 1 / Corollary 1: O(log* Δ) slots; the constant is small.
            assert!(
                report.schedule.len() <= 8 * (report.log_star_diversity.max(1) as usize),
                "seed {seed}: {} slots vs log* Δ = {}",
                report.schedule.len(),
                report.log_star_diversity
            );
        }
    }

    #[test]
    fn grid_schedules_in_constant_slots_every_mode() {
        let inst = grid(6, 6, 1.0);
        let links = inst.mst_links().unwrap();
        for mode in [
            PowerMode::Uniform,
            PowerMode::mean_oblivious(),
            PowerMode::GlobalControl,
        ] {
            let report = check_report(&links, SchedulerConfig::new(mode));
            assert!(
                report.schedule.len() <= 10,
                "{mode}: {} slots on the grid",
                report.schedule.len()
            );
        }
    }

    #[test]
    fn verification_never_lengthens_feasible_colorings_needlessly() {
        // With verification disabled the schedule is exactly the coloring.
        let inst = uniform_square(32, 50.0, 9);
        let links = inst.mst_links().unwrap();
        let config = SchedulerConfig::new(PowerMode::GlobalControl).with_verification(false);
        let report = schedule_links(&links, config);
        assert_eq!(report.coloring_slots, report.schedule.len());
        assert!(report.schedule.is_partition(links.len()));
    }

    #[test]
    fn schedule_mst_end_to_end() {
        let points: Vec<Point> = (0..15)
            .map(|i| Point::new(i as f64, ((i * 3) % 5) as f64))
            .collect();
        let report = schedule_mst(
            &points,
            7,
            SchedulerConfig::new(PowerMode::mean_oblivious()),
        )
        .unwrap();
        assert_eq!(report.num_links, 14);
        assert!(report.schedule.is_partition(14));
        assert!(report.rate() > 0.0);
    }

    #[test]
    fn schedule_mst_propagates_errors() {
        assert!(schedule_mst(&[], 0, SchedulerConfig::default()).is_err());
        let dup = vec![Point::origin(), Point::origin()];
        assert!(schedule_mst(&dup, 0, SchedulerConfig::default()).is_err());
    }

    #[test]
    fn report_diversity_fields_are_consistent() {
        let inst = exponential_chain(10, 2.0).unwrap();
        let links = inst.mst_links().unwrap();
        let report = schedule_links(&links, SchedulerConfig::new(PowerMode::GlobalControl));
        assert!(report.diversity >= 1.0);
        assert_eq!(report.log_star_diversity, log_star(report.diversity));
        assert!((report.log_log_diversity - log_log2(report.diversity)).abs() < 1e-12);
    }
}
