//! The end-to-end scheduler: conflict-graph coloring plus SINR verification.

use crate::power_mode::PowerMode;
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};
use wagg_conflict::{greedy_color, ConflictGraph};
use wagg_geometry::logmath::{log_log2, log_star};
use wagg_mst::MstError;
use wagg_obs::Recorder;
use wagg_sinr::link::link_diversity;
use wagg_sinr::{Link, PathLossCache, SinrModel};

/// Configuration of the end-to-end scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// The SINR model parameters.
    pub model: SinrModel,
    /// The power-control mode (determines conflict graph and verification).
    pub mode: PowerMode,
    /// Whether to verify every color class against the physical model and split
    /// classes that fail (guarantees a genuinely feasible schedule at the cost of
    /// possibly more slots). Defaults to `true`.
    pub verify_slots: bool,
}

impl SchedulerConfig {
    /// A configuration with the default model (`α = 3`, `β = 1`, noise-free) and the
    /// given power mode, with slot verification enabled.
    pub fn new(mode: PowerMode) -> Self {
        SchedulerConfig {
            model: SinrModel::default(),
            mode,
            verify_slots: true,
        }
    }

    /// Replaces the SINR model.
    pub fn with_model(mut self, model: SinrModel) -> Self {
        self.model = model;
        self
    }

    /// Enables or disables per-slot verification/splitting.
    pub fn with_verification(mut self, verify: bool) -> Self {
        self.verify_slots = verify;
        self
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig::new(PowerMode::GlobalControl)
    }
}

/// The outcome of scheduling a link set: the schedule itself plus the quantities the
/// paper's analysis talks about, ready for the experiment harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// The verified schedule.
    pub schedule: Schedule,
    /// Number of colors the conflict-graph coloring used, before verification
    /// splitting.
    pub coloring_slots: usize,
    /// Number of slots after verification splitting (equals the schedule length).
    pub verified_slots: usize,
    /// The link diversity `Δ(L)` of the scheduled link set (1.0 for empty sets).
    pub diversity: f64,
    /// `log* Δ` — the paper's bound shape for global power control.
    pub log_star_diversity: u32,
    /// `log log Δ` — the paper's bound shape for oblivious power.
    pub log_log_diversity: f64,
    /// The power mode that was scheduled for.
    pub mode: PowerMode,
    /// Number of links scheduled.
    pub num_links: usize,
}

impl ScheduleReport {
    /// The achieved aggregation rate `1 / slots`.
    pub fn rate(&self) -> f64 {
        self.schedule.rate()
    }
}

/// The static scheduling kernel: builds the conflict graph matched to the
/// power mode, colors it greedily, and (when `verify_slots` is set) re-checks
/// each color class against the actual SINR condition, splitting classes
/// first-fit in non-increasing length order where necessary.
///
/// This is the primitive `wagg_core::session::Session`'s static backend
/// wraps. Application code should schedule through the session (which also
/// offers the incremental and sharded execution strategies behind the same
/// surface); substrate crates *below* the facade (multihop, latency, fading)
/// call this directly.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_sinr::Link;
/// use wagg_schedule::{solve_static, PowerMode, SchedulerConfig};
///
/// let links = vec![
///     Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
///     Link::new(1, Point::new(10.0, 0.0), Point::new(11.0, 0.0)),
///     Link::new(2, Point::new(20.0, 0.0), Point::new(21.0, 0.0)),
/// ];
/// let report = solve_static(&links, SchedulerConfig::new(PowerMode::Uniform));
/// // Three well-separated unit links fit in a single slot.
/// assert_eq!(report.schedule.len(), 1);
/// assert!(report.schedule.verify(&links, &SchedulerConfig::new(PowerMode::Uniform).model, PowerMode::Uniform));
/// ```
pub fn solve_static(links: &[Link], config: SchedulerConfig) -> ScheduleReport {
    solve_static_traced(links, config, &Recorder::disabled())
}

/// [`solve_static`] with phase instrumentation: the conflict-graph build
/// records its `conflict/*` phase spans and the coloring/verification pass
/// records `static/color` / `static/verify` on `rec` (see `wagg-obs`). With
/// the workspace `obs` feature off, or with a disabled recorder, this is
/// exactly [`solve_static`].
pub fn solve_static_traced(
    links: &[Link],
    config: SchedulerConfig,
    rec: &Recorder,
) -> ScheduleReport {
    let relation = config.mode.conflict_relation(config.model.alpha());
    let graph = ConflictGraph::build_traced(links, relation, rec);
    schedule_prebuilt_traced(&graph, None, config, rec)
}

/// Schedules an arbitrary link set under the given configuration.
#[deprecated(
    since = "0.2.0",
    note = "schedule through `wagg_core::session::Session` (explicit `Backend::Static` reproduces \
            this entry point slot for slot); substrate crates below the facade use `solve_static`"
)]
pub fn schedule_links(links: &[Link], config: SchedulerConfig) -> ScheduleReport {
    solve_static(links, config)
}

/// Schedules the links of an already-built conflict graph, optionally reusing
/// an already-built path-loss cache for the slot probes.
///
/// This is the entry point for callers that maintain the interference state
/// *incrementally* (the `wagg-engine` crate): after a churn or mobility event
/// they materialise their patched adjacency into a [`ConflictGraph`] snapshot
/// and lend their patched per-link path-loss state as `cache`, so rescheduling
/// performs no geometric work beyond the coloring and the slot probes
/// themselves. [`schedule_links`] is exactly `schedule_prebuilt(&build(..),
/// None, config)`.
///
/// When `cache` is `None` and the power mode has a fixed assignment (and the
/// model is noise-free), the cache is built **once** here and shared across
/// every slot-feasibility probe of the run — the seed rebuilt it per
/// `is_feasible_by_affectance` call, i.e. per probe.
///
/// A lent `cache` must hold exactly what `PathLossCache::new` would compute
/// for `graph.links()` (in vertex order) under the assignment of
/// `config.mode` — only the lengths are checked here. The cache kernel is
/// noise-free, so under a noisy model a lent cache is ignored and every
/// probe falls back to the materialised SINR check.
///
/// # Panics
///
/// Panics if the graph was built under a different conflict relation than
/// `config.mode` implies, or if `cache` covers a different number of links.
pub fn schedule_prebuilt(
    graph: &ConflictGraph,
    cache: Option<&PathLossCache<'_>>,
    config: SchedulerConfig,
) -> ScheduleReport {
    schedule_prebuilt_traced(graph, cache, config, &Recorder::disabled())
}

/// [`schedule_prebuilt`] with phase instrumentation: records a `static` span
/// with `color` and `verify` children on `rec`, plus the
/// `static.coloring_slots` / `static.verified_slots` counters. With the
/// workspace `obs` feature off, or with a disabled recorder, this is exactly
/// [`schedule_prebuilt`].
pub fn schedule_prebuilt_traced(
    graph: &ConflictGraph,
    cache: Option<&PathLossCache<'_>>,
    config: SchedulerConfig,
    rec: &Recorder,
) -> ScheduleReport {
    assert_eq!(
        graph.relation(),
        config.mode.conflict_relation(config.model.alpha()),
        "conflict graph was built for a different power mode"
    );
    let links = graph.links();
    if let Some(cache) = cache {
        assert_eq!(
            cache.links().len(),
            links.len(),
            "path-loss cache covers a different link set"
        );
    }
    // The affectance kernel the cache feeds is noise-free; with noise the
    // probes must evaluate the full SINR quotient per materialised slot.
    let cache = cache.filter(|_| config.model.noise() == 0.0);
    let root = rec.span("static");
    let color_span = root.child("color");
    let coloring = greedy_color(graph);
    let coloring_slots = coloring.num_colors();
    color_span.finish();

    let verify_span = root.child("verify");
    // One shared cache for every slot probe of this run (unless the caller
    // lent one, or the mode/model need per-slot treatment).
    let owned_cache = match cache {
        Some(_) => None,
        None if config.verify_slots => fixed_probe_cache(links, &config),
        None => None,
    };
    let cache = cache.or(owned_cache.as_ref());

    let mut slots: Vec<Vec<usize>> = Vec::new();
    for class in coloring.classes() {
        if class.is_empty() {
            continue;
        }
        if !config.verify_slots {
            slots.push(class);
            continue;
        }
        slots.extend(split_class_into_feasible(links, &class, &config, cache));
    }
    verify_span.finish();
    rec.add("static.coloring_slots", coloring_slots as u64);
    rec.add("static.verified_slots", slots.len() as u64);

    let diversity = link_diversity(links).unwrap_or(1.0);
    ScheduleReport {
        verified_slots: slots.len(),
        schedule: Schedule::new(slots),
        coloring_slots,
        diversity,
        log_star_diversity: log_star(diversity),
        log_log_diversity: log_log2(diversity),
        mode: config.mode,
        num_links: links.len(),
    }
}

/// The shared slot-probe cache for fixed power assignments under a noise-free
/// model; `None` when probes must be evaluated per materialised slot (global
/// power control's spectral test, or a noisy model).
fn fixed_probe_cache<'a>(links: &'a [Link], config: &SchedulerConfig) -> Option<PathLossCache<'a>> {
    if config.model.noise() != 0.0 {
        return None;
    }
    config
        .mode
        .assignment()
        .map(|assignment| PathLossCache::new(&config.model, links, &assignment))
}

/// Whether the subset `members` of `links` can share a slot, probing through
/// the shared `cache` when one is available (identical verdict to
/// [`PowerMode::slot_feasible`] on the materialised subset — see
/// [`PathLossCache::subset_feasible`]) and materialising the subset otherwise.
pub(crate) fn slot_ok(
    links: &[Link],
    members: &[usize],
    config: &SchedulerConfig,
    cache: Option<&PathLossCache<'_>>,
) -> bool {
    if members.len() <= 1 {
        return members.iter().all(|&i| links[i].length() > 0.0);
    }
    if let Some(cache) = cache {
        return cache.subset_feasible(members);
    }
    let slot_links: Vec<Link> = members.iter().map(|&i| links[i]).collect();
    config.mode.slot_feasible(&config.model, &slot_links)
}

/// Splits one candidate slot into SINR-feasible sub-slots by first-fit over links in
/// non-increasing length order. Singleton slots are always feasible (for positive
/// length links), so the split terminates with at most `|class|` sub-slots.
///
/// This is the verification-splitting primitive [`schedule_prebuilt`] applies
/// to every color class; it is public so out-of-crate schedulers (the sharded
/// stitcher in `wagg-partition`) can re-verify *stitched* slots with exactly
/// the semantics the unsharded path has. `class` holds indices into `links`;
/// `cache`, when given, must cover `links` in order (same contract as
/// [`schedule_prebuilt`]) and is only consulted for noise-free models.
pub fn split_class_into_feasible(
    links: &[Link],
    class: &[usize],
    config: &SchedulerConfig,
    cache: Option<&PathLossCache<'_>>,
) -> Vec<Vec<usize>> {
    // The cache kernel is noise-free; under a noisy model every probe must
    // materialise the slot (the same filter schedule_prebuilt applies).
    let cache = cache.filter(|_| config.model.noise() == 0.0);
    // Fast path: the whole class verifies.
    if slot_ok(links, class, config, cache) {
        return vec![class.to_vec()];
    }

    // First-fit split in non-increasing length order (ties by link id, the
    // same deterministic order `indices_by_decreasing_length` uses).
    let class_order = {
        let mut order = class.to_vec();
        order.sort_by(|&a, &b| {
            links[b]
                .length()
                .total_cmp(&links[a].length())
                .then(links[a].id.cmp(&links[b].id))
        });
        order
    };
    let mut sub_slots: Vec<Vec<usize>> = Vec::new();
    let mut candidate: Vec<usize> = Vec::new();
    for idx in class_order {
        let mut placed = false;
        for slot in sub_slots.iter_mut() {
            candidate.clear();
            candidate.extend_from_slice(slot);
            candidate.push(idx);
            if slot_ok(links, &candidate, config, cache) {
                slot.push(idx);
                placed = true;
                break;
            }
        }
        if !placed {
            sub_slots.push(vec![idx]);
        }
    }
    sub_slots
}

/// Schedules the MST of a pointset, oriented towards `sink`, under the given
/// configuration — the full pipeline of Theorem 1.
///
/// # Errors
///
/// Propagates [`MstError`] if the pointset is degenerate (fewer than two points,
/// duplicates) or the sink index is invalid.
#[deprecated(
    since = "0.2.0",
    note = "build the MST links (`wagg_mst::euclidean_mst` + `try_orient_towards`, or \
            `wagg_core::AggregationProblem`) and schedule through `wagg_core::session::Session`"
)]
pub fn schedule_mst(
    points: &[wagg_geometry::Point],
    sink: usize,
    config: SchedulerConfig,
) -> Result<ScheduleReport, MstError> {
    let tree = wagg_mst::euclidean_mst(points)?;
    let links = tree.try_orient_towards(sink)?;
    Ok(solve_static(&links, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_geometry::Point;
    use wagg_instances::chains::{doubly_exponential_chain, exponential_chain, uniform_chain};
    use wagg_instances::random::{grid, uniform_square};

    fn check_report(links: &[Link], config: SchedulerConfig) -> ScheduleReport {
        let report = solve_static(links, config);
        assert!(report.schedule.is_partition(links.len()));
        assert!(report.schedule.verify(links, &config.model, config.mode));
        assert!(report.verified_slots >= report.coloring_slots.min(report.verified_slots));
        report
    }

    #[test]
    fn empty_link_set_gives_empty_schedule() {
        let report = solve_static(&[], SchedulerConfig::default());
        assert!(report.schedule.is_empty());
        assert_eq!(report.num_links, 0);
        assert_eq!(report.diversity, 1.0);
    }

    #[test]
    fn single_link_gets_one_slot() {
        let links = vec![Link::new(0, Point::on_line(0.0), Point::on_line(1.0))];
        for mode in [
            PowerMode::Uniform,
            PowerMode::Linear,
            PowerMode::mean_oblivious(),
            PowerMode::GlobalControl,
        ] {
            let report = check_report(&links, SchedulerConfig::new(mode));
            assert_eq!(report.schedule.len(), 1);
        }
    }

    #[test]
    fn uniform_chain_schedules_in_constant_slots() {
        // Equal-length links on a line: a couple of slots suffice in every mode.
        let inst = uniform_chain(20, 1.0);
        let links = inst.mst_links().unwrap();
        for mode in [PowerMode::mean_oblivious(), PowerMode::GlobalControl] {
            let report = check_report(&links, SchedulerConfig::new(mode));
            assert!(
                report.schedule.len() <= 6,
                "{mode}: {} slots for a uniform chain",
                report.schedule.len()
            );
        }
    }

    #[test]
    fn exponential_chain_needs_many_slots_without_power_control() {
        let inst = exponential_chain(12, 2.0).unwrap();
        let links = inst.mst_links().unwrap();
        let uniform = check_report(&links, SchedulerConfig::new(PowerMode::Uniform));
        let global = check_report(&links, SchedulerConfig::new(PowerMode::GlobalControl));
        // The separation the paper's introduction highlights: uniform power degenerates
        // towards one-link-per-slot, power control keeps the schedule short.
        assert!(uniform.schedule.len() >= links.len() / 2);
        assert!(global.schedule.len() <= 10);
        assert!(global.schedule.len() < uniform.schedule.len());
    }

    #[test]
    fn doubly_exponential_chain_defeats_oblivious_power() {
        let inst = doubly_exponential_chain(6, 0.5, 3.0, 1.0).unwrap();
        let links = inst.mst_links().unwrap();
        let oblivious = check_report(&links, SchedulerConfig::new(PowerMode::mean_oblivious()));
        // Proposition 1: no two links share a slot under P_tau.
        assert_eq!(oblivious.schedule.len(), links.len());
        // Global power control does strictly better on the same instance.
        let global = check_report(&links, SchedulerConfig::new(PowerMode::GlobalControl));
        assert!(global.schedule.len() < oblivious.schedule.len());
    }

    #[test]
    fn random_instances_schedule_near_constant_with_global_power() {
        for seed in [1, 2, 3] {
            let inst = uniform_square(64, 100.0, seed);
            let links = inst.mst_links().unwrap();
            let report = check_report(&links, SchedulerConfig::new(PowerMode::GlobalControl));
            // Theorem 1 / Corollary 1: O(log* Δ) slots; the constant is small.
            assert!(
                report.schedule.len() <= 8 * (report.log_star_diversity.max(1) as usize),
                "seed {seed}: {} slots vs log* Δ = {}",
                report.schedule.len(),
                report.log_star_diversity
            );
        }
    }

    #[test]
    fn grid_schedules_in_constant_slots_every_mode() {
        let inst = grid(6, 6, 1.0);
        let links = inst.mst_links().unwrap();
        for mode in [
            PowerMode::Uniform,
            PowerMode::mean_oblivious(),
            PowerMode::GlobalControl,
        ] {
            let report = check_report(&links, SchedulerConfig::new(mode));
            assert!(
                report.schedule.len() <= 10,
                "{mode}: {} slots on the grid",
                report.schedule.len()
            );
        }
    }

    #[test]
    fn verification_never_lengthens_feasible_colorings_needlessly() {
        // With verification disabled the schedule is exactly the coloring.
        let inst = uniform_square(32, 50.0, 9);
        let links = inst.mst_links().unwrap();
        let config = SchedulerConfig::new(PowerMode::GlobalControl).with_verification(false);
        let report = solve_static(&links, config);
        assert_eq!(report.coloring_slots, report.schedule.len());
        assert!(report.schedule.is_partition(links.len()));
    }

    #[test]
    #[allow(deprecated)]
    fn schedule_mst_end_to_end() {
        let points: Vec<Point> = (0..15)
            .map(|i| Point::new(i as f64, ((i * 3) % 5) as f64))
            .collect();
        let report = schedule_mst(
            &points,
            7,
            SchedulerConfig::new(PowerMode::mean_oblivious()),
        )
        .unwrap();
        assert_eq!(report.num_links, 14);
        assert!(report.schedule.is_partition(14));
        assert!(report.rate() > 0.0);
    }

    #[test]
    fn prebuilt_graph_and_shared_cache_reproduce_schedule_links() {
        let inst = uniform_square(48, 90.0, 21);
        let links = inst.mst_links().unwrap();
        for mode in [
            PowerMode::Uniform,
            PowerMode::mean_oblivious(),
            PowerMode::GlobalControl,
        ] {
            let config = SchedulerConfig::new(mode);
            let direct = solve_static(&links, config);
            let graph = ConflictGraph::build(&links, mode.conflict_relation(config.model.alpha()));
            let prebuilt = schedule_prebuilt(&graph, None, config);
            assert_eq!(
                direct, prebuilt,
                "{mode}: prebuilt graph changed the schedule"
            );
            if let Some(assignment) = mode.assignment() {
                let cache = PathLossCache::new(&config.model, &links, &assignment);
                let shared = schedule_prebuilt(&graph, Some(&cache), config);
                assert_eq!(direct, shared, "{mode}: lent cache changed the schedule");
            }
        }
    }

    #[test]
    #[should_panic(expected = "different power mode")]
    fn prebuilt_rejects_mismatched_relations() {
        let inst = uniform_square(16, 40.0, 2);
        let links = inst.mst_links().unwrap();
        let graph = ConflictGraph::build(
            &links,
            PowerMode::Uniform.conflict_relation(SinrModel::default().alpha()),
        );
        let _ = schedule_prebuilt(&graph, None, SchedulerConfig::new(PowerMode::GlobalControl));
    }

    #[test]
    #[allow(deprecated)]
    fn schedule_mst_propagates_errors() {
        assert!(schedule_mst(&[], 0, SchedulerConfig::default()).is_err());
        let dup = vec![Point::origin(), Point::origin()];
        assert!(schedule_mst(&dup, 0, SchedulerConfig::default()).is_err());
    }

    #[test]
    fn report_diversity_fields_are_consistent() {
        let inst = exponential_chain(10, 2.0).unwrap();
        let links = inst.mst_links().unwrap();
        let report = solve_static(&links, SchedulerConfig::new(PowerMode::GlobalControl));
        assert!(report.diversity >= 1.0);
        assert_eq!(report.log_star_diversity, log_star(report.diversity));
        assert!((report.log_log_diversity - log_log2(report.diversity)).abs() < 1e-12);
    }
}
