//! Warm-start slot repair: re-place only the links an event batch touched.
//!
//! Every backend used to recolor from scratch per solve — PRs 2–5 made the
//! conflict graph, the path-loss cache and the per-shard state incremental,
//! but the *slot assignment* itself was discarded per event. This module
//! closes that gap: [`solve_repair`] takes the previous coloring (keyed by
//! vertex position, `None` marking the links an event batch dirtied), keeps
//! every clean link in its slot, re-verifies only the slots whose affectance
//! budget may have changed, and first-fits the dirty links into the lowest
//! feasible slot — microseconds-to-milliseconds per event batch instead of a
//! full recolor.
//!
//! The module is backend-agnostic: callers supply the conflict neighbourhood
//! (`neighbors`, e.g. the engine's incrementally maintained adjacency rows)
//! and a [`SlotJudge`] for the physical feasibility probes (the
//! [`CacheJudge`] here reuses the static kernel's probe semantics; the
//! sharded backend judges through `wagg_partition`'s hierarchical
//! `AffectanceVerifier`). The session facade owns the policy: which links
//! are dirty, when the schedule-length drift against the from-scratch
//! baseline breaches the watermark ([`RepairStats::drift`] vs
//! [`RepairStats::watermark`]) and a full recolor runs instead.
//!
//! # Correctness
//!
//! * Removing links from a slot never invalidates it: every feasibility
//!   notion the workspace schedules under (the affectance kernel of
//!   `PathLossCache`, the materialised [`PowerMode::slot_feasible`] checks)
//!   is monotone under subsets, so evictions and departures are safe without
//!   re-checking the survivors' other slots.
//! * Additions are always probed against the *full* candidate slot (graph
//!   constraint via `neighbors`, physical constraint via the judge), exactly
//!   like the static kernel's first-fit split.
//! * Dirty links are placed in non-increasing length order with ties by link
//!   id — the same deterministic order [`split_class_into_feasible`] uses —
//!   so repair runs are reproducible.
//!
//! [`split_class_into_feasible`]: crate::scheduler::split_class_into_feasible
//! [`PowerMode::slot_feasible`]: crate::PowerMode::slot_feasible

use crate::schedule::Schedule;
use crate::scheduler::{slot_ok, ScheduleReport, SchedulerConfig};
use serde::{Deserialize, Serialize};
use std::fmt;
use wagg_geometry::logmath::{log_log2, log_star};
use wagg_obs::Recorder;
use wagg_sinr::link::link_diversity;
use wagg_sinr::{Link, PathLossCache};

/// How a repair-enabled solve produced its schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairDecision {
    /// The previous assignment was repaired in place (the fast path).
    Repaired,
    /// No warm state yet (first solve, or the first solve after a reset):
    /// a full recolor ran and seeded the warm state.
    ColdStart,
    /// Repair succeeded but the schedule length drifted past the watermark;
    /// a full recolor ran instead and re-anchored the baseline.
    WatermarkBreach,
    /// The backend has no incremental state to repair from (static backend,
    /// sharded backend without partition hints); every solve recolors.
    Unsupported,
}

impl RepairDecision {
    /// The round-trippable token ([`Display`](fmt::Display) prints the same).
    pub fn token(&self) -> &'static str {
        match self {
            RepairDecision::Repaired => "repaired",
            RepairDecision::ColdStart => "cold-start",
            RepairDecision::WatermarkBreach => "watermark-breach",
            RepairDecision::Unsupported => "unsupported",
        }
    }

    /// Parses a token produced by [`RepairDecision::token`].
    ///
    /// # Errors
    ///
    /// Describes the unknown token.
    pub fn parse_token(token: &str) -> Result<Self, String> {
        match token {
            "repaired" => Ok(RepairDecision::Repaired),
            "cold-start" => Ok(RepairDecision::ColdStart),
            "watermark-breach" => Ok(RepairDecision::WatermarkBreach),
            "unsupported" => Ok(RepairDecision::Unsupported),
            other => Err(format!("unknown repair decision {other:?}")),
        }
    }
}

impl fmt::Display for RepairDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Warm-start accounting carried by repair-enabled
/// [`SolveReport`](crate::SolveReport)s (`None` when repair is disabled —
/// the report is then byte-identical to a pre-repair one).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepairStats {
    /// How the schedule was produced (see [`RepairDecision`]).
    pub decision: RepairDecision,
    /// Links the event batch dirtied (inserted, relocated, or re-seated by a
    /// node move) since the previous solve.
    pub dirty_links: usize,
    /// Links actually re-placed: the dirty links plus every link evicted
    /// from a re-verified slot. On a full recolor, the whole universe.
    pub replaced_links: usize,
    /// Schedule length of the from-scratch baseline the drift is measured
    /// against (the last full recolor).
    pub baseline_slots: usize,
    /// Relative schedule-length drift vs. the baseline,
    /// `(slots - baseline) / baseline`.
    pub drift: f64,
    /// The configured drift watermark; repairs drifting past it fall back
    /// to a full recolor.
    pub watermark: f64,
}

/// Physical slot-feasibility probes for [`solve_repair`] — the seam that
/// lets each backend judge with whatever state it maintains incrementally.
pub trait SlotJudge {
    /// Whether the links at `members` (vertex positions) can share a slot.
    /// Must match the verdict the backend's full solve would reach for the
    /// same materialised slot.
    fn feasible(&self, members: &[usize]) -> bool;

    /// One re-verification sweep over a slot: `(kept, evicted)`, member
    /// order preserved, with `kept` feasible as a set. The default is
    /// all-or-nothing (sound for any judge); judges over a monotone kernel
    /// override it with per-target verdicts so one bad member does not
    /// displace the whole slot.
    fn evict(&self, members: &[usize]) -> (Vec<usize>, Vec<usize>) {
        if self.feasible(members) {
            (members.to_vec(), Vec::new())
        } else {
            (Vec::new(), members.to_vec())
        }
    }

    /// Whether this judge's feasibility decomposes into per-target additive
    /// budgets: a slot is feasible iff every member's budget (the sum of
    /// [`SlotJudge::contribution`] over its slotmates) stays within
    /// [`SlotJudge::threshold`]. Additive judges unlock the O(|slot|)
    /// admission probes that make repair microseconds instead of a full
    /// slot re-verification per probe.
    fn additive(&self) -> bool {
        false
    }

    /// The budget threshold additive admission compares against (the
    /// affectance kernel's `1/β`). Only consulted when
    /// [`SlotJudge::additive`] is true.
    fn threshold(&self) -> f64 {
        1.0
    }

    /// The exact contribution of `source`'s transmission to `target`'s
    /// budget (vertex positions): `0` for the target itself,
    /// `f64::INFINITY` when the pair cannot be priced (unknown power or
    /// weight, collocated sender — the kernel's error-means-infeasible
    /// convention). Only consulted when [`SlotJudge::additive`] is true.
    fn contribution(&self, source: usize, target: usize) -> f64 {
        let _ = (source, target);
        f64::INFINITY
    }
}

/// The default judge: exactly the static kernel's slot probes — through a
/// shared [`PathLossCache`] when the power mode has a fixed assignment under
/// a noise-free model, materialising the slot otherwise. A lent cache must
/// cover `links` in vertex order (the [`schedule_prebuilt`] contract).
///
/// [`schedule_prebuilt`]: crate::scheduler::schedule_prebuilt
#[derive(Debug)]
pub struct CacheJudge<'a> {
    links: &'a [Link],
    config: SchedulerConfig,
    cache: Option<&'a PathLossCache<'a>>,
}

impl<'a> CacheJudge<'a> {
    /// A judge over `links`; `cache` is consulted only for noise-free models
    /// (the cache kernel is noise-free — same filter the kernel applies).
    pub fn new(
        links: &'a [Link],
        config: SchedulerConfig,
        cache: Option<&'a PathLossCache<'a>>,
    ) -> Self {
        let cache = cache.filter(|_| config.model.noise() == 0.0);
        if let Some(cache) = cache {
            assert_eq!(
                cache.links().len(),
                links.len(),
                "path-loss cache covers a different link set"
            );
        }
        CacheJudge {
            links,
            config,
            cache,
        }
    }
}

impl SlotJudge for CacheJudge<'_> {
    fn feasible(&self, members: &[usize]) -> bool {
        slot_ok(self.links, members, &self.config, self.cache)
    }

    fn additive(&self) -> bool {
        self.cache.is_some()
    }

    fn threshold(&self) -> f64 {
        1.0 / self.config.model.beta()
    }

    #[inline]
    fn contribution(&self, source: usize, target: usize) -> f64 {
        self.cache
            .expect("contribution is only consulted on additive judges")
            .interference_term(source, target)
            .unwrap_or(f64::INFINITY)
    }

    fn evict(&self, members: &[usize]) -> (Vec<usize>, Vec<usize>) {
        let Some(cache) = self.cache else {
            // No cache (global power control, or a noisy model): the
            // feasibility test is holistic, so eviction is all-or-nothing.
            return if self.feasible(members) {
                (members.to_vec(), Vec::new())
            } else {
                (Vec::new(), members.to_vec())
            };
        };
        if members.len() <= 1 {
            return if self.feasible(members) {
                (members.to_vec(), Vec::new())
            } else {
                (Vec::new(), members.to_vec())
            };
        }
        // Per-target verdicts with every member still present: the
        // affectance kernel is monotone, so the kept targets (which passed
        // with the evicted interferers included) remain feasible together.
        let inv_beta = 1.0 / self.config.model.beta();
        let mut kept = Vec::with_capacity(members.len());
        let mut evicted = Vec::new();
        for k in 0..members.len() {
            let ok = cache
                .subset_relative_interference_on(members, k)
                .is_some_and(|total| total <= inv_beta);
            if ok {
                kept.push(members[k]);
            } else {
                evicted.push(members[k]);
            }
        }
        (kept, evicted)
    }
}

/// One re-placed link in a [`RepairOutcome`]: where it landed and the
/// budget it closed with. Slot indices are in the *final* (compacted)
/// numbering of [`RepairOutcome::report`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairPlacement {
    /// The re-placed link's vertex position.
    pub pos: usize,
    /// Its slot index in the repaired schedule.
    pub slot: usize,
    /// Its final affectance budget (zero for non-additive judges).
    pub budget: f64,
}

/// What one [`solve_repair`] call produced: the repaired report, the
/// re-placement accounting, the per-vertex budgets to warm-start the
/// *next* repair with (see the budget contract on [`solve_repair`]), and
/// the per-link deltas that let a caller patch its warm state in place —
/// O(replaced) instead of an O(n) re-capture of the whole assignment.
///
/// Replaying the deltas onto the previous warm state reproduces the full
/// vectors exactly (the capture-equivalence contract, asserted by the
/// session backends in debug builds):
///
/// 1. when [`RepairOutcome::slot_remap`] is `Some`, map every surviving
///    previous color through it (empty slots were dropped, so every color
///    after the first dropped one shifted down);
/// 2. add each [`RepairOutcome::increments`] entry to the stored budget at
///    that position, in order (they replay the kernel's own additions, so
///    the result is bit-identical);
/// 3. set each [`RepairOutcome::placements`] entry's color and budget
///    (placements overwrite, so steps 2–3 commute per position only in
///    this order — a re-placed link may also appear as an increment
///    target).
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The repaired schedule report.
    pub report: ScheduleReport,
    /// Links re-placed overall: the dirty links plus every evicted member.
    pub replaced: usize,
    /// How many of the replaced links the re-verification sweep evicted.
    pub evicted: usize,
    /// Per-vertex affectance budgets after the repair — each an upper bound
    /// on the exact affectance total the link sees inside its slot. All
    /// zeros for non-additive judges (the opaque probe path keeps no
    /// budgets).
    pub budgets: Vec<f64>,
    /// Every re-placed link (the dirty set plus sweep evictions) with its
    /// final slot and budget, in placement order.
    pub placements: Vec<RepairPlacement>,
    /// Budget increments the additive admissions applied to already-placed
    /// slot members, `(position, increment)` in application order. Empty
    /// for non-additive judges.
    pub increments: Vec<(usize, f64)>,
    /// `Some(old → new)` when the repair left slots empty and the result
    /// compacted them away (`usize::MAX` marks a dropped color); `None`
    /// when every previous slot index survived unchanged.
    pub slot_remap: Option<Vec<usize>>,
}

/// Exact per-vertex budgets for a warm assignment, summed through the
/// judge's pairwise [`SlotJudge::contribution`] terms — the reference
/// implementation of the budget contract [`solve_repair`] consumes.
/// Backends with a certified hierarchical verifier capture budgets through
/// it instead (same contract, near-linear instead of quadratic); this
/// helper is for tests and small universes.
pub fn capture_budgets(judge: &dyn SlotJudge, colors: &[Option<usize>]) -> Vec<f64> {
    let n = colors.len();
    let mut budgets = vec![0.0f64; n];
    if !judge.additive() {
        return budgets;
    }
    let mut slots: Vec<Vec<usize>> = Vec::new();
    for (i, &color) in colors.iter().enumerate() {
        if let Some(c) = color {
            if c >= slots.len() {
                slots.resize(c + 1, Vec::new());
            }
            slots[c].push(i);
        }
    }
    for slot in &slots {
        for &i in slot {
            budgets[i] = slot.iter().map(|&j| judge.contribution(j, i)).sum();
        }
    }
    budgets
}

/// Repairs a previous slot assignment after an event batch instead of
/// recoloring from scratch.
///
/// * `prev_colors[i]` is link `i`'s slot in the previous schedule, `None`
///   for dirty links (inserted, relocated, re-seated — anything whose
///   conflict neighbourhood changed). Colors need not be contiguous; empty
///   slots are dropped from the result.
/// * `prev_budgets[i]` must **upper-bound** the exact affectance total link
///   `i` sees inside its previous slot (exact values, a certified
///   hierarchical bound, or `f64::INFINITY` when unknown — conservative
///   always errs toward eviction/rejection, never toward an infeasible
///   admission). Entries for dirty links are ignored. Only consulted for
///   additive judges; pass the previous [`RepairOutcome::budgets`], or
///   [`capture_budgets`] after a full recolor. Budgets are deliberately
///   *not* decreased on departures (that would need the departed geometry);
///   the stored bounds just grow conservative until the drift watermark
///   forces a re-anchoring recolor.
/// * `neighbors(i)` must yield `i`'s *current* conflict neighbours (vertex
///   positions) — e.g. the engine's incrementally maintained adjacency row.
/// * `check` lists links whose slots must be re-verified even though the
///   links themselves stay put — typically the dirty links' conflict
///   neighbours, whose affectance budget may have changed. For additive
///   judges each checked link's stored budget is compared against the
///   threshold (O(1) per link); otherwise each checked link's slot gets one
///   [`SlotJudge::evict`] sweep. Rejected members join the dirty links for
///   re-placement. Ignored when `config.verify_slots` is off (graph
///   constraints cannot go stale for links that did not move).
///
/// Dirty links go first-fit into the lowest slot passing both the graph
/// constraint and the judge (a fresh slot at the end otherwise), in
/// non-increasing length order with ties by link id. For additive judges an
/// admission probe is O(|slot|) with early exit — the new member's own
/// budget accumulates while every slotmate's budget is checked against the
/// threshold with the new contribution added — instead of the O(|slot|²)
/// whole-slot re-verification the opaque path needs.
pub fn solve_repair<J: SlotJudge + ?Sized>(
    links: &[Link],
    neighbors: &dyn Fn(usize) -> Vec<usize>,
    judge: &J,
    config: &SchedulerConfig,
    prev_colors: &[Option<usize>],
    prev_budgets: &[f64],
    check: &[usize],
) -> RepairOutcome {
    solve_repair_traced(
        links,
        neighbors,
        judge,
        config,
        prev_colors,
        prev_budgets,
        check,
        &Recorder::disabled(),
    )
}

/// [`solve_repair`] with phase instrumentation: records a `repair` span with
/// `sweep` (stale-slot re-verification) and `place` (first-fit re-placement)
/// children on `rec`, plus the `repair.dirty` / `repair.evicted` /
/// `repair.admissions` / `repair.rejections` / `repair.fresh_slots` counters
/// (accumulated locally — one atomic add per counter per call, nothing in the
/// probe loops). With the workspace `obs` feature off, or with a disabled
/// recorder, this is exactly [`solve_repair`].
#[allow(clippy::too_many_arguments)]
pub fn solve_repair_traced<J: SlotJudge + ?Sized>(
    links: &[Link],
    neighbors: &dyn Fn(usize) -> Vec<usize>,
    judge: &J,
    config: &SchedulerConfig,
    prev_colors: &[Option<usize>],
    prev_budgets: &[f64],
    check: &[usize],
    rec: &Recorder,
) -> RepairOutcome {
    // Generic (not `&dyn`) so concrete-judge callers — the session backends —
    // monomorphize the admission loops: the per-term `contribution` calls
    // inline instead of going through the vtable.
    let root = rec.span("repair");
    let n = links.len();
    assert_eq!(prev_colors.len(), n, "one previous color per link");
    assert_eq!(prev_budgets.len(), n, "one previous budget per link");
    let additive = config.verify_slots && judge.additive();
    let threshold = judge.threshold();

    let num_colors = prev_colors
        .iter()
        .flatten()
        .copied()
        .max()
        .map_or(0, |c| c + 1);
    // Pre-counted capacities: the membership scatter below touches every
    // link, so growth reallocations on the slot vectors would double the
    // traffic of this O(n) setup pass.
    let mut counts = vec![0usize; num_colors];
    for &c in prev_colors.iter().flatten() {
        counts[c] += 1;
    }
    let mut slots: Vec<Vec<usize>> = counts.iter().map(|&k| Vec::with_capacity(k)).collect();
    let mut color_of: Vec<Option<usize>> = prev_colors.to_vec();
    let mut budgets: Vec<f64> = if additive {
        prev_budgets.to_vec()
    } else {
        vec![0.0; n]
    };
    let mut pending: Vec<usize> = Vec::new();
    for (i, &color) in prev_colors.iter().enumerate() {
        match color {
            Some(c) => slots[c].push(i),
            None => {
                budgets[i] = 0.0;
                pending.push(i);
            }
        }
    }

    let dirty = pending.len();

    // Re-verify the checked links; evicted members join the placement list.
    // Departures are monotone-safe, so only these can be stale.
    let sweep_span = root.child("sweep");
    let mut evicted_total = 0usize;
    if config.verify_slots {
        let mut checked: Vec<usize> = check.to_vec();
        checked.sort_unstable();
        checked.dedup();
        if additive {
            // O(1) per checked link: its stored budget is an upper bound,
            // so within-threshold links are certainly still feasible.
            for &v in &checked {
                let Some(c) = color_of[v] else { continue };
                if budgets[v] > threshold {
                    let k = slots[c].iter().position(|&m| m == v).expect("colored");
                    slots[c].remove(k);
                    color_of[v] = None;
                    budgets[v] = 0.0;
                    evicted_total += 1;
                    pending.push(v);
                }
            }
        } else {
            let mut stale: Vec<usize> = checked.iter().filter_map(|&i| color_of[i]).collect();
            stale.sort_unstable();
            stale.dedup();
            for c in stale {
                let (kept, evicted) = judge.evict(&slots[c]);
                if !evicted.is_empty() {
                    for &i in &evicted {
                        color_of[i] = None;
                    }
                    evicted_total += evicted.len();
                    pending.extend(evicted);
                    slots[c] = kept;
                }
            }
        }
    }
    sweep_span.finish();
    let replaced = pending.len();

    let place_span = root.child("place");
    let mut admissions = 0u64;
    let mut rejections = 0u64;
    let mut fresh_slots = 0u64;
    let mut increments: Vec<(usize, f64)> = Vec::new();
    // First-fit placement in non-increasing length order (ties by link id —
    // the static kernel's split order, for determinism).
    pending.sort_by(|&a, &b| {
        links[b]
            .length()
            .total_cmp(&links[a].length())
            .then(links[a].id.cmp(&links[b].id))
    });
    // Stamps mark the colors of `i`'s conflict neighbours per placement.
    let mut mark: Vec<usize> = vec![usize::MAX; slots.len()];
    let mut candidate: Vec<usize> = Vec::new();
    let mut added: Vec<f64> = Vec::new();
    for (step, &i) in pending.iter().enumerate() {
        for j in neighbors(i) {
            if let Some(c) = color_of[j] {
                mark[c] = step;
            }
        }
        let mut placed = None;
        for (c, slot) in slots.iter().enumerate() {
            if mark[c] == step {
                continue;
            }
            if additive {
                // O(|slot|) admission with early exit: every slotmate must
                // absorb `i`'s contribution, and `i`'s own budget must close
                // under the threshold.
                let mut own = 0.0f64;
                added.clear();
                let mut ok = true;
                for &m in slot.iter() {
                    let on_m = judge.contribution(i, m);
                    if budgets[m] + on_m > threshold {
                        ok = false;
                        break;
                    }
                    own += judge.contribution(m, i);
                    if own > threshold {
                        ok = false;
                        break;
                    }
                    added.push(on_m);
                }
                if !ok {
                    rejections += 1;
                    continue;
                }
                for (&m, &on_m) in slot.iter().zip(&added) {
                    budgets[m] += on_m;
                    increments.push((m, on_m));
                }
                budgets[i] = own;
            } else if config.verify_slots {
                candidate.clear();
                candidate.extend_from_slice(slot);
                candidate.push(i);
                if !judge.feasible(&candidate) {
                    rejections += 1;
                    continue;
                }
            }
            placed = Some(c);
            break;
        }
        if placed.is_some() {
            admissions += 1;
        }
        let c = placed.unwrap_or_else(|| {
            fresh_slots += 1;
            slots.push(Vec::new());
            mark.push(usize::MAX);
            slots.len() - 1
        });
        slots[c].push(i);
        color_of[i] = Some(c);
    }
    place_span.finish();
    rec.add("repair.dirty", dirty as u64);
    rec.add("repair.evicted", evicted_total as u64);
    rec.add("repair.admissions", admissions);
    rec.add("repair.rejections", rejections);
    rec.add("repair.fresh_slots", fresh_slots);

    // Compact empty slots, remembering the renumbering so callers can
    // shift their warm colors without re-reading the whole schedule.
    let mut remap = vec![usize::MAX; slots.len()];
    let mut next = 0usize;
    for (c, slot) in slots.iter().enumerate() {
        if !slot.is_empty() {
            remap[c] = next;
            next += 1;
        }
    }
    let compacted = next != slots.len();
    let placements: Vec<RepairPlacement> = pending
        .iter()
        .map(|&i| RepairPlacement {
            pos: i,
            slot: remap[color_of[i].expect("every pending link was placed")],
            budget: budgets[i],
        })
        .collect();
    let slots: Vec<Vec<usize>> = slots.into_iter().filter(|s| !s.is_empty()).collect();
    let diversity = link_diversity(links).unwrap_or(1.0);
    let report = ScheduleReport {
        verified_slots: slots.len(),
        coloring_slots: slots.len(),
        schedule: Schedule::new(slots),
        diversity,
        log_star_diversity: log_star(diversity),
        log_log_diversity: log_log2(diversity),
        mode: config.mode,
        num_links: n,
    };
    RepairOutcome {
        report,
        replaced,
        evicted: evicted_total,
        budgets,
        placements,
        increments,
        slot_remap: compacted.then_some(remap),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power_mode::PowerMode;
    use crate::scheduler::solve_static;
    use wagg_conflict::ConflictGraph;
    use wagg_geometry::Point;
    use wagg_sinr::Link;

    fn chain(n: usize, spacing: f64) -> Vec<Link> {
        (0..n)
            .map(|i| {
                let x = i as f64 * spacing;
                Link::new(i, Point::new(x, 0.0), Point::new(x + 1.0, 0.0))
            })
            .collect()
    }

    fn harness(
        links: &[Link],
        config: SchedulerConfig,
    ) -> (ConflictGraph, Option<PathLossCache<'_>>) {
        let graph =
            ConflictGraph::build(links, config.mode.conflict_relation(config.model.alpha()));
        let cache = config
            .mode
            .assignment()
            .map(|a| PathLossCache::new(&config.model, links, &a));
        (graph, cache)
    }

    fn colors_of(report: &ScheduleReport, n: usize) -> Vec<Option<usize>> {
        let mut colors = vec![None; n];
        for (t, slot) in report.schedule.slots().iter().enumerate() {
            for &i in slot {
                colors[i] = Some(t);
            }
        }
        colors
    }

    #[test]
    fn no_dirt_reproduces_the_previous_schedule() {
        let links = chain(24, 5.0);
        let config = SchedulerConfig::new(PowerMode::mean_oblivious());
        let full = solve_static(&links, config);
        let prev = colors_of(&full, links.len());
        let (graph, cache) = harness(&links, config);
        let judge = CacheJudge::new(&links, config, cache.as_ref());
        let outcome = solve_repair(
            &links,
            &|i| graph.neighbors(i).to_vec(),
            &judge,
            &config,
            &prev,
            &capture_budgets(&judge, &prev),
            &[],
        );
        assert_eq!(outcome.replaced, 0);
        assert_eq!(outcome.evicted, 0);
        assert_eq!(outcome.report.schedule, full.schedule);
    }

    #[test]
    fn dirty_links_are_replaced_feasibly() {
        // A dense cluster plus far-away links: dirtying one cluster link must
        // re-place it without breaking feasibility anywhere.
        let mut links = chain(20, 40.0);
        links.push(Link::new(20, Point::new(0.3, 0.4), Point::new(1.3, 0.4)));
        for mode in [
            PowerMode::Uniform,
            PowerMode::mean_oblivious(),
            PowerMode::GlobalControl,
        ] {
            let config = SchedulerConfig::new(mode);
            let full = solve_static(&links, config);
            let mut prev = colors_of(&full, links.len());
            prev[20] = None;
            let dirty_neighbors: Vec<usize> = {
                let (graph, _) = harness(&links, config);
                graph.neighbors(20).to_vec()
            };
            let (graph, cache) = harness(&links, config);
            let judge = CacheJudge::new(&links, config, cache.as_ref());
            let outcome = solve_repair(
                &links,
                &|i| graph.neighbors(i).to_vec(),
                &judge,
                &config,
                &prev,
                &capture_budgets(&judge, &prev),
                &dirty_neighbors,
            );
            assert!(outcome.replaced >= 1, "{mode}");
            assert!(outcome.report.schedule.is_partition(links.len()), "{mode}");
            assert!(
                outcome.report.schedule.verify(&links, &config.model, mode),
                "{mode}: repaired schedule must stay feasible"
            );
        }
    }

    #[test]
    fn check_sweep_evicts_infeasible_members() {
        // Two well-separated links share a slot; teleport one on top of the
        // other (stale geometry) — the check sweep must evict the survivor's
        // now-infeasible slotmate rather than trust the stale assignment.
        let config = SchedulerConfig::new(PowerMode::Uniform);
        let links = vec![
            Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
            Link::new(1, Point::new(0.9, 0.05), Point::new(1.9, 0.05)),
            Link::new(2, Point::new(200.0, 0.0), Point::new(201.0, 0.0)),
        ];
        // Stale previous coloring: 0 and 1 share slot 0 (infeasible at the
        // current geometry), 2 sits alone in slot 1.
        let prev = vec![Some(0), Some(0), Some(1)];
        let (graph, cache) = harness(&links, config);
        let judge = CacheJudge::new(&links, config, cache.as_ref());
        let outcome = solve_repair(
            &links,
            &|i| graph.neighbors(i).to_vec(),
            &judge,
            &config,
            &prev,
            &capture_budgets(&judge, &prev),
            &[0],
        );
        assert!(outcome.evicted >= 1, "the stale slot must shed a member");
        assert_eq!(outcome.replaced, outcome.evicted);
        assert!(outcome.report.schedule.is_partition(links.len()));
        assert!(outcome
            .report
            .schedule
            .verify(&links, &config.model, PowerMode::Uniform));
    }

    #[test]
    fn empty_slots_are_dropped_and_colors_compacted() {
        let links = chain(3, 100.0);
        let config = SchedulerConfig::new(PowerMode::Uniform);
        // Previous schedule wastefully used colors 0, 5 and 9.
        let prev = vec![Some(0), Some(5), Some(9)];
        let (graph, cache) = harness(&links, config);
        let judge = CacheJudge::new(&links, config, cache.as_ref());
        let outcome = solve_repair(
            &links,
            &|i| graph.neighbors(i).to_vec(),
            &judge,
            &config,
            &prev,
            &capture_budgets(&judge, &prev),
            &[],
        );
        assert_eq!(outcome.report.schedule.len(), 3);
        assert!(outcome.report.schedule.is_partition(3));
    }

    #[test]
    fn verification_disabled_places_by_graph_alone() {
        let links = chain(12, 1.2);
        let config = SchedulerConfig::new(PowerMode::Uniform).with_verification(false);
        let full = solve_static(&links, config);
        let mut prev = colors_of(&full, links.len());
        prev[7] = None;
        let (graph, _) = harness(&links, config);
        let judge = CacheJudge::new(&links, config, None);
        let outcome = solve_repair(
            &links,
            &|i| graph.neighbors(i).to_vec(),
            &judge,
            &config,
            &prev,
            &capture_budgets(&judge, &prev),
            &[],
        );
        assert_eq!(outcome.replaced, 1);
        assert!(outcome.report.schedule.is_partition(links.len()));
        // Proper coloring: no slot holds two conflicting links.
        for slot in outcome.report.schedule.slots() {
            for (a, &i) in slot.iter().enumerate() {
                for &j in &slot[a + 1..] {
                    assert!(!graph.neighbors(i).contains(&j), "{i} and {j} conflict");
                }
            }
        }
    }

    #[test]
    fn zero_length_links_land_in_singletons() {
        let mut links = chain(4, 50.0);
        links.push(Link::new(4, Point::new(10.0, 10.0), Point::new(10.0, 10.0)));
        let config = SchedulerConfig::new(PowerMode::Uniform);
        let prev = vec![Some(0), Some(0), Some(0), Some(0), None];
        let (graph, cache) = harness(&links, config);
        let judge = CacheJudge::new(&links, config, cache.as_ref());
        let outcome = solve_repair(
            &links,
            &|i| graph.neighbors(i).to_vec(),
            &judge,
            &config,
            &prev,
            &capture_budgets(&judge, &prev),
            &[],
        );
        assert!(outcome.report.schedule.is_partition(links.len()));
        let slot_of_degenerate = outcome
            .report
            .schedule
            .slots()
            .iter()
            .find(|s| s.contains(&4))
            .unwrap();
        assert_eq!(slot_of_degenerate.len(), 1);
    }

    /// Replays an outcome's deltas onto the previous warm state — the
    /// in-place patch the session backends perform, kept here as the
    /// reference implementation the delta contract is tested against.
    fn replay_deltas(
        prev_colors: &[Option<usize>],
        prev_budgets: &[f64],
        outcome: &RepairOutcome,
    ) -> (Vec<Option<usize>>, Vec<f64>) {
        let mut colors = prev_colors.to_vec();
        let mut budgets = prev_budgets.to_vec();
        if let Some(remap) = &outcome.slot_remap {
            for c in colors.iter_mut().flatten() {
                *c = remap[*c];
            }
        }
        for &(pos, inc) in &outcome.increments {
            budgets[pos] += inc;
        }
        for p in &outcome.placements {
            colors[p.pos] = Some(p.slot);
            budgets[p.pos] = p.budget;
        }
        (colors, budgets)
    }

    #[test]
    fn deltas_replay_to_a_from_scratch_capture() {
        // Same dense-cluster setup as the feasibility test: one dirty link,
        // neighbours checked. Replaying the emitted deltas onto the previous
        // warm state must reproduce the repaired assignment and the full
        // budget vector exactly, for additive and opaque judges alike.
        let mut links = chain(20, 40.0);
        links.push(Link::new(20, Point::new(0.3, 0.4), Point::new(1.3, 0.4)));
        for mode in [
            PowerMode::Uniform,
            PowerMode::mean_oblivious(),
            PowerMode::GlobalControl,
        ] {
            let config = SchedulerConfig::new(mode);
            let full = solve_static(&links, config);
            let mut prev = colors_of(&full, links.len());
            prev[20] = None;
            let (graph, cache) = harness(&links, config);
            let judge = CacheJudge::new(&links, config, cache.as_ref());
            let prev_budgets = capture_budgets(&judge, &prev);
            let check: Vec<usize> = graph.neighbors(20).to_vec();
            let outcome = solve_repair(
                &links,
                &|i| graph.neighbors(i).to_vec(),
                &judge,
                &config,
                &prev,
                &prev_budgets,
                &check,
            );
            assert_eq!(
                outcome.placements.len(),
                outcome.replaced,
                "{mode}: one placement per re-placed link"
            );
            let (colors, budgets) = replay_deltas(&prev, &prev_budgets, &outcome);
            assert_eq!(
                colors,
                colors_of(&outcome.report, links.len()),
                "{mode}: replayed colors must match the repaired schedule"
            );
            assert_eq!(
                budgets, outcome.budgets,
                "{mode}: replayed budgets must be bit-identical"
            );
            if !judge.additive() {
                assert!(
                    outcome.increments.is_empty(),
                    "{mode}: opaque judges add nothing"
                );
            }
        }
    }

    #[test]
    fn compaction_emits_a_slot_remap() {
        let links = chain(3, 100.0);
        let config = SchedulerConfig::new(PowerMode::Uniform);
        // Previous schedule wastefully used colors 0, 5 and 9 — the result
        // compacts to three slots, so clean colors shift and the remap says
        // how.
        let prev = vec![Some(0), Some(5), Some(9)];
        let (graph, cache) = harness(&links, config);
        let judge = CacheJudge::new(&links, config, cache.as_ref());
        let prev_budgets = capture_budgets(&judge, &prev);
        let outcome = solve_repair(
            &links,
            &|i| graph.neighbors(i).to_vec(),
            &judge,
            &config,
            &prev,
            &prev_budgets,
            &[],
        );
        let remap = outcome.slot_remap.as_ref().expect("empty slots compacted");
        assert_eq!(remap[0], 0);
        assert_eq!(remap[5], 1);
        assert_eq!(remap[9], 2);
        assert_eq!(remap[1], usize::MAX, "dropped colors are unmapped");
        let (colors, _) = replay_deltas(&prev, &prev_budgets, &outcome);
        assert_eq!(colors, colors_of(&outcome.report, links.len()));
        // A no-dirt repair of an already-compact schedule emits no remap.
        let compact: Vec<Option<usize>> = colors;
        let again = solve_repair(
            &links,
            &|i| graph.neighbors(i).to_vec(),
            &judge,
            &config,
            &compact,
            &capture_budgets(&judge, &compact),
            &[],
        );
        assert!(again.slot_remap.is_none());
        assert!(again.placements.is_empty());
    }

    #[test]
    fn decision_tokens_round_trip() {
        for d in [
            RepairDecision::Repaired,
            RepairDecision::ColdStart,
            RepairDecision::WatermarkBreach,
            RepairDecision::Unsupported,
        ] {
            assert_eq!(RepairDecision::parse_token(d.token()), Ok(d));
            assert_eq!(d.to_string(), d.token());
        }
        assert!(RepairDecision::parse_token("quantum").is_err());
    }
}
