//! Property tests: the grid-accelerated conflict-graph construction must be
//! **edge-identical** to the all-pairs reference build, for every relation in
//! the family and for adversarially shaped instances (uniform squares, tight
//! chains, mixed length scales, degenerate links).

use proptest::prelude::*;
use wagg_conflict::{ConflictGraph, ConflictRelation};
use wagg_geometry::Point;
use wagg_sinr::Link;

fn relation_for(which: u8) -> ConflictRelation {
    match which % 3 {
        0 => ConflictRelation::unit_constant(),
        1 => ConflictRelation::oblivious_default(),
        _ => ConflictRelation::arbitrary_default(),
    }
}

/// Checks edge-for-edge equality (the CSR arrays make this a plain `==`), and
/// a couple of derived invariants for good measure.
fn assert_grid_matches_naive(links: &[Link], relation: ConflictRelation) {
    let grid = ConflictGraph::build(links, relation);
    let naive = ConflictGraph::build_naive(links, relation);
    assert_eq!(
        grid,
        naive,
        "grid and naive builds disagree under {relation} on {} links",
        links.len()
    );
    assert_eq!(grid.edge_count(), naive.edge_count());
    for v in 0..grid.len() {
        assert_eq!(grid.neighbors(v), naive.neighbors(v), "row {v} differs");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Uniform random links in a square, lengths spanning two orders of
    /// magnitude. 80+ links so the grid path (not the small-n fallback) runs.
    #[test]
    fn grid_equals_naive_on_uniform_squares(
        raw in proptest::collection::vec((0.0f64..300.0, 0.0f64..300.0, 0.0f64..std::f64::consts::TAU, 0.1f64..20.0), 80..140),
        which in 0u8..3,
    ) {
        let links: Vec<Link> = raw
            .iter()
            .enumerate()
            .map(|(i, &(x, y, angle, len))| {
                let s = Point::new(x, y);
                let r = Point::new(x + len * angle.cos(), y + len * angle.sin());
                Link::new(i, s, r)
            })
            .collect();
        assert_grid_matches_naive(&links, relation_for(which));
    }

    /// Exponentially diverse lengths exercise many length classes at once.
    #[test]
    fn grid_equals_naive_on_diverse_chains(
        gaps in proptest::collection::vec(0.05f64..3.0, 70..110),
        which in 0u8..3,
    ) {
        let mut x = 0.0;
        let links: Vec<Link> = gaps
            .iter()
            .enumerate()
            .map(|(i, &gap)| {
                // Length cycles through 1, 4, 16, 64: four length classes.
                let len = 4.0f64.powi((i % 4) as i32);
                let link = Link::new(i, Point::on_line(x), Point::on_line(x + len));
                x += len + gap;
                link
            })
            .collect();
        assert_grid_matches_naive(&links, relation_for(which));
    }

    /// Degenerate (zero-length) links conflict with everything; they must
    /// survive the grid path unchanged.
    #[test]
    fn grid_equals_naive_with_degenerate_links(
        raw in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0, 0.2f64..5.0), 70..100),
        degenerate_at in proptest::collection::vec(0usize..70, 1..4),
        which in 0u8..3,
    ) {
        let mut links: Vec<Link> = raw
            .iter()
            .enumerate()
            .map(|(i, &(x, y, len))| Link::new(i, Point::new(x, y), Point::new(x + len, y)))
            .collect();
        for &d in &degenerate_at {
            let p = links[d].sender;
            links[d] = Link::new(1000 + d, p, p);
        }
        assert_grid_matches_naive(&links, relation_for(which));
    }
}
