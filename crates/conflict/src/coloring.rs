//! Greedy length-ordered coloring of conflict graphs.
//!
//! The paper's scheduling algorithm is the classic greedy coloring: process the
//! links in non-increasing order of length and give each link the smallest color
//! not used by its already-colored neighbours. Because the conflict graphs `G_f`
//! have constant inductive independence, this greedy order is a constant-factor
//! approximation of the optimal coloring (Appendix A, property c).

use crate::graph::ConflictGraph;
use serde::{Deserialize, Serialize};
use wagg_sinr::link::indices_by_decreasing_length;

/// A proper vertex coloring of a conflict graph, i.e. a TDMA schedule of its links.
///
/// Color `c` corresponds to time slot `c`; the links of one color class can, by the
/// paper's conflict-graph machinery, transmit simultaneously under the matching
/// power mode.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_sinr::Link;
/// use wagg_conflict::{greedy_color, ConflictGraph, ConflictRelation};
///
/// let links = vec![
///     Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
///     Link::new(1, Point::new(1.0, 0.0), Point::new(2.0, 0.0)),
/// ];
/// let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
/// let coloring = greedy_color(&g);
/// assert_eq!(coloring.num_colors(), 2);
/// assert_eq!(coloring.class(0).len() + coloring.class(1).len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Coloring {
    colors: Vec<usize>,
    num_colors: usize,
}

impl Coloring {
    /// Creates a coloring from an explicit color vector (one entry per vertex).
    ///
    /// # Panics
    ///
    /// Panics if `colors` is non-empty and its maximum exceeds `usize::MAX - 1`
    /// (practically impossible); the number of colors is `max + 1` or zero.
    pub fn from_colors(colors: Vec<usize>) -> Self {
        let num_colors = colors.iter().max().map(|&m| m + 1).unwrap_or(0);
        Coloring { colors, num_colors }
    }

    /// The color (slot index) of vertex `v`.
    pub fn color(&self, v: usize) -> usize {
        self.colors[v]
    }

    /// The full color vector, indexed by vertex.
    pub fn colors(&self) -> &[usize] {
        &self.colors
    }

    /// Number of colors used (the schedule length).
    pub fn num_colors(&self) -> usize {
        self.num_colors
    }

    /// Number of vertices colored.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether no vertices were colored.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// The vertices of color class `c`.
    pub fn class(&self, c: usize) -> Vec<usize> {
        self.colors
            .iter()
            .enumerate()
            .filter(|&(_, &col)| col == c)
            .map(|(v, _)| v)
            .collect()
    }

    /// All color classes, indexed by color.
    pub fn classes(&self) -> Vec<Vec<usize>> {
        let mut classes = vec![Vec::new(); self.num_colors];
        for (v, &c) in self.colors.iter().enumerate() {
            classes[c].push(v);
        }
        classes
    }

    /// Whether the coloring is proper for `graph` (no edge joins two vertices of the
    /// same color) and covers exactly its vertex set.
    pub fn is_proper(&self, graph: &ConflictGraph) -> bool {
        if self.colors.len() != graph.len() {
            return false;
        }
        for v in 0..graph.len() {
            for &u in graph.neighbors(v) {
                if u > v && self.colors[u] == self.colors[v] {
                    return false;
                }
            }
        }
        true
    }

    /// Size of the largest color class.
    pub fn max_class_size(&self) -> usize {
        self.classes().iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Greedy coloring in non-increasing order of link length (the paper's algorithm).
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_sinr::Link;
/// use wagg_conflict::{greedy_color, ConflictGraph, ConflictRelation};
///
/// // Three mutually conflicting links need three slots.
/// let links = vec![
///     Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
///     Link::new(1, Point::new(1.0, 0.0), Point::new(2.0, 0.0)),
///     Link::new(2, Point::new(2.0, 0.0), Point::new(1.2, 0.0)),
/// ];
/// let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
/// let c = greedy_color(&g);
/// assert_eq!(c.num_colors(), 3);
/// assert!(c.is_proper(&g));
/// ```
pub fn greedy_color(graph: &ConflictGraph) -> Coloring {
    let order = indices_by_decreasing_length(graph.links());
    greedy_color_with_order(graph, &order)
}

/// Greedy coloring with an explicit processing order (a permutation of the vertices).
///
/// Exposed so callers can experiment with other orders (e.g. the increasing-length
/// order, or a random order) and compare the resulting schedule lengths; the paper's
/// guarantees hold for the non-increasing-length order of [`greedy_color`].
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..graph.len()`.
pub fn greedy_color_with_order(graph: &ConflictGraph, order: &[usize]) -> Coloring {
    let n = graph.len();
    assert_eq!(order.len(), n, "order must cover every vertex exactly once");
    let mut seen = vec![false; n];
    for &v in order {
        assert!(
            v < n && !seen[v],
            "order must be a permutation of the vertices"
        );
        seen[v] = true;
    }

    const UNCOLORED: usize = usize::MAX;
    let mut colors = vec![UNCOLORED; n];
    for &v in order {
        let mut used: Vec<usize> = graph
            .neighbors(v)
            .iter()
            .map(|&u| colors[u])
            .filter(|&c| c != UNCOLORED)
            .collect();
        used.sort_unstable();
        used.dedup();
        let mut candidate = 0;
        for c in used {
            if c == candidate {
                candidate += 1;
            } else if c > candidate {
                break;
            }
        }
        colors[v] = candidate;
    }
    Coloring::from_colors(colors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::ConflictRelation;
    use proptest::prelude::*;
    use wagg_geometry::Point;
    use wagg_sinr::Link;

    fn line_link(id: usize, s: f64, r: f64) -> Link {
        Link::new(id, Point::on_line(s), Point::on_line(r))
    }

    fn tight_chain(n: usize) -> Vec<Link> {
        (0..n)
            .map(|i| {
                let start = i as f64 * 1.5;
                line_link(i, start, start + 1.0)
            })
            .collect()
    }

    #[test]
    fn empty_graph_gets_empty_coloring() {
        let g = ConflictGraph::build(&[], ConflictRelation::unit_constant());
        let c = greedy_color(&g);
        assert!(c.is_empty());
        assert_eq!(c.num_colors(), 0);
        assert!(c.is_proper(&g));
        assert_eq!(c.max_class_size(), 0);
    }

    #[test]
    fn path_conflict_graph_needs_two_colors() {
        let links = tight_chain(7);
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        let c = greedy_color(&g);
        assert_eq!(c.num_colors(), 2);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn independent_links_share_one_color() {
        let links: Vec<Link> = (0..5)
            .map(|i| line_link(i, i as f64 * 10.0, i as f64 * 10.0 + 1.0))
            .collect();
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        let c = greedy_color(&g);
        assert_eq!(c.num_colors(), 1);
        assert_eq!(c.class(0).len(), 5);
    }

    #[test]
    fn classes_partition_the_vertices() {
        let links = tight_chain(9);
        let g = ConflictGraph::build(&links, ConflictRelation::constant(2.0));
        let c = greedy_color(&g);
        let total: usize = c.classes().iter().map(Vec::len).sum();
        assert_eq!(total, links.len());
        for (color, class) in c.classes().into_iter().enumerate() {
            for v in class {
                assert_eq!(c.color(v), color);
            }
        }
    }

    #[test]
    fn every_class_is_an_independent_set() {
        let links = tight_chain(10);
        let g = ConflictGraph::build(&links, ConflictRelation::oblivious_default());
        let c = greedy_color(&g);
        for class in c.classes() {
            assert!(g.is_independent_set(&class));
        }
    }

    #[test]
    fn from_colors_counts_colors() {
        let c = Coloring::from_colors(vec![0, 2, 1, 0]);
        assert_eq!(c.num_colors(), 3);
        assert_eq!(c.class(0), vec![0, 3]);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn improper_coloring_detected() {
        let links = tight_chain(3);
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        let bad = Coloring::from_colors(vec![0, 0, 0]);
        assert!(!bad.is_proper(&g));
        let wrong_len = Coloring::from_colors(vec![0, 1]);
        assert!(!wrong_len.is_proper(&g));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn order_must_be_permutation() {
        let links = tight_chain(3);
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        let _ = greedy_color_with_order(&g, &[0, 0, 1]);
    }

    #[test]
    fn custom_order_still_proper() {
        let links = tight_chain(6);
        let g = ConflictGraph::build(&links, ConflictRelation::constant(2.0));
        let order: Vec<usize> = (0..6).rev().collect();
        let c = greedy_color_with_order(&g, &order);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn greedy_uses_at_most_max_degree_plus_one_colors() {
        let links = tight_chain(20);
        let g = ConflictGraph::build(&links, ConflictRelation::constant(3.0));
        let c = greedy_color(&g);
        assert!(c.num_colors() <= g.max_degree() + 1);
    }

    proptest! {
        /// Greedy coloring is always proper and uses at most Δ + 1 colors, on random
        /// line instances under each of the three relations.
        #[test]
        fn prop_greedy_is_proper(xs in proptest::collection::vec(0.0f64..500.0, 2..24), which in 0u8..3) {
            // Build links between consecutive sorted x positions (an MST of the line).
            let mut sorted = xs.clone();
            sorted.sort_by(f64::total_cmp);
            sorted.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
            prop_assume!(sorted.len() >= 2);
            let links: Vec<Link> = sorted.windows(2).enumerate()
                .filter(|(_, w)| w[1] - w[0] > 1e-9)
                .map(|(i, w)| line_link(i, w[0], w[1]))
                .collect();
            prop_assume!(!links.is_empty());
            let relation = match which {
                0 => ConflictRelation::unit_constant(),
                1 => ConflictRelation::oblivious_default(),
                _ => ConflictRelation::arbitrary_default(),
            };
            let g = ConflictGraph::build(&links, relation);
            let c = greedy_color(&g);
            prop_assert!(c.is_proper(&g));
            prop_assert!(c.num_colors() <= g.max_degree() + 1);
        }
    }
}
