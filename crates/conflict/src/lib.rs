//! Conflict graphs over link sets and the coloring algorithms that schedule them.
//!
//! The paper's scheduling approach (Sec. 3 and Appendix A) is:
//!
//! 1. form a *conflict graph* `G_f(L)` over the links of the aggregation tree,
//!    where two links conflict iff they are "too close relative to their lengths"
//!    — formally, links `i, j` are `f`-independent iff
//!    `d(i, j) / l_min > f(l_max / l_min)` with `l_min = min(l_i, l_j)`,
//!    `l_max = max(l_i, l_j)`;
//! 2. color the graph greedily, processing links in non-increasing order of
//!    length and giving each link the first color unused by its already-colored
//!    neighbours;
//! 3. use the color classes as the slots of a TDMA schedule.
//!
//! Three members of the family matter:
//!
//! * [`ConflictRelation::Constant`] — `f(x) ≡ γ`, the graph `G_γ`; for the MST the
//!   paper proves `χ(G_1(MST)) = O(1)` (Theorem 2),
//! * [`ConflictRelation::Polynomial`] — `f(x) = γ·x^δ`, the graph `G^δ_γ` whose
//!   independent sets are feasible under an oblivious power scheme; its chromatic
//!   number is `O(log log Δ)` times that of `G_γ'`,
//! * [`ConflictRelation::LogShaped`] — `f(x) = γ·max{1, log^{2/(α−2)} x}`, the graph
//!   `G_{γ log}` whose independent sets are feasible under global power control; its
//!   chromatic number is `O(log* Δ)` times that of `G_γ'`.
//!
//! # Performance
//!
//! [`ConflictGraph::build`] constructs the graph through per-length-class
//! spatial grids (see the [`graph`] module docs) instead of checking all
//! `O(n²)` pairs, and stores adjacency in a flat CSR layout (`offsets` +
//! sorted `neighbors` arrays): neighbour rows are slice borrows, adjacency
//! queries are binary searches, and independence checks allocate nothing. With
//! the default-on `parallel` feature the per-vertex rows are computed across
//! threads. [`ConflictGraph::build_naive`] retains the all-pairs reference
//! construction; property tests assert the two are edge-identical, and the
//! `kernel` benchmark in `wagg-bench` tracks the speedup (two orders of
//! magnitude at 50k uniform-square links).
//!
//! # Examples
//!
//! ```
//! use wagg_geometry::Point;
//! use wagg_sinr::Link;
//! use wagg_conflict::{ConflictGraph, ConflictRelation, greedy_color};
//!
//! let links = vec![
//!     Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
//!     Link::new(1, Point::new(1.0, 0.0), Point::new(2.0, 0.0)),
//!     Link::new(2, Point::new(10.0, 0.0), Point::new(11.0, 0.0)),
//! ];
//! let graph = ConflictGraph::build(&links, ConflictRelation::unit_constant());
//! let coloring = greedy_color(&graph);
//! // Links 0 and 1 share an endpoint, so they need different slots; link 2 is free.
//! assert_eq!(coloring.num_colors(), 2);
//! assert!(coloring.is_proper(&graph));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coloring;
pub mod graph;
pub mod relation;

pub use coloring::{greedy_color, greedy_color_with_order, Coloring};
pub use graph::ConflictGraph;
pub use relation::ConflictRelation;
