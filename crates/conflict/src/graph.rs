//! The conflict graph data structure.
//!
//! # Construction and storage
//!
//! [`ConflictGraph::build`] no longer does O(n²) pairwise checks: links are
//! bucketed into power-of-two **length classes**, each class is indexed by a
//! [`wagg_geometry::grid::UniformGrid`] keyed to the class's maximum link
//! length, and each link only tests candidates inside its per-class **conflict
//! radius** — the largest link-to-link distance at which the relation `f`
//! could still report a conflict given the class's length bounds. Since every
//! `f` in the family is non-decreasing, the radius
//! `min(l_i, hi_C) · f(max(l_i, hi_C) / min(l_i, lo_C))` is a sound upper
//! bound, so the grid prunes candidates without ever dropping a true edge (the
//! property tests check edge-for-edge equality against
//! [`ConflictGraph::build_naive`]).
//!
//! Adjacency is stored in **CSR form** (compressed sparse rows): one flat
//! `offsets` array of length `n + 1` and one flat `neighbors` array holding
//! every row's sorted neighbour indices back to back. Row `v` is
//! `neighbors[offsets[v]..offsets[v + 1]]`. This makes [`ConflictGraph::neighbors`]
//! a slice borrow, [`ConflictGraph::are_adjacent`] a binary search, and the
//! independence checks allocation-free — and it halves the pointer-chasing of
//! the previous `Vec<Vec<usize>>` layout.
//!
//! With the (default-on) `parallel` feature the per-vertex candidate rows are
//! computed across threads; rows are deterministic (sorted), so parallel and
//! serial builds produce identical graphs.

use crate::relation::ConflictRelation;
use serde::{Deserialize, Serialize};
use wagg_geometry::grid::UniformGrid;
use wagg_geometry::BoundingBox;
use wagg_obs::{Recorder, Span};
use wagg_sinr::Link;

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Below this size the all-pairs build is faster than building class grids.
const GRID_BUILD_CUTOFF: usize = 64;

/// A conflict graph `G_f(L)` over a set of links.
///
/// Vertices are the links (by their position in the originating slice); an edge
/// joins two links iff they conflict under the relation the graph was built
/// with. The graph stores the links themselves so that colorings can be mapped
/// back to schedules without carrying the link set separately. See the
/// [module docs](self) for the construction algorithm and the CSR layout.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_sinr::Link;
/// use wagg_conflict::{ConflictGraph, ConflictRelation};
///
/// let links = vec![
///     Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
///     Link::new(1, Point::new(1.5, 0.0), Point::new(2.5, 0.0)),
///     Link::new(2, Point::new(50.0, 0.0), Point::new(51.0, 0.0)),
/// ];
/// let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
/// assert_eq!(g.len(), 3);
/// assert!(g.are_adjacent(0, 1));
/// assert!(!g.are_adjacent(0, 2));
/// assert_eq!(g.degree(0), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConflictGraph {
    links: Vec<Link>,
    relation: ConflictRelation,
    /// CSR row boundaries: row `v` is `neighbors[offsets[v]..offsets[v + 1]]`.
    offsets: Vec<usize>,
    /// Concatenated, per-row-sorted neighbour indices.
    neighbors: Vec<usize>,
}

/// One power-of-two length class with its spatial index.
struct LengthClass {
    /// Smallest member length (exact, not the nominal class bound).
    lo: f64,
    /// Largest member length (exact).
    hi: f64,
    /// Vertex indices of the members, in input order.
    members: Vec<u32>,
    /// Grid over the members' segment bounding boxes (local ids).
    grid: UniformGrid,
}

impl ConflictGraph {
    /// Builds the conflict graph of `links` under `relation`.
    ///
    /// Uses the grid-pruned construction from the [module docs](self) — `O(n +
    /// m)`-ish for geometrically sparse instances instead of the seed's strict
    /// `O(n²)` — and falls back to [`ConflictGraph::build_naive`] below
    /// a small cutoff where grid setup would dominate. Both constructions
    /// yield identical graphs.
    pub fn build(links: &[Link], relation: ConflictRelation) -> Self {
        Self::build_traced(links, relation, &Recorder::disabled())
    }

    /// [`ConflictGraph::build`] with phase instrumentation: records a
    /// `conflict` span with `bucket` / `grids` / `rows` / `csr` children on
    /// `rec` (see `wagg-obs`). With the workspace `obs` feature off, or with a
    /// disabled recorder, this is exactly `build`.
    pub fn build_traced(links: &[Link], relation: ConflictRelation, rec: &Recorder) -> Self {
        let root = rec.span("conflict");
        if links.len() < GRID_BUILD_CUTOFF {
            return Self::build_naive(links, relation);
        }
        let rows = Self::grid_rows(links, relation, &root);
        let csr = root.child("csr");
        let graph = Self::from_rows(links, relation, rows);
        csr.finish();
        graph
    }

    /// Builds the conflict graph by checking all `O(n²)` pairs.
    ///
    /// Kept as the reference implementation: the property tests assert the
    /// grid build is edge-identical, and the `kernel` benchmark measures the
    /// speedup of [`ConflictGraph::build`] against it.
    pub fn build_naive(links: &[Link], relation: ConflictRelation) -> Self {
        let n = links.len();
        let mut rows = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if relation.conflicting(&links[i], &links[j]) {
                    rows[i].push(j);
                    rows[j].push(i);
                }
            }
        }
        Self::from_rows(links, relation, rows)
    }

    /// Computes every vertex's (sorted, deduplicated) neighbour row via the
    /// per-length-class grids. `parent` scopes the phase spans (`bucket`,
    /// `grids`, `rows`).
    fn grid_rows(links: &[Link], relation: ConflictRelation, parent: &Span) -> Vec<Vec<usize>> {
        let bucket_span = parent.child("bucket");
        let n = links.len();
        let bboxes: Vec<BoundingBox> = links
            .iter()
            .map(|l| BoundingBox::of_segment(l.sender, l.receiver))
            .collect();

        // Degenerate (zero-length) links conflict with every other link under
        // every relation; keep them out of the classes and append them to all
        // rows instead.
        let degenerate: Vec<usize> = (0..n).filter(|&i| links[i].length() <= 0.0).collect();
        let min_len = links
            .iter()
            .map(|l| l.length())
            .filter(|&l| l > 0.0)
            .fold(f64::INFINITY, f64::min);

        // Bucket by floor(log2(len / min_len)); the bucket key only steers
        // efficiency — radii below use each class's exact min/max lengths.
        // Keys are non-negative (min_len is the minimum) and bounded by the
        // f64 exponent range (~2100), so a counting sort sizes every class in
        // one pass and scatters members stably in a second, replacing the
        // per-insert map lookups.
        let mut classes_members: Vec<Vec<u32>> = Vec::new();
        if min_len.is_finite() {
            let key_of = |len: f64| (len / min_len).log2().floor() as usize;
            let mut counts: Vec<u32> = Vec::new();
            for link in links {
                let len = link.length();
                if len <= 0.0 {
                    continue;
                }
                let key = key_of(len);
                if key >= counts.len() {
                    counts.resize(key + 1, 0);
                }
                counts[key] += 1;
            }
            // Dense class index per occupied key, in ascending key order.
            let mut class_of = vec![usize::MAX; counts.len()];
            for (key, &count) in counts.iter().enumerate() {
                if count > 0 {
                    class_of[key] = classes_members.len();
                    classes_members.push(Vec::with_capacity(count as usize));
                }
            }
            for (i, link) in links.iter().enumerate() {
                let len = link.length();
                if len <= 0.0 {
                    continue;
                }
                classes_members[class_of[key_of(len)]].push(i as u32);
            }
        }
        bucket_span.finish();
        let grids_span = parent.child("grids");
        let classes: Vec<LengthClass> = classes_members
            .into_iter()
            .map(|members| {
                let lengths = members.iter().map(|&m| links[m as usize].length());
                let lo = lengths.clone().fold(f64::INFINITY, f64::min);
                let hi = lengths.fold(0.0f64, f64::max);
                let member_boxes: Vec<BoundingBox> =
                    members.iter().map(|&m| bboxes[m as usize]).collect();
                let grid = UniformGrid::build(hi.max(min_len), &member_boxes);
                LengthClass {
                    lo,
                    hi,
                    members,
                    grid,
                }
            })
            .collect();
        grids_span.finish();

        let rows_span = parent.child("rows");
        let row_of = |i: usize| -> Vec<usize> {
            let link = &links[i];
            let mut row: Vec<usize> = Vec::new();
            if link.length() <= 0.0 {
                // Degenerate vertex: conflicts with every distinct link.
                row.extend((0..n).filter(|&j| relation.conflicting(link, &links[j])));
                return row;
            }
            let li = link.length();
            for class in &classes {
                // Largest distance at which a member of this class could
                // still conflict with `link` (sound because f is
                // non-decreasing and lo/hi are the exact member bounds).
                let l_min = li.min(class.hi);
                let ratio = li.max(class.hi) / li.min(class.lo);
                let radius = l_min * relation.f(ratio);
                let mut push = |j: usize| {
                    if j != i && relation.conflicting(link, &links[j]) {
                        row.push(j);
                    }
                };
                if radius.is_finite() {
                    class.grid.for_each_candidate(&bboxes[i], radius, |local| {
                        push(class.members[local] as usize);
                    });
                } else {
                    for &m in &class.members {
                        push(m as usize);
                    }
                }
            }
            row.extend(degenerate.iter().copied().filter(|&j| j != i));
            row.sort_unstable();
            row.dedup();
            row
        };

        #[cfg(feature = "parallel")]
        let rows: Vec<Vec<usize>> = (0..n).into_par_iter().map(row_of).collect();
        #[cfg(not(feature = "parallel"))]
        let rows: Vec<Vec<usize>> = (0..n).map(row_of).collect();
        rows_span.finish();
        rows
    }

    /// Assembles the CSR arrays from per-vertex rows (each already sorted
    /// ascending — the naive build produces them sorted by construction).
    fn from_rows(links: &[Link], relation: ConflictRelation, rows: Vec<Vec<usize>>) -> Self {
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        offsets.push(0);
        let mut total = 0;
        for row in &rows {
            total += row.len();
            offsets.push(total);
        }
        let mut neighbors = Vec::with_capacity(total);
        for row in rows {
            neighbors.extend(row);
        }
        ConflictGraph {
            links: links.to_vec(),
            relation,
            offsets,
            neighbors,
        }
    }

    /// Assembles a conflict graph from prebuilt CSR arrays.
    ///
    /// This is the materialisation hook for callers that *maintain* adjacency
    /// themselves (the incremental engine in `wagg-engine`): they can snapshot
    /// their current state into a regular [`ConflictGraph`] without re-running
    /// any geometry. The caller asserts that the arrays describe exactly the
    /// graph [`ConflictGraph::build`] would produce for `links` under
    /// `relation`: `offsets` must have length `links.len() + 1`, start at 0,
    /// be non-decreasing and end at `neighbors.len()`, and every row must be
    /// sorted ascending with in-range, non-self entries. Structural violations
    /// panic (debug assertions check row sortedness).
    pub fn from_parts(
        links: Vec<Link>,
        relation: ConflictRelation,
        offsets: Vec<usize>,
        neighbors: Vec<usize>,
    ) -> Self {
        assert_eq!(offsets.len(), links.len() + 1, "offsets must cover n + 1");
        assert_eq!(offsets.first(), Some(&0), "offsets must start at zero");
        assert_eq!(
            offsets.last(),
            Some(&neighbors.len()),
            "offsets must end at the neighbour count"
        );
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!((0..links.len()).all(|v| {
            let row = &neighbors[offsets[v]..offsets[v + 1]];
            row.windows(2).all(|w| w[0] < w[1]) && row.iter().all(|&u| u < links.len() && u != v)
        }));
        ConflictGraph {
            links,
            relation,
            offsets,
            neighbors,
        }
    }

    /// The raw CSR arrays `(offsets, neighbors)` backing the adjacency — the
    /// counterpart of [`ConflictGraph::from_parts`] for callers seeding an
    /// incremental structure from a bulk build.
    pub fn csr(&self) -> (&[usize], &[usize]) {
        (&self.offsets, &self.neighbors)
    }

    /// The subgraph induced by `vertices` (strictly ascending indices into
    /// this graph), with **stable id remapping**: vertex `vertices[k]` becomes
    /// vertex `k` of the subgraph, its link is relabeled to id `k`, and
    /// `vertices` itself is the local → original id map. Rows are extracted by
    /// membership filtering of the CSR rows, so no geometry is re-run and the
    /// result equals `ConflictGraph::build` over the relabeled sub-links.
    ///
    /// This is the extraction hook of the sharded scheduler (`wagg-partition`):
    /// a shard builds one graph over its owned + ghost links, then schedules
    /// the owned-only restriction without rebuilding anything.
    ///
    /// # Panics
    ///
    /// Panics when `vertices` is not strictly ascending or contains an
    /// out-of-range index.
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::Point;
    /// use wagg_sinr::Link;
    /// use wagg_conflict::{ConflictGraph, ConflictRelation};
    ///
    /// let links = vec![
    ///     Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
    ///     Link::new(1, Point::new(1.5, 0.0), Point::new(2.5, 0.0)),
    ///     Link::new(2, Point::new(3.0, 0.0), Point::new(4.0, 0.0)),
    /// ];
    /// let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
    /// let sub = g.induced_subgraph(&[0, 2]);
    /// assert_eq!(sub.len(), 2);
    /// assert!(!sub.are_adjacent(0, 1)); // links 0 and 2 are independent
    /// ```
    pub fn induced_subgraph(&self, vertices: &[usize]) -> ConflictGraph {
        assert!(
            vertices.windows(2).all(|w| w[0] < w[1]),
            "vertices must be strictly ascending"
        );
        if let Some(&last) = vertices.last() {
            assert!(last < self.len(), "vertex {last} out of range");
        }
        let mut local_of = vec![usize::MAX; self.len()];
        for (local, &v) in vertices.iter().enumerate() {
            local_of[v] = local;
        }
        let links: Vec<Link> = vertices
            .iter()
            .enumerate()
            .map(|(local, &v)| {
                let mut link = self.links[v];
                link.id = local.into();
                link
            })
            .collect();
        let mut offsets = Vec::with_capacity(vertices.len() + 1);
        offsets.push(0);
        let mut neighbors = Vec::new();
        for &v in vertices {
            // The source row is ascending and the remap is monotone, so the
            // filtered row stays sorted.
            neighbors.extend(
                self.neighbors(v)
                    .iter()
                    .map(|&u| local_of[u])
                    .filter(|&u| u != usize::MAX),
            );
            offsets.push(neighbors.len());
        }
        ConflictGraph {
            links,
            relation: self.relation,
            offsets,
            neighbors,
        }
    }

    /// The links the graph was built over, in vertex order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The conflict relation the graph was built with.
    pub fn relation(&self) -> ConflictRelation {
        self.relation
    }

    /// Number of vertices (links).
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Neighbours (conflicting links) of vertex `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree of the graph.
    pub fn max_degree(&self) -> usize {
        (0..self.len()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Total number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Whether vertices `u` and `v` are adjacent (binary search over `u`'s
    /// sorted CSR row).
    #[inline]
    pub fn are_adjacent(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Whether the given vertex subset is independent (pairwise non-adjacent).
    ///
    /// Allocation-free: each pair is a binary search over the smaller row.
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::Point;
    /// use wagg_sinr::Link;
    /// use wagg_conflict::{ConflictGraph, ConflictRelation};
    ///
    /// let links = vec![
    ///     Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
    ///     Link::new(1, Point::new(10.0, 0.0), Point::new(11.0, 0.0)),
    /// ];
    /// let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
    /// assert!(g.is_independent_set(&[0, 1]));
    /// ```
    pub fn is_independent_set(&self, vertices: &[usize]) -> bool {
        for (pos, &u) in vertices.iter().enumerate() {
            for &v in &vertices[pos + 1..] {
                if u == v || self.query_adjacent(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// [`ConflictGraph::are_adjacent`] steered to the smaller of the two rows.
    #[inline]
    fn query_adjacent(&self, u: usize, v: usize) -> bool {
        if self.degree(u) <= self.degree(v) {
            self.are_adjacent(u, v)
        } else {
            self.are_adjacent(v, u)
        }
    }

    /// The "longer neighbourhood" `N_i^+` of vertex `v`: neighbours whose links are at
    /// least as long as `v`'s link. The paper's coloring analysis rests on the fact
    /// that independent sets inside `N_i^+` have constant size (constant *inductive
    /// independence*).
    pub fn longer_neighbors(&self, v: usize) -> Vec<usize> {
        let len = self.links[v].length();
        self.neighbors(v)
            .iter()
            .copied()
            .filter(|&u| self.links[u].length() >= len)
            .collect()
    }

    /// A greedy estimate (lower bound) of the maximum independent set size within the
    /// longer neighbourhood of `v` — the *inductive independence* witness at `v`.
    ///
    /// The estimate processes the longer neighbours by decreasing length —
    /// ties broken by vertex index under `f64::total_cmp`, so the greedy order
    /// (and hence the estimate) is deterministic even among equal-length
    /// links — and keeps every vertex independent of those already kept. The
    /// paper shows the true value is `O(1)` for the graphs `G_f`; the
    /// experiment harness reports this estimate.
    pub fn inductive_independence_at(&self, v: usize) -> usize {
        let mut candidates = self.longer_neighbors(v);
        candidates.sort_unstable_by(|&a, &b| {
            self.links[b]
                .length()
                .total_cmp(&self.links[a].length())
                .then(a.cmp(&b))
        });
        let mut kept: Vec<usize> = Vec::new();
        for c in candidates {
            if kept.iter().all(|&k| !self.query_adjacent(c, k)) {
                kept.push(c);
            }
        }
        kept.len()
    }

    /// The maximum inductive-independence estimate over all vertices
    /// (evaluated across threads under the `parallel` feature).
    pub fn inductive_independence(&self) -> usize {
        #[cfg(feature = "parallel")]
        {
            (0..self.len())
                .into_par_iter()
                .map(|v| self.inductive_independence_at(v))
                .max()
                .unwrap_or(0)
        }
        #[cfg(not(feature = "parallel"))]
        {
            (0..self.len())
                .map(|v| self.inductive_independence_at(v))
                .max()
                .unwrap_or(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_geometry::Point;

    fn line_link(id: usize, s: f64, r: f64) -> Link {
        Link::new(id, Point::on_line(s), Point::on_line(r))
    }

    fn chain(n: usize, gap: f64) -> Vec<Link> {
        // n unit links, consecutive links separated by `gap`.
        (0..n)
            .map(|i| {
                let start = i as f64 * (1.0 + gap);
                line_link(i, start, start + 1.0)
            })
            .collect()
    }

    #[test]
    fn empty_graph() {
        let g = ConflictGraph::build(&[], ConflictRelation::unit_constant());
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.inductive_independence(), 0);
        assert!(g.is_independent_set(&[]));
    }

    #[test]
    fn tight_chain_is_a_path_graph() {
        // Gap 0.5 < 1: consecutive links conflict, non-consecutive (distance >= 2) do not.
        let links = chain(5, 0.5);
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        assert_eq!(g.edge_count(), 4);
        for i in 0..4 {
            assert!(g.are_adjacent(i, i + 1));
        }
        assert!(!g.are_adjacent(0, 2));
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn sparse_chain_has_no_conflicts() {
        let links = chain(6, 2.0);
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_independent_set(&[0, 1, 2, 3, 4, 5]));
    }

    #[test]
    fn independent_set_detection() {
        let links = chain(4, 0.5);
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        assert!(g.is_independent_set(&[0, 2]));
        assert!(g.is_independent_set(&[1, 3]));
        assert!(!g.is_independent_set(&[0, 1]));
        assert!(!g.is_independent_set(&[0, 0]));
    }

    #[test]
    fn stronger_relation_gives_denser_graph() {
        let links = chain(6, 1.5);
        let g1 = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        let g3 = ConflictGraph::build(&links, ConflictRelation::constant(3.0));
        assert!(g3.edge_count() > g1.edge_count());
    }

    #[test]
    fn longer_neighbors_filter_by_length() {
        let links = vec![
            line_link(0, 0.0, 1.0), // short
            line_link(1, 1.5, 4.5), // long, close to 0
            line_link(2, 0.0, 0.5), // shorter than 0, overlapping region
        ];
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        let longer_of_0 = g.longer_neighbors(0);
        assert!(longer_of_0.contains(&1));
        assert!(!longer_of_0.contains(&2));
    }

    #[test]
    fn inductive_independence_small_for_g1_on_mst_like_chain() {
        let links = chain(12, 0.5);
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        assert!(g.inductive_independence() <= 2);
    }

    #[test]
    fn degrees_sum_to_twice_edges() {
        let links = chain(8, 0.8);
        let g = ConflictGraph::build(&links, ConflictRelation::oblivious_default());
        let degree_sum: usize = (0..g.len()).map(|v| g.degree(v)).sum();
        assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn grid_build_equals_naive_on_chains_past_the_cutoff() {
        // 200 links forces the grid path; a tight chain has plenty of edges.
        for relation in [
            ConflictRelation::unit_constant(),
            ConflictRelation::oblivious_default(),
            ConflictRelation::arbitrary_default(),
        ] {
            let links = chain(200, 0.4);
            let grid = ConflictGraph::build(&links, relation);
            let naive = ConflictGraph::build_naive(&links, relation);
            assert_eq!(grid, naive, "grid/naive mismatch under {relation}");
        }
    }

    #[test]
    fn grid_build_handles_degenerate_and_diverse_lengths() {
        // Mixed: a zero-length link, unit links, and exponentially longer
        // links, interleaved along a line.
        let mut links: Vec<Link> = Vec::new();
        for i in 0..70 {
            let x = i as f64 * 3.0;
            links.push(line_link(2 * i, x, x + 1.0));
            let growth = 1.0 + (i % 7) as f64 * 4.0;
            links.push(line_link(2 * i + 1, x + 1.2, x + 1.2 + growth));
        }
        links.push(line_link(1000, 5.0, 5.0)); // degenerate
        let relation = ConflictRelation::oblivious_default();
        let grid = ConflictGraph::build(&links, relation);
        let naive = ConflictGraph::build_naive(&links, relation);
        assert_eq!(grid, naive);
        // The degenerate link conflicts with everything.
        assert_eq!(grid.degree(links.len() - 1), links.len() - 1);
    }

    #[test]
    fn induced_subgraph_matches_a_rebuild_over_the_sublinks() {
        let links = chain(120, 0.4);
        for relation in [
            ConflictRelation::unit_constant(),
            ConflictRelation::oblivious_default(),
        ] {
            let g = ConflictGraph::build(&links, relation);
            // Every third link, plus a boundary-ish tail.
            let vertices: Vec<usize> = (0..links.len()).filter(|v| v % 3 != 1).collect();
            let sub = g.induced_subgraph(&vertices);
            let relabeled: Vec<Link> = vertices
                .iter()
                .enumerate()
                .map(|(local, &v)| {
                    let mut l = links[v];
                    l.id = local.into();
                    l
                })
                .collect();
            let rebuilt = ConflictGraph::build(&relabeled, relation);
            assert_eq!(sub, rebuilt, "subgraph mismatch under {relation}");
        }
    }

    #[test]
    fn induced_subgraph_of_everything_is_the_graph_itself() {
        let links = chain(30, 0.6);
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        let all: Vec<usize> = (0..links.len()).collect();
        assert_eq!(g.induced_subgraph(&all), g);
        let empty = g.induced_subgraph(&[]);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn induced_subgraph_rejects_unsorted_vertices() {
        let links = chain(5, 0.5);
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        let _ = g.induced_subgraph(&[2, 1]);
    }

    #[test]
    fn neighbors_rows_are_sorted() {
        let links = chain(100, 0.3);
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        for v in 0..g.len() {
            assert!(g.neighbors(v).windows(2).all(|w| w[0] < w[1]));
        }
    }
}
