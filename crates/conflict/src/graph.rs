//! The conflict graph data structure.

use crate::relation::ConflictRelation;
use serde::{Deserialize, Serialize};
use wagg_sinr::Link;

/// A conflict graph `G_f(L)` over a set of links.
///
/// Vertices are the links (by their position in the originating slice); an edge
/// joins two links iff they conflict under the relation the graph was built with.
/// The graph stores the links themselves so that colorings can be mapped back to
/// schedules without carrying the link set separately.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_sinr::Link;
/// use wagg_conflict::{ConflictGraph, ConflictRelation};
///
/// let links = vec![
///     Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
///     Link::new(1, Point::new(1.5, 0.0), Point::new(2.5, 0.0)),
///     Link::new(2, Point::new(50.0, 0.0), Point::new(51.0, 0.0)),
/// ];
/// let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
/// assert_eq!(g.len(), 3);
/// assert!(g.are_adjacent(0, 1));
/// assert!(!g.are_adjacent(0, 2));
/// assert_eq!(g.degree(0), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConflictGraph {
    links: Vec<Link>,
    relation: ConflictRelation,
    adjacency: Vec<Vec<usize>>,
}

impl ConflictGraph {
    /// Builds the conflict graph of `links` under `relation` (`O(n²)` pairwise checks).
    pub fn build(links: &[Link], relation: ConflictRelation) -> Self {
        let n = links.len();
        let mut adjacency = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if relation.conflicting(&links[i], &links[j]) {
                    adjacency[i].push(j);
                    adjacency[j].push(i);
                }
            }
        }
        ConflictGraph {
            links: links.to_vec(),
            relation,
            adjacency,
        }
    }

    /// The links the graph was built over, in vertex order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The conflict relation the graph was built with.
    pub fn relation(&self) -> ConflictRelation {
        self.relation
    }

    /// Number of vertices (links).
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Neighbours (conflicting links) of vertex `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjacency[v]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// Maximum degree of the graph.
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Whether vertices `u` and `v` are adjacent.
    pub fn are_adjacent(&self, u: usize, v: usize) -> bool {
        self.adjacency[u].contains(&v)
    }

    /// Whether the given vertex subset is independent (pairwise non-adjacent).
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::Point;
    /// use wagg_sinr::Link;
    /// use wagg_conflict::{ConflictGraph, ConflictRelation};
    ///
    /// let links = vec![
    ///     Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
    ///     Link::new(1, Point::new(10.0, 0.0), Point::new(11.0, 0.0)),
    /// ];
    /// let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
    /// assert!(g.is_independent_set(&[0, 1]));
    /// ```
    pub fn is_independent_set(&self, vertices: &[usize]) -> bool {
        for (pos, &u) in vertices.iter().enumerate() {
            for &v in &vertices[pos + 1..] {
                if u == v || self.are_adjacent(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// The "longer neighbourhood" `N_i^+` of vertex `v`: neighbours whose links are at
    /// least as long as `v`'s link. The paper's coloring analysis rests on the fact
    /// that independent sets inside `N_i^+` have constant size (constant *inductive
    /// independence*).
    pub fn longer_neighbors(&self, v: usize) -> Vec<usize> {
        let len = self.links[v].length();
        self.adjacency[v]
            .iter()
            .copied()
            .filter(|&u| self.links[u].length() >= len)
            .collect()
    }

    /// A greedy estimate (lower bound) of the maximum independent set size within the
    /// longer neighbourhood of `v` — the *inductive independence* witness at `v`.
    ///
    /// The estimate processes the longer neighbours by decreasing length and keeps
    /// every vertex independent of those already kept. The paper shows the true value
    /// is `O(1)` for the graphs `G_f`; the experiment harness reports this estimate.
    pub fn inductive_independence_at(&self, v: usize) -> usize {
        let mut candidates = self.longer_neighbors(v);
        candidates.sort_by(|&a, &b| {
            self.links[b]
                .length()
                .partial_cmp(&self.links[a].length())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut kept: Vec<usize> = Vec::new();
        for c in candidates {
            if kept.iter().all(|&k| !self.are_adjacent(c, k)) {
                kept.push(c);
            }
        }
        kept.len()
    }

    /// The maximum inductive-independence estimate over all vertices.
    pub fn inductive_independence(&self) -> usize {
        (0..self.len())
            .map(|v| self.inductive_independence_at(v))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_geometry::Point;

    fn line_link(id: usize, s: f64, r: f64) -> Link {
        Link::new(id, Point::on_line(s), Point::on_line(r))
    }

    fn chain(n: usize, gap: f64) -> Vec<Link> {
        // n unit links, consecutive links separated by `gap`.
        (0..n)
            .map(|i| {
                let start = i as f64 * (1.0 + gap);
                line_link(i, start, start + 1.0)
            })
            .collect()
    }

    #[test]
    fn empty_graph() {
        let g = ConflictGraph::build(&[], ConflictRelation::unit_constant());
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.inductive_independence(), 0);
        assert!(g.is_independent_set(&[]));
    }

    #[test]
    fn tight_chain_is_a_path_graph() {
        // Gap 0.5 < 1: consecutive links conflict, non-consecutive (distance >= 2) do not.
        let links = chain(5, 0.5);
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        assert_eq!(g.edge_count(), 4);
        for i in 0..4 {
            assert!(g.are_adjacent(i, i + 1));
        }
        assert!(!g.are_adjacent(0, 2));
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn sparse_chain_has_no_conflicts() {
        let links = chain(6, 2.0);
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_independent_set(&[0, 1, 2, 3, 4, 5]));
    }

    #[test]
    fn independent_set_detection() {
        let links = chain(4, 0.5);
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        assert!(g.is_independent_set(&[0, 2]));
        assert!(g.is_independent_set(&[1, 3]));
        assert!(!g.is_independent_set(&[0, 1]));
        assert!(!g.is_independent_set(&[0, 0]));
    }

    #[test]
    fn stronger_relation_gives_denser_graph() {
        let links = chain(6, 1.5);
        let g1 = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        let g3 = ConflictGraph::build(&links, ConflictRelation::constant(3.0));
        assert!(g3.edge_count() > g1.edge_count());
    }

    #[test]
    fn longer_neighbors_filter_by_length() {
        let links = vec![
            line_link(0, 0.0, 1.0),   // short
            line_link(1, 1.5, 4.5),   // long, close to 0
            line_link(2, 0.0, 0.5),   // shorter than 0, overlapping region
        ];
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        let longer_of_0 = g.longer_neighbors(0);
        assert!(longer_of_0.contains(&1));
        assert!(!longer_of_0.contains(&2));
    }

    #[test]
    fn inductive_independence_small_for_g1_on_mst_like_chain() {
        let links = chain(12, 0.5);
        let g = ConflictGraph::build(&links, ConflictRelation::unit_constant());
        assert!(g.inductive_independence() <= 2);
    }

    #[test]
    fn degrees_sum_to_twice_edges() {
        let links = chain(8, 0.8);
        let g = ConflictGraph::build(&links, ConflictRelation::oblivious_default());
        let degree_sum: usize = (0..g.len()).map(|v| g.degree(v)).sum();
        assert_eq!(degree_sum, 2 * g.edge_count());
    }
}
