//! The conflict relation family `G_f` of the paper's Appendix A.

use serde::{Deserialize, Serialize};
use std::fmt;
use wagg_sinr::Link;

/// A member of the conflict-relation family `G_f`.
///
/// Two links `i, j` with `l_min = min(l_i, l_j)`, `l_max = max(l_i, l_j)` and
/// link-to-link distance `d(i, j)` are **`f`-independent** iff
///
/// ```text
/// d(i, j) / l_min > f(l_max / l_min)
/// ```
///
/// and **conflicting** otherwise. The function `f` must be positive, non-decreasing
/// and sub-linear; the three shapes the paper uses are provided as variants.
///
/// # Examples
///
/// ```
/// use wagg_conflict::ConflictRelation;
///
/// let g1 = ConflictRelation::unit_constant();
/// assert_eq!(g1.f(100.0), 1.0);
/// let gobl = ConflictRelation::oblivious_default();
/// assert!(gobl.f(100.0) > g1.f(100.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConflictRelation {
    /// `f(x) ≡ gamma` — the graph `G_γ`. With `gamma = 1` this is the paper's `G1`.
    Constant {
        /// The constant `γ`.
        gamma: f64,
    },
    /// `f(x) = gamma · x^delta` — the graph `G^δ_γ` matched to oblivious power schemes.
    Polynomial {
        /// The multiplier `γ`.
        gamma: f64,
        /// The exponent `δ ∈ (0, 1)`.
        delta: f64,
    },
    /// `f(x) = gamma · max{1, log2(x)^(2/(alpha − 2))}` — the graph `G_{γ log}` matched
    /// to global power control.
    LogShaped {
        /// The multiplier `γ`.
        gamma: f64,
        /// The path-loss exponent `α` that fixes the power `2/(α − 2)` of the logarithm.
        alpha: f64,
    },
}

impl ConflictRelation {
    /// The paper's `G1`: constant relation with `γ = 1`.
    pub fn unit_constant() -> Self {
        ConflictRelation::Constant { gamma: 1.0 }
    }

    /// A constant relation `G_γ`.
    ///
    /// # Panics
    ///
    /// Panics unless `gamma > 0`.
    pub fn constant(gamma: f64) -> Self {
        assert!(gamma > 0.0, "gamma must be positive");
        ConflictRelation::Constant { gamma }
    }

    /// A polynomial relation `G^δ_γ`.
    ///
    /// # Panics
    ///
    /// Panics unless `gamma > 0` and `0 < delta < 1`.
    pub fn polynomial(gamma: f64, delta: f64) -> Self {
        assert!(gamma > 0.0, "gamma must be positive");
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must lie strictly between 0 and 1"
        );
        ConflictRelation::Polynomial { gamma, delta }
    }

    /// A log-shaped relation `G_{γ log}` for path-loss exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `gamma > 0` and `alpha > 2`.
    pub fn log_shaped(gamma: f64, alpha: f64) -> Self {
        assert!(gamma > 0.0, "gamma must be positive");
        assert!(alpha > 2.0, "alpha must exceed 2");
        ConflictRelation::LogShaped { gamma, alpha }
    }

    /// The default oblivious-power relation used by the experiments:
    /// `γ = 2`, `δ = 1/2` (matching the mean power scheme `P_{1/2}`).
    pub fn oblivious_default() -> Self {
        ConflictRelation::polynomial(2.0, 0.5)
    }

    /// The default global-power relation used by the experiments:
    /// `γ = 2`, `α = 3`.
    pub fn arbitrary_default() -> Self {
        ConflictRelation::log_shaped(2.0, 3.0)
    }

    /// Evaluates `f` at `x ≥ 1` (the length ratio `l_max / l_min`).
    pub fn f(&self, x: f64) -> f64 {
        let x = x.max(1.0);
        match *self {
            ConflictRelation::Constant { gamma } => gamma,
            ConflictRelation::Polynomial { gamma, delta } => gamma * x.powf(delta),
            ConflictRelation::LogShaped { gamma, alpha } => {
                let exponent = 2.0 / (alpha - 2.0);
                gamma * x.log2().powf(exponent).max(1.0)
            }
        }
    }

    /// Whether links `i` and `j` are independent under this relation.
    ///
    /// Links sharing an endpoint (distance zero) always conflict; a link is never in
    /// conflict with itself.
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::Point;
    /// use wagg_sinr::Link;
    /// use wagg_conflict::ConflictRelation;
    ///
    /// let rel = ConflictRelation::unit_constant();
    /// let a = Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0));
    /// let b = Link::new(1, Point::new(3.0, 0.0), Point::new(4.0, 0.0));
    /// let c = Link::new(2, Point::new(1.5, 0.0), Point::new(2.5, 0.0));
    /// assert!(rel.independent(&a, &b)); // distance 2 > 1 · f(1) = 1
    /// assert!(!rel.independent(&a, &c)); // distance 0.5 <= 1
    /// ```
    pub fn independent(&self, i: &Link, j: &Link) -> bool {
        if i.id == j.id {
            return true;
        }
        let li = i.length();
        let lj = j.length();
        let l_min = li.min(lj);
        let l_max = li.max(lj);
        if l_min <= 0.0 {
            return false;
        }
        let d = i.distance_to(j);
        d / l_min > self.f(l_max / l_min)
    }

    /// Whether links `i` and `j` conflict (the negation of [`ConflictRelation::independent`]
    /// for distinct links).
    pub fn conflicting(&self, i: &Link, j: &Link) -> bool {
        i.id != j.id && !self.independent(i, j)
    }
}

impl fmt::Display for ConflictRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConflictRelation::Constant { gamma } => write!(f, "G_{gamma}"),
            ConflictRelation::Polynomial { gamma, delta } => {
                write!(f, "G^{delta}_{gamma}")
            }
            ConflictRelation::LogShaped { gamma, alpha } => {
                write!(f, "G_{gamma}·log (alpha = {alpha})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_geometry::Point;

    fn line_link(id: usize, s: f64, r: f64) -> Link {
        Link::new(id, Point::on_line(s), Point::on_line(r))
    }

    #[test]
    fn constant_relation_thresholds_at_shorter_length() {
        let rel = ConflictRelation::unit_constant();
        let short = line_link(0, 0.0, 1.0);
        let long = line_link(1, 2.5, 6.5); // distance to short = 1.5 > min length 1
        assert!(rel.independent(&short, &long));
        let close_long = line_link(2, 1.5, 6.5); // distance 0.5 <= 1
        assert!(!rel.independent(&short, &close_long));
    }

    #[test]
    fn independence_is_symmetric() {
        let rels = [
            ConflictRelation::unit_constant(),
            ConflictRelation::oblivious_default(),
            ConflictRelation::arbitrary_default(),
        ];
        let a = line_link(0, 0.0, 2.0);
        let b = line_link(1, 5.0, 5.5);
        for rel in rels {
            assert_eq!(rel.independent(&a, &b), rel.independent(&b, &a));
        }
    }

    #[test]
    fn self_is_never_conflicting() {
        let rel = ConflictRelation::unit_constant();
        let a = line_link(0, 0.0, 1.0);
        assert!(rel.independent(&a, &a));
        assert!(!rel.conflicting(&a, &a));
    }

    #[test]
    fn shared_endpoint_always_conflicts() {
        for rel in [
            ConflictRelation::unit_constant(),
            ConflictRelation::oblivious_default(),
            ConflictRelation::arbitrary_default(),
        ] {
            let a = line_link(0, 0.0, 1.0);
            let b = line_link(1, 1.0, 50.0);
            assert!(
                rel.conflicting(&a, &b),
                "{rel} should mark them conflicting"
            );
        }
    }

    #[test]
    fn zero_length_link_conflicts_with_everything() {
        let rel = ConflictRelation::unit_constant();
        let degenerate = line_link(0, 5.0, 5.0);
        let normal = line_link(1, 0.0, 1.0);
        assert!(!rel.independent(&degenerate, &normal));
    }

    #[test]
    fn relation_ordering_constant_below_log_below_polynomial_for_large_ratios() {
        let g1 = ConflictRelation::unit_constant();
        let garb = ConflictRelation::arbitrary_default();
        let gobl = ConflictRelation::oblivious_default();
        let x = 1e6;
        assert!(g1.f(x) < garb.f(x));
        assert!(garb.f(x) < gobl.f(x));
    }

    #[test]
    fn larger_f_means_more_conflicts() {
        // A pair independent under G1 but conflicting under the oblivious relation.
        let short = line_link(0, 0.0, 1.0);
        let long = line_link(1, 3.0, 103.0); // ratio 100, distance 2
        assert!(ConflictRelation::unit_constant().independent(&short, &long));
        assert!(ConflictRelation::oblivious_default().conflicting(&short, &long));
    }

    #[test]
    fn log_shaped_f_values() {
        let rel = ConflictRelation::log_shaped(1.0, 4.0); // exponent 1
        assert_eq!(rel.f(1.0), 1.0);
        assert_eq!(rel.f(2.0), 1.0);
        assert_eq!(rel.f(16.0), 4.0);
    }

    #[test]
    fn polynomial_f_values() {
        let rel = ConflictRelation::polynomial(3.0, 0.5);
        assert_eq!(rel.f(4.0), 6.0);
        assert_eq!(rel.f(0.5), 3.0); // clamped at x = 1
    }

    #[test]
    #[should_panic(expected = "delta must lie strictly between 0 and 1")]
    fn polynomial_rejects_delta_one() {
        let _ = ConflictRelation::polynomial(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn constant_rejects_nonpositive_gamma() {
        let _ = ConflictRelation::constant(0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must exceed 2")]
    fn log_shaped_rejects_small_alpha() {
        let _ = ConflictRelation::log_shaped(1.0, 2.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(ConflictRelation::unit_constant().to_string(), "G_1");
        assert!(ConflictRelation::oblivious_default()
            .to_string()
            .contains("G^0.5"));
        assert!(ConflictRelation::arbitrary_default()
            .to_string()
            .contains("log"));
    }
}
