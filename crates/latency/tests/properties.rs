//! Property-based tests for the rate/latency layer.

use proptest::prelude::*;
use std::collections::HashSet;
use wagg_instances::random::uniform_square;
use wagg_latency::{build_matching_tree, pipeline_depth_bound, schedule_matching_tree};
use wagg_schedule::{PowerMode, SchedulerConfig};

fn deployment() -> impl Strategy<Value = (usize, u64)> {
    (6usize..60, 0u64..500)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matching_tree_is_a_spanning_convergecast((n, seed) in deployment()) {
        let inst = uniform_square(n, 150.0, seed);
        let tree = build_matching_tree(&inst.points, inst.sink).unwrap();
        prop_assert_eq!(tree.link_count(), n - 1);
        // Every non-sink node sends exactly once and the sink never sends.
        let senders: HashSet<usize> = tree
            .all_links()
            .iter()
            .map(|l| l.sender_node.unwrap().index())
            .collect();
        prop_assert_eq!(senders.len(), n - 1);
        prop_assert!(!senders.contains(&inst.sink));
    }

    #[test]
    fn matching_tree_height_is_logarithmic((n, seed) in deployment()) {
        let inst = uniform_square(n, 150.0, seed);
        let tree = build_matching_tree(&inst.points, inst.sink).unwrap();
        let bound = (n as f64).log2().ceil() as usize + 2;
        prop_assert!(tree.level_count() <= bound);
    }

    #[test]
    fn matching_schedule_is_a_partition((n, seed) in deployment()) {
        let inst = uniform_square(n, 150.0, seed);
        let tree = build_matching_tree(&inst.points, inst.sink).unwrap();
        let schedule = schedule_matching_tree(&tree, SchedulerConfig::new(PowerMode::GlobalControl));
        prop_assert!(schedule.schedule.is_partition(tree.link_count()));
        prop_assert_eq!(schedule.total_slots(), schedule.schedule.len());
        prop_assert!(schedule.per_level_slots.iter().all(|&s| s >= 1));
    }

    #[test]
    fn mst_depth_bound_is_at_most_n_minus_one((n, seed) in deployment()) {
        let inst = uniform_square(n, 150.0, seed);
        let links = inst.mst_links().unwrap();
        let depth = pipeline_depth_bound(&links);
        prop_assert!(depth >= 1);
        prop_assert!(depth < n);
    }
}
