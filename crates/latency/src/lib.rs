//! Rate-versus-latency trade-offs for wireless aggregation.
//!
//! The paper optimises the *sustained rate* of aggregation and notes
//! (Sec. 3.1, "Rate vs. latency") that rate and latency do not always go
//! together: a chain's MST schedules in a constant number of slots (constant
//! rate) but each frame needs a linear number of slots to reach the sink,
//! while a balanced aggregation tree achieves `O(log n)` latency at the cost
//! of a `Θ(1/log n)` rate. This crate makes both ends of that trade-off
//! measurable:
//!
//! * [`pipeline`] — the per-frame latency of the MST + periodic coloring
//!   schedule, both as the analytic hop-depth bound and as measured by the
//!   convergecast simulator,
//! * [`matching`] — the classic low-latency alternative: a matching-based
//!   aggregation tree of height `O(log n)` whose levels are scheduled one
//!   after another,
//! * [`tradeoff`] — the side-by-side comparison the paper's discussion calls
//!   for (rate, latency, tree height for both constructions).
//!
//! # Examples
//!
//! ```
//! use wagg_latency::compare_rate_latency;
//! use wagg_instances::random::uniform_square;
//! use wagg_schedule::{PowerMode, SchedulerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let inst = uniform_square(40, 120.0, 5);
//! let report = compare_rate_latency(&inst.points, inst.sink, SchedulerConfig::new(PowerMode::GlobalControl))?;
//! // The MST schedule sustains at least the rate of the level-by-level matching tree.
//! assert!(report.mst.rate >= report.matching.rate * 0.99);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod matching;
pub mod pipeline;
pub mod tradeoff;

pub use error::LatencyError;
pub use matching::{
    build_matching_tree, schedule_matching_tree, MatchingTree, MatchingTreeSchedule,
};
pub use pipeline::{measured_latency, pipeline_depth_bound, PipelineLatencyReport};
pub use tradeoff::{compare_rate_latency, RateLatencyPoint, TradeoffReport};
