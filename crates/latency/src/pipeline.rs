//! Latency of the MST + periodic coloring schedule.
//!
//! With a periodic coloring schedule a frame travels one hop per period at
//! worst, so the per-frame latency is bounded by `depth * period` slots; the
//! exact value depends on how the colors of a root path interleave within the
//! period. Both the analytic bound and the simulated latency are provided.

use crate::error::LatencyError;
use serde::{Deserialize, Serialize};
use wagg_schedule::Schedule;
use wagg_sim::{ConvergecastSim, SimConfig};
use wagg_sinr::Link;

/// Latency figures for a link set scheduled by a periodic coloring schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineLatencyReport {
    /// The schedule length (slots per period).
    pub period: usize,
    /// The hop depth of the convergecast tree (longest root path).
    pub depth: usize,
    /// The analytic worst-case latency bound `depth * period`.
    pub depth_bound: usize,
    /// Mean per-frame latency measured by the convergecast simulation.
    pub mean_latency: f64,
    /// Maximum per-frame latency measured by the convergecast simulation.
    pub max_latency: usize,
    /// Throughput measured by the same simulation (frames per slot).
    pub throughput: f64,
    /// Number of frames simulated.
    pub frames: usize,
}

/// The hop depth of a convergecast link set: the longest sender-to-sink path.
///
/// Returns 0 for an empty link set.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_latency::pipeline_depth_bound;
/// use wagg_sinr::{Link, NodeId};
///
/// // A two-hop chain 2 -> 1 -> 0.
/// let links = vec![
///     Link::with_nodes(0, Point::new(1.0, 0.0), Point::new(0.0, 0.0), NodeId(1), NodeId(0)),
///     Link::with_nodes(1, Point::new(2.0, 0.0), Point::new(1.0, 0.0), NodeId(2), NodeId(1)),
/// ];
/// assert_eq!(pipeline_depth_bound(&links), 2);
/// ```
pub fn pipeline_depth_bound(links: &[Link]) -> usize {
    use std::collections::HashMap;
    let mut parent: HashMap<usize, usize> = HashMap::new();
    for link in links {
        if let (Some(s), Some(r)) = (link.sender_node, link.receiver_node) {
            parent.insert(s.index(), r.index());
        }
    }
    let mut max_depth = 0usize;
    for &start in parent.keys() {
        let mut cur = start;
        let mut depth = 0usize;
        while let Some(&p) = parent.get(&cur) {
            cur = p;
            depth += 1;
            if depth > parent.len() {
                break; // defensive: cycles are reported elsewhere
            }
        }
        max_depth = max_depth.max(depth);
    }
    max_depth
}

/// Measures the latency of a periodic schedule over a convergecast link set
/// by running the frame-level simulation with one frame per period.
///
/// # Errors
///
/// Returns [`LatencyError::Simulation`] when the links do not form a
/// convergecast tree.
///
/// # Examples
///
/// ```
/// use wagg_instances::random::grid;
/// use wagg_latency::measured_latency;
/// use wagg_schedule::{solve_static, PowerMode, SchedulerConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let inst = grid(4, 4, 1.0);
/// let links = inst.mst_links()?;
/// let schedule = solve_static(&links, SchedulerConfig::new(PowerMode::GlobalControl)).schedule;
/// let report = measured_latency(&links, &schedule, 20)?;
/// assert!(report.mean_latency >= 1.0);
/// assert!(report.max_latency <= report.depth_bound.max(report.period));
/// # Ok(())
/// # }
/// ```
pub fn measured_latency(
    links: &[Link],
    schedule: &Schedule,
    frames: usize,
) -> Result<PipelineLatencyReport, LatencyError> {
    let sim = ConvergecastSim::new(links, schedule)?;
    let period = schedule.len().max(1);
    let report = sim.run(SimConfig {
        frame_period: period,
        num_frames: frames,
        max_slots: (frames + links.len() + 2) * period * 4 + 64,
    });
    let depth = pipeline_depth_bound(links);
    Ok(PipelineLatencyReport {
        period,
        depth,
        depth_bound: depth * period,
        mean_latency: report.mean_latency(),
        max_latency: report.max_latency(),
        throughput: report.throughput,
        frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_instances::chains::uniform_chain;
    use wagg_instances::random::{grid, uniform_square};
    use wagg_schedule::{solve_static, PowerMode, SchedulerConfig};

    fn schedule_for(links: &[Link], mode: PowerMode) -> Schedule {
        solve_static(links, SchedulerConfig::new(mode)).schedule
    }

    #[test]
    fn depth_of_a_chain_is_linear() {
        let inst = uniform_chain(12, 1.0);
        let links = inst.mst_links().unwrap();
        assert_eq!(pipeline_depth_bound(&links), 11);
    }

    #[test]
    fn depth_of_an_empty_link_set_is_zero() {
        assert_eq!(pipeline_depth_bound(&[]), 0);
    }

    #[test]
    fn chain_latency_is_linear_despite_constant_rate() {
        // The Sec. 3.1 observation: unit chains schedule in O(1) slots (high rate)
        // but the frame latency is linear in n.
        let inst = uniform_chain(20, 1.0);
        let links = inst.mst_links().unwrap();
        let schedule = schedule_for(&links, PowerMode::GlobalControl);
        let report = measured_latency(&links, &schedule, 12).unwrap();
        assert!(report.period <= 6, "chain schedule unexpectedly long");
        assert!(
            report.max_latency >= 19,
            "latency {} not linear",
            report.max_latency
        );
        assert!(report.max_latency <= report.depth_bound);
        assert!(report.throughput > 0.0);
    }

    #[test]
    fn grid_latency_respects_the_depth_bound() {
        let inst = grid(5, 5, 1.0);
        let links = inst.mst_links().unwrap();
        let schedule = schedule_for(&links, PowerMode::mean_oblivious());
        let report = measured_latency(&links, &schedule, 15).unwrap();
        assert!(report.mean_latency <= report.max_latency as f64);
        assert!(report.max_latency <= report.depth_bound.max(report.period));
    }

    #[test]
    fn malformed_link_sets_are_rejected() {
        // Links without node ids cannot be simulated.
        let inst = uniform_square(10, 50.0, 2);
        let mut links = inst.mst_links().unwrap();
        for l in &mut links {
            l.sender_node = None;
            l.receiver_node = None;
        }
        let schedule = Schedule::round_robin(links.len());
        assert!(matches!(
            measured_latency(&links, &schedule, 5),
            Err(LatencyError::Simulation(_))
        ));
    }
}
