//! Side-by-side rate/latency comparison of the MST schedule and the
//! matching-tree schedule.

use crate::error::LatencyError;
use crate::matching::{build_matching_tree, schedule_matching_tree};
use crate::pipeline::measured_latency;
use serde::{Deserialize, Serialize};
use wagg_geometry::Point;
use wagg_mst::euclidean_mst;
use wagg_schedule::{solve_static, SchedulerConfig};

/// One point of the rate/latency trade-off: a tree construction together with
/// its schedule length, rate, and per-frame latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateLatencyPoint {
    /// Human-readable name of the construction ("mst" or "matching").
    pub name: String,
    /// Schedule period in slots.
    pub slots: usize,
    /// Sustained rate (frames per slot).
    pub rate: f64,
    /// Mean per-frame latency in slots.
    pub mean_latency: f64,
    /// Maximum per-frame latency in slots.
    pub max_latency: usize,
    /// Tree height: hop depth for the MST, number of levels for the matching
    /// tree.
    pub height: usize,
}

/// The full comparison for one pointset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffReport {
    /// Number of nodes.
    pub nodes: usize,
    /// The MST + periodic coloring schedule (the paper's rate-optimal side).
    pub mst: RateLatencyPoint,
    /// The matching tree executed level by level (the low-latency side).
    pub matching: RateLatencyPoint,
}

impl TradeoffReport {
    /// How many times higher the MST rate is compared to the matching tree.
    pub fn rate_advantage_of_mst(&self) -> f64 {
        if self.matching.rate <= 0.0 {
            return f64::INFINITY;
        }
        self.mst.rate / self.matching.rate
    }

    /// How many times lower the matching tree's worst-case latency is
    /// compared to the MST pipeline.
    pub fn latency_advantage_of_matching(&self) -> f64 {
        if self.matching.max_latency == 0 {
            return f64::INFINITY;
        }
        self.mst.max_latency as f64 / self.matching.max_latency as f64
    }
}

/// Computes the rate/latency trade-off for a pointset under the given
/// scheduler configuration: the MST with its periodic coloring schedule
/// versus the matching tree with its level-by-level schedule.
///
/// Latencies are measured with the frame-level convergecast simulation (16
/// frames at each schedule's own period).
///
/// # Errors
///
/// Returns tree/simulation errors for degenerate pointsets.
///
/// # Examples
///
/// ```
/// use wagg_instances::chains::uniform_chain;
/// use wagg_latency::compare_rate_latency;
/// use wagg_schedule::{PowerMode, SchedulerConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let inst = uniform_chain(64, 1.0);
/// let report = compare_rate_latency(&inst.points, inst.sink, SchedulerConfig::new(PowerMode::GlobalControl))?;
/// // Chains: the MST wins on rate, the matching tree wins on latency.
/// assert!(report.rate_advantage_of_mst() > 1.0);
/// assert!(report.latency_advantage_of_matching() > 1.0);
/// # Ok(())
/// # }
/// ```
pub fn compare_rate_latency(
    points: &[Point],
    sink: usize,
    config: SchedulerConfig,
) -> Result<TradeoffReport, LatencyError> {
    const FRAMES: usize = 16;

    // The MST side.
    let tree = euclidean_mst(points)?;
    let links = tree.try_orient_towards(sink)?;
    let report = solve_static(&links, config);
    let mst_latency = measured_latency(&links, &report.schedule, FRAMES)?;
    let mst = RateLatencyPoint {
        name: "mst".to_string(),
        slots: report.schedule.len(),
        rate: report.rate(),
        mean_latency: mst_latency.mean_latency,
        max_latency: mst_latency.max_latency,
        height: mst_latency.depth,
    };

    // The matching-tree side. Its levels are sequential, so its period and its
    // per-frame latency are both the total slot count; the simulation is still
    // run to confirm that figure empirically.
    let matching_tree = build_matching_tree(points, sink)?;
    let matching_schedule = schedule_matching_tree(&matching_tree, config);
    let matching_links = matching_tree.all_links();
    let matching_latency = measured_latency(&matching_links, &matching_schedule.schedule, FRAMES)?;
    let matching = RateLatencyPoint {
        name: "matching".to_string(),
        slots: matching_schedule.total_slots(),
        rate: matching_schedule.rate(),
        mean_latency: matching_latency.mean_latency,
        max_latency: matching_latency.max_latency,
        height: matching_tree.level_count(),
    };

    Ok(TradeoffReport {
        nodes: points.len(),
        mst,
        matching,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_instances::chains::uniform_chain;
    use wagg_instances::random::uniform_square;
    use wagg_schedule::PowerMode;

    #[test]
    fn chains_show_the_textbook_tradeoff() {
        let inst = uniform_chain(64, 1.0);
        let report = compare_rate_latency(
            &inst.points,
            inst.sink,
            SchedulerConfig::new(PowerMode::GlobalControl),
        )
        .unwrap();
        // MST of a unit chain: constant slots, linear depth.
        assert!(report.mst.slots <= 8);
        assert_eq!(report.mst.height, 63);
        assert!(report.mst.max_latency >= 63);
        // Matching tree: logarithmic height, latency far below the chain depth,
        // rate far below the MST's.
        assert!(report.matching.height <= 8);
        assert!(report.matching.max_latency < report.mst.max_latency);
        assert!(report.matching.rate < report.mst.rate);
        assert!(report.rate_advantage_of_mst() > 1.0);
        assert!(report.latency_advantage_of_matching() > 1.0);
    }

    #[test]
    fn uniform_deployments_produce_consistent_reports() {
        let inst = uniform_square(50, 150.0, 23);
        let report = compare_rate_latency(
            &inst.points,
            inst.sink,
            SchedulerConfig::new(PowerMode::mean_oblivious()),
        )
        .unwrap();
        assert_eq!(report.nodes, 50);
        assert_eq!(report.mst.name, "mst");
        assert_eq!(report.matching.name, "matching");
        assert!(report.mst.rate > 0.0 && report.matching.rate > 0.0);
        assert!(report.mst.mean_latency <= report.mst.max_latency as f64);
        assert!(report.matching.mean_latency <= report.matching.max_latency as f64);
        // For the matching tree a frame finishes within one period.
        assert!(report.matching.max_latency <= report.matching.slots);
    }

    #[test]
    fn degenerate_pointsets_are_rejected() {
        let points = vec![Point::origin()];
        assert!(
            compare_rate_latency(&points, 0, SchedulerConfig::new(PowerMode::Uniform)).is_err()
        );
    }
}
