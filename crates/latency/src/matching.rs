//! The low-latency alternative: a matching-based aggregation tree.
//!
//! The classic `O(log n)`-latency construction (used, e.g., by Halldórsson
//! and Mitra for the latency-optimal variant of wireless connectivity) builds
//! the aggregation tree level by level: in every level the still-active nodes
//! are paired up greedily by distance, one node of each pair forwards its
//! aggregate to the other and goes inactive, and the surviving half proceeds
//! to the next level. After `O(log n)` levels only the sink remains. The
//! levels are inherently sequential, so the frame latency is the sum of the
//! per-level schedule lengths — logarithmic — while the rate is the
//! reciprocal of that same sum, i.e. `Θ(1/log n)` rather than the MST's
//! near-constant rate.

use crate::error::LatencyError;
use serde::{Deserialize, Serialize};
use wagg_geometry::Point;
use wagg_schedule::{solve_static, Schedule, SchedulerConfig};
use wagg_sinr::{Link, NodeId};

/// A matching-based aggregation tree: the links of every level, in the order
/// the levels must be executed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchingTree {
    /// The links of each level (level 0 first).
    pub levels: Vec<Vec<Link>>,
    /// The sink the tree is rooted at.
    pub sink: usize,
    /// Number of nodes in the pointset.
    pub nodes: usize,
}

impl MatchingTree {
    /// Number of levels (the tree height in rounds).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// All links of all levels, re-identified consecutively (level by level).
    pub fn all_links(&self) -> Vec<Link> {
        let mut links = Vec::new();
        for level in &self.levels {
            for link in level {
                let mut l = *link;
                l.id = wagg_sinr::LinkId(links.len());
                links.push(l);
            }
        }
        links
    }

    /// Total number of links (always `nodes - 1`).
    pub fn link_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }
}

/// Builds the matching-based aggregation tree for a pointset and sink.
///
/// In every level the active nodes are matched greedily by increasing
/// pairwise distance; in each matched pair the node that is not the sink (and
/// is further from the sink, ties broken by index) transmits to the other and
/// becomes inactive. Unmatched nodes simply survive to the next level.
///
/// # Errors
///
/// Returns [`LatencyError::TooFewPoints`], [`LatencyError::SinkOutOfRange`]
/// or [`LatencyError::CoincidentPoints`] for malformed inputs.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_latency::build_matching_tree;
///
/// let points: Vec<Point> = (0..8).map(|i| Point::new(i as f64, 0.0)).collect();
/// let tree = build_matching_tree(&points, 0).unwrap();
/// assert_eq!(tree.link_count(), 7);
/// assert_eq!(tree.level_count(), 3); // 8 -> 4 -> 2 -> 1 active nodes
/// ```
pub fn build_matching_tree(points: &[Point], sink: usize) -> Result<MatchingTree, LatencyError> {
    if points.len() < 2 {
        return Err(LatencyError::TooFewPoints {
            found: points.len(),
        });
    }
    if sink >= points.len() {
        return Err(LatencyError::SinkOutOfRange {
            sink,
            nodes: points.len(),
        });
    }
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            if points[i].distance(points[j]) == 0.0 {
                return Err(LatencyError::CoincidentPoints {
                    first: i,
                    second: j,
                });
            }
        }
    }

    let mut active: Vec<usize> = (0..points.len()).collect();
    let mut levels: Vec<Vec<Link>> = Vec::new();
    let mut next_id = 0usize;

    while active.len() > 1 {
        // All candidate pairs among active nodes, closest first.
        let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
        for (a_pos, &a) in active.iter().enumerate() {
            for &b in &active[a_pos + 1..] {
                pairs.push((points[a].distance(points[b]), a, b));
            }
        }
        pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite distances"));

        let mut matched: Vec<bool> = vec![false; points.len()];
        let mut level_links: Vec<Link> = Vec::new();
        let mut removed: Vec<usize> = Vec::new();
        for (_, a, b) in pairs {
            if matched[a] || matched[b] {
                continue;
            }
            matched[a] = true;
            matched[b] = true;
            // Choose the survivor: the sink always survives; otherwise the node
            // closer to the sink (ties by smaller index).
            let (survivor, forwarder) = if a == sink {
                (a, b)
            } else if b == sink {
                (b, a)
            } else {
                let da = points[a].distance(points[sink]);
                let db = points[b].distance(points[sink]);
                if da < db || (da == db && a < b) {
                    (a, b)
                } else {
                    (b, a)
                }
            };
            level_links.push(Link::with_nodes(
                next_id,
                points[forwarder],
                points[survivor],
                NodeId(forwarder),
                NodeId(survivor),
            ));
            next_id += 1;
            removed.push(forwarder);
        }
        debug_assert!(
            !level_links.is_empty(),
            "a matching on >= 2 nodes is non-empty"
        );
        active.retain(|v| !removed.contains(v));
        levels.push(level_links);
    }
    debug_assert_eq!(active, vec![sink]);

    Ok(MatchingTree {
        levels,
        sink,
        nodes: points.len(),
    })
}

/// The schedule of a matching tree: each level scheduled independently, the
/// levels executed back to back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchingTreeSchedule {
    /// Slots used by each level.
    pub per_level_slots: Vec<usize>,
    /// The concatenated schedule over [`MatchingTree::all_links`] (level-0
    /// links first).
    pub schedule: Schedule,
    /// Number of levels.
    pub levels: usize,
}

impl MatchingTreeSchedule {
    /// Total slots of one aggregation wave (= frame latency = schedule
    /// period).
    pub fn total_slots(&self) -> usize {
        self.per_level_slots.iter().sum()
    }

    /// The sustained rate when waves are run back to back: `1 / total
    /// slots`.
    pub fn rate(&self) -> f64 {
        let total = self.total_slots();
        if total == 0 {
            0.0
        } else {
            1.0 / total as f64
        }
    }
}

/// Schedules a matching tree level by level under the given configuration.
///
/// Because a node can only transmit after it has heard from every node
/// matched to it in earlier levels, the levels are sequential; each level is
/// a set of links of (typically) comparable lengths and is scheduled with the
/// same conflict-graph machinery as the MST.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_latency::{build_matching_tree, schedule_matching_tree};
/// use wagg_schedule::{PowerMode, SchedulerConfig};
///
/// let points: Vec<Point> = (0..16).map(|i| Point::new(i as f64, (i % 3) as f64)).collect();
/// let tree = build_matching_tree(&points, 0).unwrap();
/// let schedule = schedule_matching_tree(&tree, SchedulerConfig::new(PowerMode::GlobalControl));
/// assert_eq!(schedule.levels, tree.level_count());
/// assert!(schedule.total_slots() >= tree.level_count());
/// ```
pub fn schedule_matching_tree(
    tree: &MatchingTree,
    config: SchedulerConfig,
) -> MatchingTreeSchedule {
    let mut per_level_slots = Vec::with_capacity(tree.levels.len());
    let mut slots: Vec<Vec<usize>> = Vec::new();
    let mut offset = 0usize;
    for level in &tree.levels {
        // Re-identify the level's links locally so the scheduler sees ids 0..k.
        let local: Vec<Link> = level
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let mut link = *l;
                link.id = wagg_sinr::LinkId(i);
                link
            })
            .collect();
        let report = solve_static(&local, config);
        per_level_slots.push(report.schedule.len());
        for slot in report.schedule.slots() {
            slots.push(slot.iter().map(|&i| i + offset).collect());
        }
        offset += level.len();
    }
    MatchingTreeSchedule {
        per_level_slots,
        schedule: Schedule::new(slots),
        levels: tree.levels.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use wagg_instances::chains::uniform_chain;
    use wagg_instances::random::uniform_square;
    use wagg_schedule::PowerMode;

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(matches!(
            build_matching_tree(&[Point::origin()], 0),
            Err(LatencyError::TooFewPoints { found: 1 })
        ));
        let points = vec![Point::origin(), Point::new(1.0, 0.0)];
        assert!(matches!(
            build_matching_tree(&points, 7),
            Err(LatencyError::SinkOutOfRange { sink: 7, nodes: 2 })
        ));
        let points = vec![Point::origin(), Point::origin(), Point::new(1.0, 0.0)];
        assert!(matches!(
            build_matching_tree(&points, 0),
            Err(LatencyError::CoincidentPoints {
                first: 0,
                second: 1
            })
        ));
    }

    #[test]
    fn every_non_sink_node_transmits_exactly_once() {
        let inst = uniform_square(37, 100.0, 19);
        let tree = build_matching_tree(&inst.points, inst.sink).unwrap();
        assert_eq!(tree.link_count(), 36);
        let mut senders: HashMap<usize, usize> = HashMap::new();
        for level in &tree.levels {
            for link in level {
                *senders
                    .entry(link.sender_node.unwrap().index())
                    .or_insert(0) += 1;
            }
        }
        assert_eq!(senders.len(), 36);
        assert!(senders.values().all(|&c| c == 1));
        assert!(!senders.contains_key(&inst.sink));
    }

    #[test]
    fn level_count_is_logarithmic() {
        for n in [8usize, 16, 32, 64, 128] {
            let inst = uniform_square(n, 200.0, n as u64);
            let tree = build_matching_tree(&inst.points, inst.sink).unwrap();
            let bound = (n as f64).log2().ceil() as usize + 2;
            assert!(
                tree.level_count() <= bound,
                "n = {n}: {} levels exceeds {bound}",
                tree.level_count()
            );
        }
    }

    #[test]
    fn receivers_of_a_level_survive_to_later_levels() {
        let inst = uniform_square(30, 80.0, 5);
        let tree = build_matching_tree(&inst.points, inst.sink).unwrap();
        // A node that transmitted at level k must never appear again.
        let mut gone: Vec<usize> = Vec::new();
        for level in &tree.levels {
            for link in level {
                let s = link.sender_node.unwrap().index();
                let r = link.receiver_node.unwrap().index();
                assert!(!gone.contains(&s), "sender {s} already left the tree");
                assert!(!gone.contains(&r), "receiver {r} already left the tree");
            }
            for link in level {
                gone.push(link.sender_node.unwrap().index());
            }
        }
    }

    #[test]
    fn matching_tree_of_a_chain_is_shallow_but_slow() {
        let inst = uniform_chain(32, 1.0);
        let tree = build_matching_tree(&inst.points, inst.sink).unwrap();
        assert!(tree.level_count() <= 7);
        let schedule =
            schedule_matching_tree(&tree, SchedulerConfig::new(PowerMode::GlobalControl));
        // Latency (one wave) is the total schedule; much smaller than the chain's
        // 31-hop pipeline latency, but the rate is correspondingly lower than the
        // MST's near-constant rate.
        assert_eq!(schedule.levels, tree.level_count());
        assert!(schedule.total_slots() >= tree.level_count());
        assert!(schedule.rate() <= 1.0 / tree.level_count() as f64 + 1e-12);
        assert!(schedule.schedule.is_partition(tree.link_count()));
    }

    #[test]
    fn concatenated_schedule_indexes_all_links_once() {
        let inst = uniform_square(25, 60.0, 8);
        let tree = build_matching_tree(&inst.points, inst.sink).unwrap();
        let schedule =
            schedule_matching_tree(&tree, SchedulerConfig::new(PowerMode::mean_oblivious()));
        assert!(schedule.schedule.is_partition(tree.link_count()));
        assert_eq!(schedule.per_level_slots.len(), tree.level_count());
        assert_eq!(schedule.total_slots(), schedule.schedule.len(),);
    }
}
