//! Error type for the latency layer.

use std::error::Error;
use std::fmt;

/// Errors raised when building trees or measuring latency.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LatencyError {
    /// Fewer than two nodes were supplied.
    TooFewPoints {
        /// Number of points supplied.
        found: usize,
    },
    /// The sink index does not refer to a node.
    SinkOutOfRange {
        /// The offending sink index.
        sink: usize,
        /// Number of nodes.
        nodes: usize,
    },
    /// Two distinct nodes coincide, so nearest-neighbour matching is
    /// ill-defined.
    CoincidentPoints {
        /// First node index.
        first: usize,
        /// Second node index.
        second: usize,
    },
    /// Building or orienting the MST failed.
    Tree(wagg_mst::MstError),
    /// Assembling the convergecast simulation failed.
    Simulation(wagg_sim::SimError),
}

impl fmt::Display for LatencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatencyError::TooFewPoints { found } => {
                write!(f, "need at least two nodes, found {found}")
            }
            LatencyError::SinkOutOfRange { sink, nodes } => {
                write!(f, "sink index {sink} is out of range for {nodes} nodes")
            }
            LatencyError::CoincidentPoints { first, second } => {
                write!(f, "nodes {first} and {second} occupy the same position")
            }
            LatencyError::Tree(e) => write!(f, "tree construction failed: {e}"),
            LatencyError::Simulation(e) => write!(f, "simulation setup failed: {e}"),
        }
    }
}

impl Error for LatencyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LatencyError::Tree(e) => Some(e),
            LatencyError::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wagg_mst::MstError> for LatencyError {
    fn from(e: wagg_mst::MstError) -> Self {
        LatencyError::Tree(e)
    }
}

impl From<wagg_sim::SimError> for LatencyError {
    fn from(e: wagg_sim::SimError) -> Self {
        LatencyError::Simulation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let errors = [
            LatencyError::TooFewPoints { found: 1 },
            LatencyError::SinkOutOfRange { sink: 3, nodes: 2 },
            LatencyError::CoincidentPoints {
                first: 0,
                second: 1,
            },
            LatencyError::Tree(wagg_mst::MstError::TooFewPoints { found: 1 }),
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn wrapped_errors_expose_their_source() {
        let err: LatencyError = wagg_mst::MstError::TooFewPoints { found: 0 }.into();
        assert!(err.source().is_some());
        let err: LatencyError = wagg_sim::SimError::NotAConvergecastTree.into();
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync_and_static() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<LatencyError>();
    }
}
