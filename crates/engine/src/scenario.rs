//! Engine event traces: churn and mobility workloads, replayable event by
//! event.
//!
//! A trace is a flat, serialisable list of [`EngineEvent`]s referring to
//! links by caller-chosen **keys** (slots are an engine-internal detail the
//! generator cannot know in advance); [`run_trace`] replays a trace against
//! an [`InterferenceEngine`], maintaining the key → slot binding. Two
//! generators are provided:
//!
//! * [`churn_trace`] — random link departures and arrivals at a steady
//!   population, the dynamic-network workload of `wagg-dynamic`,
//! * [`EngineTrace::from_mobility`] — adapts a
//!   [`wagg_instances::mobility`] random-waypoint trace: nodes are chained
//!   (`node i` transmits to `node i − 1`) and every waypoint step becomes a
//!   [`EngineEvent::MoveNode`], so each event re-seats at most two links.

use crate::engine::{BatchOp, InterferenceEngine};
use crate::error::EngineError;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wagg_geometry::rng::seeded_rng;
use wagg_geometry::Point;
use wagg_instances::mobility::{handover_events, MobilityTrace};
use wagg_sinr::NodeId;

/// One replayable engine event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EngineEvent {
    /// A link arrives under a fresh trace key.
    Insert {
        /// Caller-chosen key later events refer to.
        key: u64,
        /// Sender position.
        sender: Point,
        /// Receiver position.
        receiver: Point,
        /// Pointset node of the sender, if the link should follow
        /// [`EngineEvent::MoveNode`] events.
        sender_node: Option<usize>,
        /// Pointset node of the receiver, if any.
        receiver_node: Option<usize>,
    },
    /// The link inserted under `key` departs.
    Remove {
        /// The departing link's trace key.
        key: u64,
    },
    /// A pointset node moves; every live link annotated with it follows.
    MoveNode {
        /// The moving node.
        node: usize,
        /// Its new position.
        to: Point,
    },
}

/// A named sequence of engine events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineTrace {
    /// Trace name (reported by benches and experiments).
    pub name: String,
    /// The events, in application order.
    pub events: Vec<EngineEvent>,
}

impl EngineTrace {
    /// Adapts a random-waypoint mobility trace: nodes are chained (`i → i−1`
    /// for `i ≥ 1`) with their initial positions, then every waypoint move
    /// becomes a [`EngineEvent::MoveNode`]. Each move touches at most two
    /// links (the node's uplink and its child's), which is exactly the
    /// "affected neighbourhood" workload the engine is built for.
    pub fn from_mobility(trace: &MobilityTrace) -> Self {
        let mut events = Vec::with_capacity(trace.initial.len() + trace.moves.len());
        for (i, w) in trace.initial.windows(2).enumerate() {
            events.push(EngineEvent::Insert {
                key: (i + 1) as u64,
                sender: w[1],
                receiver: w[0],
                sender_node: Some(i + 1),
                receiver_node: Some(i),
            });
        }
        events.extend(trace.moves.iter().map(|m| EngineEvent::MoveNode {
            node: m.node,
            to: m.to,
        }));
        EngineTrace {
            name: format!("mobility-n{}-s{}", trace.initial.len(), trace.config.steps),
            events,
        }
    }

    /// Adapts a mobility trace to **handover mobility** against a static
    /// relay set: every mobile node `i` (pointset nodes `0..n`) keeps one
    /// uplink to its associated relay (pointset nodes `n..n + relays.len()`,
    /// never moving), waypoint moves become [`EngineEvent::MoveNode`]s that
    /// drag the uplink's sender endpoint along, and whenever the node drifts
    /// past the hysteresis `margin`
    /// ([`wagg_instances::mobility::handover_events`]) the uplink is
    /// re-associated — a [`EngineEvent::Remove`] of the old uplink followed
    /// by an [`EngineEvent::Insert`] towards the new nearest relay. Each
    /// handover therefore touches exactly one link's neighbourhood, the
    /// workload the incremental engine is built for.
    ///
    /// # Panics
    ///
    /// Panics when `relays` is empty or `margin` is negative (propagated
    /// from `handover_events`).
    pub fn from_handover(trace: &MobilityTrace, relays: &[Point], margin: f64) -> Self {
        let n = trace.initial.len();
        let (initial_assoc, handovers) = handover_events(trace, relays, margin);
        let mut events = Vec::with_capacity(n + trace.moves.len() + 2 * handovers.len());
        // Uplink of node i starts under key i; re-associations mint fresh keys.
        let mut uplink_key: Vec<u64> = (0..n as u64).collect();
        let mut next_key = n as u64;
        for (i, (&pos, &relay)) in trace.initial.iter().zip(&initial_assoc).enumerate() {
            events.push(EngineEvent::Insert {
                key: i as u64,
                sender: pos,
                receiver: relays[relay],
                sender_node: Some(i),
                receiver_node: Some(n + relay),
            });
        }
        let mut pending = handovers.iter().peekable();
        for (move_index, m) in trace.moves.iter().enumerate() {
            events.push(EngineEvent::MoveNode {
                node: m.node,
                to: m.to,
            });
            while let Some(h) = pending.peek() {
                if h.move_index != move_index {
                    break;
                }
                events.push(EngineEvent::Remove {
                    key: uplink_key[h.node],
                });
                let key = next_key;
                next_key += 1;
                uplink_key[h.node] = key;
                events.push(EngineEvent::Insert {
                    key,
                    sender: m.to,
                    receiver: relays[h.to_relay],
                    sender_node: Some(h.node),
                    receiver_node: Some(n + h.to_relay),
                });
                pending.next();
            }
        }
        EngineTrace {
            name: format!("handover-n{}-r{}-s{}", n, relays.len(), trace.config.steps),
            events,
        }
    }
}

/// A steady-state churn trace: `n` initial unit-ish links uniformly placed in
/// a square scaled to constant density, followed by `events` alternating
/// departures of a random live link and arrivals of a fresh one (so the
/// population stays around `n`). Deterministic in `seed`.
pub fn churn_trace(n: usize, events: usize, seed: u64) -> EngineTrace {
    let side = (n.max(1) as f64).sqrt() * 4.0;
    let mut rng = seeded_rng(seed);
    let mut next_key = 0u64;
    let mut live: Vec<u64> = Vec::with_capacity(n);
    let mut out = Vec::with_capacity(n + events);
    let mut insert = |rng: &mut wagg_geometry::rng::DeterministicRng,
                      live: &mut Vec<u64>,
                      out: &mut Vec<EngineEvent>| {
        let key = next_key;
        next_key += 1;
        let x = rng.gen_range(0.0..side);
        let y = rng.gen_range(0.0..side);
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        out.push(EngineEvent::Insert {
            key,
            sender: Point::new(x, y),
            receiver: Point::new(x + angle.cos(), y + angle.sin()),
            sender_node: None,
            receiver_node: None,
        });
        live.push(key);
    };
    for _ in 0..n {
        insert(&mut rng, &mut live, &mut out);
    }
    for round in 0..events {
        let depart = round % 2 == 0 && !live.is_empty();
        if depart {
            let victim = rng.gen_range(0..live.len());
            out.push(EngineEvent::Remove {
                key: live.swap_remove(victim),
            });
        } else {
            insert(&mut rng, &mut live, &mut out);
        }
    }
    EngineTrace {
        name: format!("churn-n{n}-e{events}"),
        events: out,
    }
}

/// What replaying a trace did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceOutcome {
    /// Number of events applied.
    pub applied: usize,
    /// Live links after the final event.
    pub final_links: usize,
    /// Conflict edges after the final event.
    pub final_edges: usize,
}

/// A persistent trace-key → engine-slot binding, for replaying a trace in
/// pieces (e.g. one mobility step at a time, rescheduling in between).
/// [`run_trace`] is a one-shot wrapper around it; a binding must only ever
/// be used with the engine it has been applying events to.
#[derive(Debug, Clone, Default)]
pub struct TraceBinding {
    slot_of: HashMap<u64, usize>,
}

impl TraceBinding {
    /// An empty binding.
    pub fn new() -> Self {
        TraceBinding::default()
    }

    /// The engine slot currently bound to `key`, if live.
    pub fn slot_of(&self, key: u64) -> Option<usize> {
        self.slot_of.get(&key).copied()
    }

    /// Applies `events` to `engine` one by one, updating the binding.
    /// Returns the number of events applied.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTraceKey`] when a `Remove` names a key that is
    /// not live (including double-removes); engine errors are propagated.
    pub fn apply(
        &mut self,
        engine: &mut InterferenceEngine,
        events: &[EngineEvent],
    ) -> Result<usize, EngineError> {
        for event in events {
            match *event {
                EngineEvent::Insert {
                    key,
                    sender,
                    receiver,
                    sender_node,
                    receiver_node,
                } => {
                    let slot = match (sender_node, receiver_node) {
                        (Some(s), Some(r)) => {
                            engine.insert_link_with_nodes(sender, receiver, NodeId(s), NodeId(r))
                        }
                        _ => engine.insert_link(sender, receiver),
                    };
                    self.slot_of.insert(key, slot);
                }
                EngineEvent::Remove { key } => {
                    let slot = self
                        .slot_of
                        .remove(&key)
                        .ok_or(EngineError::UnknownTraceKey { key })?;
                    engine.remove_link(slot)?;
                }
                EngineEvent::MoveNode { node, to } => {
                    engine.move_node(node, to);
                }
            }
        }
        Ok(events.len())
    }
}

/// Replays a trace against an engine, binding trace keys to engine slots.
///
/// # Errors
///
/// [`EngineError::UnknownTraceKey`] when a `Remove` names a key that is not
/// live (including double-removes); engine errors are propagated.
pub fn run_trace(
    engine: &mut InterferenceEngine,
    trace: &EngineTrace,
) -> Result<TraceOutcome, EngineError> {
    let mut binding = TraceBinding::new();
    binding.apply(engine, &trace.events)?;
    Ok(TraceOutcome {
        applied: trace.events.len(),
        final_links: engine.len(),
        final_edges: engine.edge_count(),
    })
}

/// Replays a trace in batches of (at most) `batch` events through
/// [`InterferenceEngine::apply_batch`], so each affected conflict row is
/// recomputed once per batch instead of once per event — the natural way to
/// apply a whole simulation step (e.g. one mobility step moves every node;
/// pass `batch = nodes`). The final engine state is identical to
/// [`run_trace`] (property-tested), only the maintenance cost differs.
///
/// A `Remove` whose key was inserted earlier **in the same pending batch**
/// forces an early flush (its slot is only known once the batch runs), so
/// batches never reorder events.
///
/// # Errors
///
/// Same contract as [`run_trace`]: [`EngineError::UnknownTraceKey`] for
/// removes of keys that are not live, engine errors propagated.
///
/// # Panics
///
/// Panics when `batch == 0`.
pub fn run_trace_batched(
    engine: &mut InterferenceEngine,
    trace: &EngineTrace,
    batch: usize,
) -> Result<TraceOutcome, EngineError> {
    assert!(batch > 0, "batch size must be positive");
    let mut slot_of: HashMap<u64, usize> = HashMap::new();
    let mut ops: Vec<BatchOp> = Vec::with_capacity(batch);
    let mut pending_keys: Vec<u64> = Vec::new();

    fn flush(
        engine: &mut InterferenceEngine,
        ops: &mut Vec<BatchOp>,
        pending_keys: &mut Vec<u64>,
        slot_of: &mut HashMap<u64, usize>,
    ) -> Result<(), EngineError> {
        if ops.is_empty() {
            return Ok(());
        }
        let slots = engine.apply_batch(ops)?;
        debug_assert_eq!(slots.len(), pending_keys.len());
        for (key, slot) in pending_keys.drain(..).zip(slots) {
            slot_of.insert(key, slot);
        }
        ops.clear();
        Ok(())
    }

    for event in &trace.events {
        match *event {
            EngineEvent::Insert {
                key,
                sender,
                receiver,
                sender_node,
                receiver_node,
            } => {
                pending_keys.push(key);
                ops.push(BatchOp::Insert {
                    sender,
                    receiver,
                    sender_node: sender_node.map(NodeId),
                    receiver_node: receiver_node.map(NodeId),
                });
            }
            EngineEvent::Remove { key } => {
                if pending_keys.contains(&key) {
                    flush(engine, &mut ops, &mut pending_keys, &mut slot_of)?;
                }
                let Some(slot) = slot_of.remove(&key) else {
                    // Fail in the same engine state the per-event path
                    // would: everything before the bad event applied.
                    flush(engine, &mut ops, &mut pending_keys, &mut slot_of)?;
                    return Err(EngineError::UnknownTraceKey { key });
                };
                ops.push(BatchOp::Remove { slot });
            }
            EngineEvent::MoveNode { node, to } => {
                ops.push(BatchOp::MoveNode { node, to });
            }
        }
        if ops.len() >= batch {
            flush(engine, &mut ops, &mut pending_keys, &mut slot_of)?;
        }
    }
    flush(engine, &mut ops, &mut pending_keys, &mut slot_of)?;
    Ok(TraceOutcome {
        applied: trace.events.len(),
        final_links: engine.len(),
        final_edges: engine.edge_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use wagg_conflict::ConflictRelation;
    use wagg_instances::mobility::{random_waypoint, WaypointConfig};
    use wagg_sinr::{PowerAssignment, SinrModel};

    fn engine() -> InterferenceEngine {
        InterferenceEngine::new(EngineConfig::new(
            ConflictRelation::unit_constant(),
            SinrModel::default(),
            PowerAssignment::mean(),
        ))
    }

    #[test]
    fn churn_traces_are_deterministic_and_keep_population_steady() {
        let a = churn_trace(40, 30, 3);
        let b = churn_trace(40, 30, 3);
        assert_eq!(a, b);
        let mut e = engine();
        let outcome = run_trace(&mut e, &a).unwrap();
        assert_eq!(outcome.applied, 70);
        assert_eq!(outcome.final_links, 40); // 15 removes, 15 inserts
        assert_eq!(e.len(), 40);
    }

    #[test]
    fn mobility_traces_drive_move_events() {
        let trace = random_waypoint(&WaypointConfig {
            nodes: 8,
            side: 30.0,
            speed: 2.0,
            steps: 5,
            seed: 11,
        });
        let engine_trace = EngineTrace::from_mobility(&trace);
        assert_eq!(engine_trace.events.len(), 7 + 40);
        let mut e = engine();
        let outcome = run_trace(&mut e, &engine_trace).unwrap();
        assert_eq!(outcome.final_links, 7);
        // The links ended up where the trace says the nodes are.
        let finals = trace.final_positions();
        let moved = e
            .live_slots()
            .into_iter()
            .map(|s| *e.link(s).unwrap())
            .all(|l| {
                let s = l.sender_node.unwrap().index();
                let r = l.receiver_node.unwrap().index();
                l.sender == finals[s] && l.receiver == finals[r]
            });
        assert!(moved, "links did not follow their nodes");
    }

    #[test]
    fn handover_traces_reassociate_uplinks_to_the_nearest_relay() {
        let trace = random_waypoint(&WaypointConfig {
            nodes: 9,
            side: 60.0,
            speed: 6.0,
            steps: 20,
            seed: 21,
        });
        let relays = vec![
            Point::new(0.0, 0.0),
            Point::new(60.0, 0.0),
            Point::new(0.0, 60.0),
            Point::new(60.0, 60.0),
        ];
        let engine_trace = EngineTrace::from_handover(&trace, &relays, 0.0);
        let (_, handovers) = wagg_instances::mobility::handover_events(&trace, &relays, 0.0);
        assert!(
            !handovers.is_empty(),
            "a 20-step trace across the square must hand over"
        );
        assert_eq!(
            engine_trace.events.len(),
            9 + trace.moves.len() + 2 * handovers.len()
        );
        let mut e = engine();
        let outcome = run_trace(&mut e, &engine_trace).unwrap();
        assert_eq!(outcome.final_links, 9); // one uplink per mobile node
                                            // Every uplink ends at its node's final position, pointing at that
                                            // node's margin-0 nearest relay.
        let finals = trace.final_positions();
        for slot in e.live_slots() {
            let link = *e.link(slot).unwrap();
            let node = link.sender_node.unwrap().index();
            assert!(node < 9, "uplink sender must be a mobile node");
            assert_eq!(link.sender, finals[node]);
            let relay = link.receiver_node.unwrap().index() - 9;
            let best = wagg_instances::mobility::nearest_relay(finals[node], &relays);
            let d_assoc = finals[node].distance(relays[relay]);
            let d_best = finals[node].distance(relays[best]);
            assert!(
                d_assoc <= d_best + 1e-9,
                "node {node} associated to relay {relay}, nearest is {best}"
            );
        }
        // Batched replay agrees event for event.
        let mut batched = engine();
        run_trace_batched(&mut batched, &engine_trace, 9).unwrap();
        assert_eq!(e.snapshot(), batched.snapshot());
    }

    #[test]
    fn batched_replay_matches_per_event_replay() {
        let trace = churn_trace(60, 50, 9);
        for batch in [1usize, 3, 16, 200] {
            let mut per_event = engine();
            let a = run_trace(&mut per_event, &trace).unwrap();
            let mut batched = engine();
            let b = run_trace_batched(&mut batched, &trace, batch).unwrap();
            assert_eq!(a, b, "outcome differs at batch size {batch}");
            assert_eq!(
                per_event.snapshot(),
                batched.snapshot(),
                "state differs at batch size {batch}"
            );
        }
    }

    #[test]
    fn batched_replay_handles_mobility_steps() {
        let trace = random_waypoint(&WaypointConfig {
            nodes: 10,
            side: 40.0,
            speed: 3.0,
            steps: 6,
            seed: 4,
        });
        let engine_trace = EngineTrace::from_mobility(&trace);
        let mut per_event = engine();
        run_trace(&mut per_event, &engine_trace).unwrap();
        let mut batched = engine();
        // One batch per mobility step.
        run_trace_batched(&mut batched, &engine_trace, trace.initial.len()).unwrap();
        assert_eq!(per_event.snapshot(), batched.snapshot());
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let mut e = engine();
        let trace = EngineTrace {
            name: "bad".into(),
            events: vec![EngineEvent::Remove { key: 5 }],
        };
        assert_eq!(
            run_trace(&mut e, &trace),
            Err(EngineError::UnknownTraceKey { key: 5 })
        );
    }
}
