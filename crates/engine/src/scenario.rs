//! Engine event traces: churn and mobility workloads, replayable event by
//! event.
//!
//! A trace is a flat, serialisable list of [`EngineEvent`]s referring to
//! links by caller-chosen **keys** (slots are an engine-internal detail the
//! generator cannot know in advance); [`run_trace`] replays a trace against
//! an [`InterferenceEngine`], maintaining the key → slot binding. Two
//! generators are provided:
//!
//! * [`churn_trace`] — random link departures and arrivals at a steady
//!   population, the dynamic-network workload of `wagg-dynamic`,
//! * [`EngineTrace::from_mobility`] — adapts a
//!   [`wagg_instances::mobility`] random-waypoint trace: nodes are chained
//!   (`node i` transmits to `node i − 1`) and every waypoint step becomes a
//!   [`EngineEvent::MoveNode`], so each event re-seats at most two links.

use crate::engine::InterferenceEngine;
use crate::error::EngineError;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wagg_geometry::rng::seeded_rng;
use wagg_geometry::Point;
use wagg_instances::mobility::MobilityTrace;
use wagg_sinr::NodeId;

/// One replayable engine event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EngineEvent {
    /// A link arrives under a fresh trace key.
    Insert {
        /// Caller-chosen key later events refer to.
        key: u64,
        /// Sender position.
        sender: Point,
        /// Receiver position.
        receiver: Point,
        /// Pointset node of the sender, if the link should follow
        /// [`EngineEvent::MoveNode`] events.
        sender_node: Option<usize>,
        /// Pointset node of the receiver, if any.
        receiver_node: Option<usize>,
    },
    /// The link inserted under `key` departs.
    Remove {
        /// The departing link's trace key.
        key: u64,
    },
    /// A pointset node moves; every live link annotated with it follows.
    MoveNode {
        /// The moving node.
        node: usize,
        /// Its new position.
        to: Point,
    },
}

/// A named sequence of engine events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineTrace {
    /// Trace name (reported by benches and experiments).
    pub name: String,
    /// The events, in application order.
    pub events: Vec<EngineEvent>,
}

impl EngineTrace {
    /// Adapts a random-waypoint mobility trace: nodes are chained (`i → i−1`
    /// for `i ≥ 1`) with their initial positions, then every waypoint move
    /// becomes a [`EngineEvent::MoveNode`]. Each move touches at most two
    /// links (the node's uplink and its child's), which is exactly the
    /// "affected neighbourhood" workload the engine is built for.
    pub fn from_mobility(trace: &MobilityTrace) -> Self {
        let mut events = Vec::with_capacity(trace.initial.len() + trace.moves.len());
        for (i, w) in trace.initial.windows(2).enumerate() {
            events.push(EngineEvent::Insert {
                key: (i + 1) as u64,
                sender: w[1],
                receiver: w[0],
                sender_node: Some(i + 1),
                receiver_node: Some(i),
            });
        }
        events.extend(trace.moves.iter().map(|m| EngineEvent::MoveNode {
            node: m.node,
            to: m.to,
        }));
        EngineTrace {
            name: format!("mobility-n{}-s{}", trace.initial.len(), trace.config.steps),
            events,
        }
    }
}

/// A steady-state churn trace: `n` initial unit-ish links uniformly placed in
/// a square scaled to constant density, followed by `events` alternating
/// departures of a random live link and arrivals of a fresh one (so the
/// population stays around `n`). Deterministic in `seed`.
pub fn churn_trace(n: usize, events: usize, seed: u64) -> EngineTrace {
    let side = (n.max(1) as f64).sqrt() * 4.0;
    let mut rng = seeded_rng(seed);
    let mut next_key = 0u64;
    let mut live: Vec<u64> = Vec::with_capacity(n);
    let mut out = Vec::with_capacity(n + events);
    let mut insert = |rng: &mut wagg_geometry::rng::DeterministicRng,
                      live: &mut Vec<u64>,
                      out: &mut Vec<EngineEvent>| {
        let key = next_key;
        next_key += 1;
        let x = rng.gen_range(0.0..side);
        let y = rng.gen_range(0.0..side);
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        out.push(EngineEvent::Insert {
            key,
            sender: Point::new(x, y),
            receiver: Point::new(x + angle.cos(), y + angle.sin()),
            sender_node: None,
            receiver_node: None,
        });
        live.push(key);
    };
    for _ in 0..n {
        insert(&mut rng, &mut live, &mut out);
    }
    for round in 0..events {
        let depart = round % 2 == 0 && !live.is_empty();
        if depart {
            let victim = rng.gen_range(0..live.len());
            out.push(EngineEvent::Remove {
                key: live.swap_remove(victim),
            });
        } else {
            insert(&mut rng, &mut live, &mut out);
        }
    }
    EngineTrace {
        name: format!("churn-n{n}-e{events}"),
        events: out,
    }
}

/// What replaying a trace did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceOutcome {
    /// Number of events applied.
    pub applied: usize,
    /// Live links after the final event.
    pub final_links: usize,
    /// Conflict edges after the final event.
    pub final_edges: usize,
}

/// Replays a trace against an engine, binding trace keys to engine slots.
///
/// # Errors
///
/// [`EngineError::UnknownTraceKey`] when a `Remove` names a key that is not
/// live (including double-removes); engine errors are propagated.
pub fn run_trace(
    engine: &mut InterferenceEngine,
    trace: &EngineTrace,
) -> Result<TraceOutcome, EngineError> {
    let mut slot_of: HashMap<u64, usize> = HashMap::new();
    for event in &trace.events {
        match *event {
            EngineEvent::Insert {
                key,
                sender,
                receiver,
                sender_node,
                receiver_node,
            } => {
                let slot = match (sender_node, receiver_node) {
                    (Some(s), Some(r)) => {
                        engine.insert_link_with_nodes(sender, receiver, NodeId(s), NodeId(r))
                    }
                    _ => engine.insert_link(sender, receiver),
                };
                slot_of.insert(key, slot);
            }
            EngineEvent::Remove { key } => {
                let slot = slot_of
                    .remove(&key)
                    .ok_or(EngineError::UnknownTraceKey { key })?;
                engine.remove_link(slot)?;
            }
            EngineEvent::MoveNode { node, to } => {
                engine.move_node(node, to);
            }
        }
    }
    Ok(TraceOutcome {
        applied: trace.events.len(),
        final_links: engine.len(),
        final_edges: engine.edge_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use wagg_conflict::ConflictRelation;
    use wagg_instances::mobility::{random_waypoint, WaypointConfig};
    use wagg_sinr::{PowerAssignment, SinrModel};

    fn engine() -> InterferenceEngine {
        InterferenceEngine::new(EngineConfig::new(
            ConflictRelation::unit_constant(),
            SinrModel::default(),
            PowerAssignment::mean(),
        ))
    }

    #[test]
    fn churn_traces_are_deterministic_and_keep_population_steady() {
        let a = churn_trace(40, 30, 3);
        let b = churn_trace(40, 30, 3);
        assert_eq!(a, b);
        let mut e = engine();
        let outcome = run_trace(&mut e, &a).unwrap();
        assert_eq!(outcome.applied, 70);
        assert_eq!(outcome.final_links, 40); // 15 removes, 15 inserts
        assert_eq!(e.len(), 40);
    }

    #[test]
    fn mobility_traces_drive_move_events() {
        let trace = random_waypoint(&WaypointConfig {
            nodes: 8,
            side: 30.0,
            speed: 2.0,
            steps: 5,
            seed: 11,
        });
        let engine_trace = EngineTrace::from_mobility(&trace);
        assert_eq!(engine_trace.events.len(), 7 + 40);
        let mut e = engine();
        let outcome = run_trace(&mut e, &engine_trace).unwrap();
        assert_eq!(outcome.final_links, 7);
        // The links ended up where the trace says the nodes are.
        let finals = trace.final_positions();
        let moved = e
            .live_slots()
            .into_iter()
            .map(|s| *e.link(s).unwrap())
            .all(|l| {
                let s = l.sender_node.unwrap().index();
                let r = l.receiver_node.unwrap().index();
                l.sender == finals[s] && l.receiver == finals[r]
            });
        assert!(moved, "links did not follow their nodes");
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let mut e = engine();
        let trace = EngineTrace {
            name: "bad".into(),
            events: vec![EngineEvent::Remove { key: 5 }],
        };
        assert_eq!(
            run_trace(&mut e, &trace),
            Err(EngineError::UnknownTraceKey { key: 5 })
        );
    }
}
