//! Conflict adjacency as a CSR base plus a delta overlay.
//!
//! The engine cannot afford to rewrite a flat CSR adjacency on every churn
//! event, and a `Vec<Vec<usize>>` of rows would give up the cache behaviour
//! the PR-1 kernel bought. [`DeltaAdjacency`] keeps both: an immutable CSR
//! **base** snapshot (identical layout to `wagg_conflict::ConflictGraph`) and
//! two small per-vertex overlays — edges **added** since the snapshot and
//! base edges **removed** since. Queries consult overlay-then-base; once the
//! overlay grows past a fixed fraction of the edge set, [`DeltaAdjacency::
//! maybe_compact`] folds it into a fresh base in one `O(V + E)` pass, so the
//! amortised cost per edge mutation stays constant.

/// Inserts `x` into a sorted vector, returning whether it was absent.
fn sorted_insert(v: &mut Vec<usize>, x: usize) -> bool {
    match v.binary_search(&x) {
        Err(pos) => {
            v.insert(pos, x);
            true
        }
        Ok(_) => false,
    }
}

/// Removes `x` from a sorted vector, returning whether it was present.
fn sorted_remove(v: &mut Vec<usize>, x: usize) -> bool {
    match v.binary_search(&x) {
        Ok(pos) => {
            v.remove(pos);
            true
        }
        Err(_) => false,
    }
}

/// Overlay half-edge count that always justifies keeping the overlay (no
/// compaction below it — a compaction pass costs `O(V + E)`).
const COMPACT_MIN_DELTA: usize = 256;

/// Mutable adjacency: CSR base + added/removed overlay sets.
#[derive(Debug, Clone, Default)]
pub(crate) struct DeltaAdjacency {
    /// CSR row boundaries of the base snapshot (covers `base_offsets.len() - 1`
    /// slots; slots beyond it have empty base rows).
    base_offsets: Vec<usize>,
    /// Concatenated sorted base rows.
    base_neighbors: Vec<usize>,
    /// Per-slot sorted edges added since the base snapshot (disjoint from base).
    added: Vec<Vec<usize>>,
    /// Per-slot sorted base edges removed since the snapshot (subset of base).
    removed: Vec<Vec<usize>>,
    /// Half-edges currently held in the overlays (added + removed).
    delta_half_edges: usize,
    /// Effective half-edge count (base − removed + added).
    half_edges: usize,
    /// How many times the overlay was folded into the base.
    compactions: usize,
}

impl DeltaAdjacency {
    /// An empty adjacency over zero slots.
    pub fn new() -> Self {
        DeltaAdjacency {
            base_offsets: vec![0],
            ..Default::default()
        }
    }

    /// Adopts a bulk-built CSR as the base snapshot (the fast path for
    /// seeding the engine from `ConflictGraph::build`). Overlays start empty.
    pub fn from_csr(offsets: &[usize], neighbors: &[usize]) -> Self {
        let slots = offsets.len().saturating_sub(1);
        DeltaAdjacency {
            base_offsets: offsets.to_vec(),
            base_neighbors: neighbors.to_vec(),
            added: vec![Vec::new(); slots],
            removed: vec![Vec::new(); slots],
            delta_half_edges: 0,
            half_edges: neighbors.len(),
            compactions: 0,
        }
    }

    /// Number of slots the overlay covers.
    pub fn capacity(&self) -> usize {
        self.added.len()
    }

    /// Grows the overlay to cover at least `slots` slots.
    pub fn ensure_capacity(&mut self, slots: usize) {
        if slots > self.added.len() {
            self.added.resize_with(slots, Vec::new);
            self.removed.resize_with(slots, Vec::new);
        }
    }

    /// Number of (undirected) edges currently represented.
    pub fn edge_count(&self) -> usize {
        self.half_edges / 2
    }

    /// Half-edges sitting in the overlays (compaction pressure).
    pub fn delta_half_edges(&self) -> usize {
        self.delta_half_edges
    }

    /// How many times the overlay has been folded into the base.
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    fn base_row(&self, slot: usize) -> &[usize] {
        if slot + 1 < self.base_offsets.len() {
            &self.base_neighbors[self.base_offsets[slot]..self.base_offsets[slot + 1]]
        } else {
            &[]
        }
    }

    /// Adds the undirected edge `{u, v}`, which must currently be absent.
    pub fn link(&mut self, u: usize, v: usize) {
        debug_assert!(u != v && !self.are_adjacent(u, v));
        if sorted_remove(&mut self.removed[u], v) {
            // The edge exists in the base and was tombstoned: resurrect it.
            let also = sorted_remove(&mut self.removed[v], u);
            debug_assert!(also, "removal overlay out of sync");
            self.delta_half_edges -= 2;
        } else {
            sorted_insert(&mut self.added[u], v);
            sorted_insert(&mut self.added[v], u);
            self.delta_half_edges += 2;
        }
        self.half_edges += 2;
    }

    /// Removes the undirected edge `{u, v}`, which must currently be present.
    pub fn unlink(&mut self, u: usize, v: usize) {
        debug_assert!(self.are_adjacent(u, v));
        if sorted_remove(&mut self.added[u], v) {
            let also = sorted_remove(&mut self.added[v], u);
            debug_assert!(also, "addition overlay out of sync");
            self.delta_half_edges -= 2;
        } else {
            // A base edge: tombstone it on both sides.
            sorted_insert(&mut self.removed[u], v);
            sorted_insert(&mut self.removed[v], u);
            self.delta_half_edges += 2;
        }
        self.half_edges -= 2;
    }

    /// Whether `{u, v}` is an edge (overlay first, then the base).
    pub fn are_adjacent(&self, u: usize, v: usize) -> bool {
        if u >= self.capacity() || v >= self.capacity() {
            return false;
        }
        if self.added[u].binary_search(&v).is_ok() {
            return true;
        }
        if self.removed[u].binary_search(&v).is_ok() {
            return false;
        }
        self.base_row(u).binary_search(&v).is_ok()
    }

    /// The effective neighbour row of `slot`, sorted ascending:
    /// `(base \ removed) ∪ added`.
    pub fn row(&self, slot: usize) -> Vec<usize> {
        if slot >= self.capacity() {
            return Vec::new();
        }
        let base = self.base_row(slot);
        let rem = &self.removed[slot];
        let add = &self.added[slot];
        let mut out = Vec::with_capacity(base.len().saturating_sub(rem.len()) + add.len());
        // Merge two disjoint sorted sequences: base-minus-removed and added.
        let mut surviving = base.iter().filter(|v| rem.binary_search(v).is_err());
        let mut a_iter = add.iter();
        let (mut s, mut a) = (surviving.next(), a_iter.next());
        loop {
            match (s, a) {
                (Some(&x), Some(&y)) => {
                    if x < y {
                        out.push(x);
                        s = surviving.next();
                    } else {
                        out.push(y);
                        a = a_iter.next();
                    }
                }
                (Some(&x), None) => {
                    out.push(x);
                    s = surviving.next();
                }
                (None, Some(&y)) => {
                    out.push(y);
                    a = a_iter.next();
                }
                (None, None) => break,
            }
        }
        out
    }

    /// Removes every edge incident to `slot` (used when a link leaves the
    /// universe). Afterwards the slot's effective row is empty.
    pub fn isolate(&mut self, slot: usize) {
        for w in self.row(slot) {
            self.unlink(slot, w);
        }
    }

    /// Folds the overlay into a fresh CSR base if it has grown past a quarter
    /// of the edge set; returns whether a compaction ran.
    pub fn maybe_compact(&mut self, slack: f64) {
        let threshold =
            COMPACT_MIN_DELTA.max((slack * self.half_edges.max(1) as f64).ceil() as usize);
        if self.delta_half_edges > threshold {
            self.compact();
        }
    }

    /// Unconditionally folds the overlay into the base.
    pub fn compact(&mut self) {
        let cap = self.capacity();
        let mut offsets = Vec::with_capacity(cap + 1);
        offsets.push(0);
        let mut neighbors = Vec::with_capacity(self.half_edges);
        for slot in 0..cap {
            neighbors.extend(self.row(slot));
            offsets.push(neighbors.len());
        }
        debug_assert_eq!(neighbors.len(), self.half_edges);
        self.base_offsets = offsets;
        self.base_neighbors = neighbors;
        for row in &mut self.added {
            row.clear();
        }
        for row in &mut self.removed {
            row.clear();
        }
        self.delta_half_edges = 0;
        self.compactions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_rows(adj: &DeltaAdjacency) -> Vec<Vec<usize>> {
        (0..adj.capacity()).map(|s| adj.row(s)).collect()
    }

    #[test]
    fn empty_overlay_has_no_edges() {
        let mut adj = DeltaAdjacency::new();
        adj.ensure_capacity(4);
        assert_eq!(adj.edge_count(), 0);
        assert!(!adj.are_adjacent(0, 1));
        assert!(adj.row(2).is_empty());
    }

    #[test]
    fn link_unlink_roundtrip() {
        let mut adj = DeltaAdjacency::new();
        adj.ensure_capacity(5);
        adj.link(0, 3);
        adj.link(0, 1);
        adj.link(3, 4);
        assert_eq!(adj.row(0), vec![1, 3]);
        assert_eq!(adj.row(3), vec![0, 4]);
        assert_eq!(adj.edge_count(), 3);
        adj.unlink(0, 3);
        assert_eq!(adj.row(0), vec![1]);
        assert!(!adj.are_adjacent(3, 0));
        assert_eq!(adj.edge_count(), 2);
    }

    #[test]
    fn base_edges_tombstone_and_resurrect() {
        // Base: 0-1, 1-2.
        let adj_base = {
            let mut a = DeltaAdjacency::new();
            a.ensure_capacity(3);
            a.link(0, 1);
            a.link(1, 2);
            a.compact();
            a
        };
        let mut adj = adj_base.clone();
        adj.unlink(1, 0);
        assert!(!adj.are_adjacent(0, 1));
        assert_eq!(adj.row(1), vec![2]);
        assert_eq!(adj.delta_half_edges(), 2);
        adj.link(0, 1); // resurrect: cancels the tombstone instead of growing `added`
        assert_eq!(adj.delta_half_edges(), 0);
        assert_eq!(full_rows(&adj), full_rows(&adj_base));
    }

    #[test]
    fn compaction_preserves_the_graph() {
        let mut adj = DeltaAdjacency::new();
        adj.ensure_capacity(10);
        for u in 0..10usize {
            for v in (u + 1)..10 {
                if (u + v) % 3 != 0 {
                    adj.link(u, v);
                }
            }
        }
        adj.compact();
        let before = full_rows(&adj);
        let edges = adj.edge_count();
        // Mutate through the overlay, then compact and compare against a
        // freshly mutated copy.
        let mut overlaid = adj.clone();
        overlaid.unlink(0, 1);
        overlaid.link(0, 3);
        overlaid.isolate(7);
        let rows_overlay = full_rows(&overlaid);
        overlaid.compact();
        assert_eq!(full_rows(&overlaid), rows_overlay);
        assert_eq!(overlaid.delta_half_edges(), 0);
        assert!(overlaid.compactions() >= 2);
        // The original is untouched.
        assert_eq!(full_rows(&adj), before);
        assert_eq!(adj.edge_count(), edges);
    }

    #[test]
    fn isolate_clears_a_vertex() {
        let mut adj = DeltaAdjacency::new();
        adj.ensure_capacity(4);
        adj.link(2, 0);
        adj.link(2, 1);
        adj.compact();
        adj.link(2, 3); // one base edge pair plus one overlay edge
        adj.isolate(2);
        assert!(adj.row(2).is_empty());
        for v in [0usize, 1, 3] {
            assert!(!adj.are_adjacent(v, 2));
        }
        assert_eq!(adj.edge_count(), 0);
    }

    #[test]
    fn maybe_compact_respects_threshold() {
        let mut adj = DeltaAdjacency::new();
        adj.ensure_capacity(600);
        for i in 0..500usize {
            adj.link(i, i + 100);
        }
        assert_eq!(adj.delta_half_edges(), 1000);
        adj.maybe_compact(0.25);
        assert_eq!(adj.delta_half_edges(), 0);
        assert_eq!(adj.compactions(), 1);
        // A small overlay stays put.
        adj.unlink(0, 100);
        adj.maybe_compact(0.25);
        assert_eq!(adj.compactions(), 1);
        assert_eq!(adj.delta_half_edges(), 2);
    }
}
