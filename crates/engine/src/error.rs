//! Errors of the incremental engine.

use std::error::Error;
use std::fmt;

/// Errors returned by [`crate::InterferenceEngine`] operations and the trace
/// runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The slot index exceeds the engine's capacity.
    UnknownSlot {
        /// The offending slot.
        slot: usize,
    },
    /// The slot exists but holds no live link.
    EmptySlot {
        /// The offending slot.
        slot: usize,
    },
    /// A trace event referenced a key that is not currently live.
    UnknownTraceKey {
        /// The offending trace key.
        key: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownSlot { slot } => write!(f, "slot {slot} is out of range"),
            EngineError::EmptySlot { slot } => write!(f, "slot {slot} holds no live link"),
            EngineError::UnknownTraceKey { key } => {
                write!(f, "trace key {key} does not name a live link")
            }
        }
    }
}

impl Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(EngineError::UnknownSlot { slot: 9 }
            .to_string()
            .contains('9'));
        assert!(EngineError::EmptySlot { slot: 3 }
            .to_string()
            .contains("no live"));
        assert!(EngineError::UnknownTraceKey { key: 7 }
            .to_string()
            .contains("key 7"));
    }
}
