//! The incremental interference engine.

use crate::classes::LengthClasses;
use crate::error::EngineError;
use crate::overlay::DeltaAdjacency;
use std::collections::HashMap;
use wagg_conflict::{ConflictGraph, ConflictRelation};
use wagg_geometry::{BoundingBox, Point};
use wagg_obs::{Counter, Recorder};
use wagg_schedule::{schedule_prebuilt_traced, ScheduleReport, SchedulerConfig};
use wagg_sinr::pathloss::relative_interference_sum;
use wagg_sinr::{Link, LinkId, NodeId, PathLossCache, PowerAssignment, SinrModel};

/// Configuration of an [`InterferenceEngine`].
///
/// The scheduler configuration is the single source of truth for the SINR
/// model and power mode — the engine no longer re-declares the model next to
/// it. `relation` and `power` are *derived* from the scheduler by
/// [`EngineConfig::for_scheduler`]; [`EngineConfig::new`] keeps them
/// overridable for engines that maintain a custom conflict relation (those
/// engines answer adjacency queries but cannot [`InterferenceEngine::schedule`],
/// which requires the relation the scheduler's power mode implies).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The scheduler configuration the engine maintains state for (SINR
    /// model, power mode, slot verification) — what
    /// [`InterferenceEngine::schedule`] schedules under.
    pub scheduler: SchedulerConfig,
    /// The conflict relation the maintained adjacency realises (derived from
    /// `scheduler` by [`EngineConfig::for_scheduler`]).
    pub relation: ConflictRelation,
    /// The power assignment the maintained path-loss state is computed under.
    pub power: PowerAssignment,
    /// Class-grid rebuild slack: a class rebuilds its grid once the churn
    /// since the last rebuild (pending inserts + tombstones) exceeds this
    /// fraction of its live membership. Smaller values mean snappier queries
    /// and more frequent rebuilds.
    pub grid_slack: f64,
    /// Adjacency compaction slack: the delta overlay folds into a fresh CSR
    /// base once it exceeds this fraction of the edge set.
    pub compact_slack: f64,
}

impl EngineConfig {
    /// A configuration with an explicit conflict relation and power
    /// assignment (for engines maintaining custom relations) and default
    /// maintenance thresholds. The embedded scheduler configuration takes
    /// the given model with its default mode; use
    /// [`EngineConfig::for_scheduler`] for an engine that schedules.
    pub fn new(relation: ConflictRelation, model: SinrModel, power: PowerAssignment) -> Self {
        EngineConfig {
            scheduler: SchedulerConfig::default().with_model(model),
            relation,
            power,
            grid_slack: 0.25,
            compact_slack: 0.25,
        }
    }

    /// The engine configuration matching a scheduler configuration: the
    /// conflict relation implied by its power mode and, for fixed-assignment
    /// modes, that assignment (global power control tracks the mean scheme —
    /// its slot probes never consult the cache).
    pub fn for_scheduler(config: SchedulerConfig) -> Self {
        let relation = config.mode.conflict_relation(config.model.alpha());
        let power = config
            .mode
            .assignment()
            .unwrap_or_else(PowerAssignment::mean);
        EngineConfig {
            scheduler: config,
            relation,
            power,
            grid_slack: 0.25,
            compact_slack: 0.25,
        }
    }

    /// The SINR model state is maintained under (the scheduler's model).
    pub fn model(&self) -> &SinrModel {
        &self.scheduler.model
    }

    /// Overrides both maintenance slacks (useful to force threshold
    /// crossings in tests).
    pub fn with_slacks(mut self, grid_slack: f64, compact_slack: f64) -> Self {
        assert!(
            grid_slack > 0.0 && compact_slack > 0.0,
            "slacks must be positive"
        );
        self.grid_slack = grid_slack;
        self.compact_slack = compact_slack;
        self
    }
}

/// Maintenance counters, exposed for experiments and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Links inserted (including the reinsert half of moves).
    pub inserts: usize,
    /// Links removed (including the remove half of moves).
    pub removals: usize,
    /// `move_node` events applied.
    pub moves: usize,
    /// Class-grid rebuilds triggered by occupancy thresholds.
    pub grid_rebuilds: usize,
    /// Delta-overlay compactions of the conflict adjacency.
    pub compactions: usize,
    /// Populated length classes right now.
    pub length_classes: usize,
    /// Half-edges currently sitting in the adjacency overlay.
    pub overlay_half_edges: usize,
}

/// One slot-level operation of a batch (see
/// [`InterferenceEngine::apply_batch`]). The variants mirror the per-event
/// API: `Insert` reports its assigned slot through the batch result,
/// `Remove` names a live slot, `MoveNode` re-seats every link annotated with
/// the node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchOp {
    /// Insert a link (node annotations make it follow `MoveNode` events).
    Insert {
        /// Sender position.
        sender: Point,
        /// Receiver position.
        receiver: Point,
        /// Pointset node of the sender, if tracked.
        sender_node: Option<NodeId>,
        /// Pointset node of the receiver, if tracked.
        receiver_node: Option<NodeId>,
    },
    /// Remove the live link in `slot`.
    Remove {
        /// The slot to clear.
        slot: usize,
    },
    /// Move a pointset node; every live link touching it follows.
    MoveNode {
        /// The moving node.
        node: usize,
        /// Its new position.
        to: Point,
    },
}

/// A mutable link universe whose interference state — per-length-class
/// spatial grids, conflict adjacency and per-link path-loss values — is
/// maintained **incrementally** under insertions, removals and node moves,
/// instead of being rebuilt from scratch per event.
///
/// Links live in **slots**: a slot index is assigned at insertion, stays
/// stable for the link's lifetime, is the link's `LinkId`, and is recycled
/// after removal. The maintained adjacency is equivalent, edge for edge, to
/// `ConflictGraph::build` over the live links (the property tests assert
/// this after arbitrary event sequences), and the per-link path-loss state
/// matches a fresh `PathLossCache` (see [`InterferenceEngine::schedule`] for
/// how it is shared with the scheduler's slot probes).
///
/// # Examples
///
/// ```
/// use wagg_engine::{EngineConfig, InterferenceEngine};
/// use wagg_conflict::ConflictRelation;
/// use wagg_geometry::Point;
/// use wagg_sinr::{PowerAssignment, SinrModel};
///
/// let config = EngineConfig::new(
///     ConflictRelation::unit_constant(),
///     SinrModel::default(),
///     PowerAssignment::mean(),
/// );
/// let mut engine = InterferenceEngine::new(config);
/// let a = engine.insert_link(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
/// let b = engine.insert_link(Point::new(1.5, 0.0), Point::new(2.5, 0.0));
/// let c = engine.insert_link(Point::new(50.0, 0.0), Point::new(51.0, 0.0));
/// assert!(engine.are_adjacent(a, b));
/// assert!(!engine.are_adjacent(a, c));
/// engine.remove_link(b).unwrap();
/// assert_eq!(engine.len(), 2);
/// assert!(engine.subset_feasible(&[a, c]));
/// ```
#[derive(Debug, Clone)]
pub struct InterferenceEngine {
    config: EngineConfig,
    /// Slot table: `links[s]` is the live link in slot `s`, if any.
    links: Vec<Option<Link>>,
    /// Segment bounding boxes, parallel to `links` (valid while live).
    bboxes: Vec<BoundingBox>,
    /// Recycled slots.
    free: Vec<usize>,
    /// Number of live links.
    live: usize,
    /// Per-length-class spatial indexes over positive-length live links.
    classes: LengthClasses,
    /// Live zero-length links (they conflict with everything), sorted.
    degenerate: Vec<usize>,
    /// Conflict adjacency: CSR base + delta overlay.
    adj: DeltaAdjacency,
    /// Per-slot power `P(i)` under `config.power` (the `PathLossCache` state).
    powers: Vec<Option<f64>>,
    /// Per-slot target weight `l_i^α / P(i)` (the `PathLossCache` state).
    weights: Vec<Option<f64>>,
    /// Node index → slots of live links touching that node (for `move_node`).
    node_links: HashMap<usize, Vec<usize>>,
    stats: EngineStats,
    /// Instrumentation sink (disabled by default — see `wagg-obs`).
    recorder: Recorder,
    /// Pre-resolved handle for `engine.rows_recomputed` (one relaxed atomic
    /// add per conflict-row computation, no name lookup on the hot path).
    rows_counter: Counter,
}

impl InterferenceEngine {
    /// An empty engine.
    pub fn new(config: EngineConfig) -> Self {
        InterferenceEngine {
            config,
            links: Vec::new(),
            bboxes: Vec::new(),
            free: Vec::new(),
            live: 0,
            classes: LengthClasses::new(),
            degenerate: Vec::new(),
            adj: DeltaAdjacency::new(),
            powers: Vec::new(),
            weights: Vec::new(),
            node_links: HashMap::new(),
            stats: EngineStats::default(),
            recorder: Recorder::disabled(),
            rows_counter: Counter::default(),
        }
    }

    /// Routes the engine's instrumentation to `rec`: conflict-row
    /// recomputations tick `engine.rows_recomputed`, and every
    /// [`InterferenceEngine::schedule`] records its snapshot/coloring spans
    /// and syncs the `engine.grid_rebuilds` / `engine.compactions`
    /// maintenance watermarks. A disabled recorder (the default) keeps all
    /// of it no-op.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.rows_counter = rec.counter("engine.rows_recomputed");
        self.recorder = rec;
    }

    /// The engine's instrumentation sink (disabled unless
    /// [`InterferenceEngine::set_recorder`] was called).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Bulk-seeds an engine from a link set, assigning slots `0..n` in input
    /// order, and returns it. Uses the grid-accelerated
    /// [`ConflictGraph::build`] once for the whole set (much faster than `n`
    /// single insertions) and adopts its CSR arrays as the adjacency base.
    pub fn with_links(config: EngineConfig, links: &[Link]) -> Self {
        let relabeled: Vec<Link> = links
            .iter()
            .enumerate()
            .map(|(slot, link)| {
                let mut l = *link;
                l.id = LinkId(slot);
                l
            })
            .collect();
        let graph = ConflictGraph::build(&relabeled, config.relation);
        let (offsets, neighbors) = graph.csr();
        let cache = PathLossCache::new(config.model(), &relabeled, &config.power);
        let (powers, weights) = cache.into_parts();

        let mut engine = InterferenceEngine::new(config);
        engine.adj = DeltaAdjacency::from_csr(offsets, neighbors);
        engine.powers = powers;
        engine.weights = weights;
        engine.bboxes = relabeled
            .iter()
            .map(|l| BoundingBox::of_segment(l.sender, l.receiver))
            .collect();
        engine.live = relabeled.len();
        engine.links = relabeled.into_iter().map(Some).collect();
        for slot in 0..engine.links.len() {
            let link = engine.links[slot].as_ref().expect("just inserted");
            if link.length() <= 0.0 {
                engine.degenerate.push(slot);
            }
            Self::register_node_links(&mut engine.node_links, link, slot);
        }
        // Populate the class grids from the live slots (one rebuild per class
        // at most, via the shared insert path).
        for slot in 0..engine.links.len() {
            if engine.links[slot].as_ref().expect("live").length() > 0.0 {
                engine.classes.insert(
                    slot,
                    &engine.links,
                    &engine.bboxes,
                    engine.config.grid_slack,
                );
            }
        }
        engine
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of live links.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no links are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slot capacity (live + recyclable).
    pub fn capacity(&self) -> usize {
        self.links.len()
    }

    /// Number of (undirected) conflict edges among the live links.
    pub fn edge_count(&self) -> usize {
        self.adj.edge_count()
    }

    /// Maintenance counters.
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.stats;
        stats.grid_rebuilds = self.classes.rebuilds();
        stats.compactions = self.adj.compactions();
        stats.length_classes = self.classes.class_count();
        stats.overlay_half_edges = self.adj.delta_half_edges();
        stats
    }

    /// The live link in `slot`, if any.
    pub fn link(&self, slot: usize) -> Option<&Link> {
        self.links.get(slot).and_then(Option::as_ref)
    }

    /// Sorted slots of the live links.
    pub fn live_slots(&self) -> Vec<usize> {
        (0..self.links.len())
            .filter(|&s| self.links[s].is_some())
            .collect()
    }

    /// The current conflict neighbours of a live slot, sorted ascending.
    pub fn neighbors(&self, slot: usize) -> Vec<usize> {
        self.adj.row(slot)
    }

    /// Whether two live slots conflict.
    pub fn are_adjacent(&self, u: usize, v: usize) -> bool {
        self.adj.are_adjacent(u, v)
    }

    /// Inserts a link between two positions, returning its slot.
    pub fn insert_link(&mut self, sender: Point, receiver: Point) -> usize {
        let slot = self.alloc_slot();
        let link = Link::new(slot, sender, receiver);
        self.attach(slot, link);
        slot
    }

    /// Inserts a link that records the pointset nodes it connects (required
    /// for the link to follow [`InterferenceEngine::move_node`] events).
    pub fn insert_link_with_nodes(
        &mut self,
        sender: Point,
        receiver: Point,
        sender_node: NodeId,
        receiver_node: NodeId,
    ) -> usize {
        let slot = self.alloc_slot();
        let link = Link::with_nodes(slot, sender, receiver, sender_node, receiver_node);
        self.attach(slot, link);
        let link = self.links[slot].expect("just attached");
        Self::register_node_links(&mut self.node_links, &link, slot);
        slot
    }

    /// Removes the link in `slot`, freeing the slot for reuse, and returns it.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownSlot`] / [`EngineError::EmptySlot`] when the slot
    /// does not hold a live link.
    pub fn remove_link(&mut self, slot: usize) -> Result<Link, EngineError> {
        if slot >= self.links.len() {
            return Err(EngineError::UnknownSlot { slot });
        }
        if self.links[slot].is_none() {
            return Err(EngineError::EmptySlot { slot });
        }
        let link = self.detach(slot);
        Self::unregister_node_links(&mut self.node_links, &link, slot);
        self.free.push(slot);
        Ok(link)
    }

    /// Moves a pointset node to a new position: every live link recorded as
    /// touching `node` (via `sender_node`/`receiver_node`) is re-seated —
    /// removed and reinserted **in its own slot** with the updated endpoint —
    /// so only the affected neighbourhoods are recomputed. Returns the number
    /// of links touched (0 for nodes no live link references).
    pub fn move_node(&mut self, node: usize, to: Point) -> usize {
        self.reseat_node_links(node, to, false).len()
    }

    /// The shared re-seat body of [`InterferenceEngine::move_node`] and the
    /// batch `MoveNode` arm: every live link touching `node` is detached and
    /// re-attached in its own slot with the updated endpoint. With
    /// `defer_rows` the conflict rows are left for the caller to finalise
    /// ([`InterferenceEngine::apply_batch`]'s end-of-batch pass); otherwise
    /// each link's row is recomputed immediately, per link, exactly like the
    /// per-event path always has. Returns the touched slots.
    fn reseat_node_links(&mut self, node: usize, to: Point, defer_rows: bool) -> Vec<usize> {
        let slots = match self.node_links.get(&node) {
            Some(slots) => slots.clone(),
            None => return Vec::new(),
        };
        for &slot in &slots {
            let old = self.detach(slot);
            let sender = if old.sender_node == Some(NodeId(node)) {
                to
            } else {
                old.sender
            };
            let receiver = if old.receiver_node == Some(NodeId(node)) {
                to
            } else {
                old.receiver
            };
            let mut link = Link::new(slot, sender, receiver);
            link.sender_node = old.sender_node;
            link.receiver_node = old.receiver_node;
            self.attach_core(slot, link);
            if !defer_rows {
                self.link_conflict_row(slot, false);
            }
        }
        self.stats.moves += 1;
        slots
    }

    /// Applies a whole batch of events, recomputing each affected conflict
    /// row **once** against the batch's final state instead of per event.
    ///
    /// The per-event path pays one row computation per touching event: a
    /// node shared by two links re-seats both links per `move_node`, and a
    /// trace step moving many nearby nodes recomputes overlapping
    /// neighbourhoods over and over. `apply_batch` applies every geometric
    /// mutation first (slot tables, class grids, path-loss state — all
    /// per-event cheap), collects the set of touched slots, and only then
    /// computes the conflict rows of the touched slots that are still live.
    /// The final state is **identical** to applying the same operations one
    /// by one (the property tests assert snapshot equality): rows of
    /// untouched links never change (conflicts are pairwise-geometric), a
    /// detached link's edges are removed eagerly, and a touched link's row
    /// computed against the final state is the row the per-event path
    /// converges to.
    ///
    /// Returns the slots assigned to the batch's `Insert` operations, in
    /// operation order.
    ///
    /// # Errors
    ///
    /// Propagates the first `Remove` error (unknown or empty slot), exactly
    /// where the sequential path would fail: operations before the failing
    /// one are applied (and their rows finalised), the rest are not.
    pub fn apply_batch(&mut self, ops: &[BatchOp]) -> Result<Vec<usize>, EngineError> {
        let mut dirty: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        let mut inserted = Vec::new();
        let mut failure = None;
        for op in ops {
            match *op {
                BatchOp::Insert {
                    sender,
                    receiver,
                    sender_node,
                    receiver_node,
                } => {
                    let slot = self.alloc_slot();
                    let link = match (sender_node, receiver_node) {
                        (Some(s), Some(r)) => Link::with_nodes(slot, sender, receiver, s, r),
                        _ => Link::new(slot, sender, receiver),
                    };
                    self.attach_core(slot, link);
                    if link.sender_node.is_some() || link.receiver_node.is_some() {
                        Self::register_node_links(&mut self.node_links, &link, slot);
                    }
                    dirty.insert(slot);
                    inserted.push(slot);
                }
                BatchOp::Remove { slot } => {
                    // remove_link detaches eagerly (edges drop immediately),
                    // so a dead slot in `dirty` is simply skipped below —
                    // unless a later insert recycles it.
                    if let Err(e) = self.remove_link(slot) {
                        failure = Some(e);
                        break;
                    }
                }
                BatchOp::MoveNode { node, to } => {
                    for slot in self.reseat_node_links(node, to, true) {
                        dirty.insert(slot);
                    }
                }
            }
        }
        // Row finalisation: every touched slot that is still live gets its
        // row computed once, against the final state. Two fresh slots
        // discover their mutual edge from both sides, hence the dedup.
        for slot in dirty {
            if self.links[slot].is_some() {
                self.link_conflict_row(slot, true);
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(inserted),
        }
    }

    /// Allocates a slot (recycling freed ones) and grows the slot tables.
    fn alloc_slot(&mut self) -> usize {
        if let Some(slot) = self.free.pop() {
            return slot;
        }
        let slot = self.links.len();
        self.links.push(None);
        self.bboxes.push(BoundingBox::new(0.0, 0.0, 0.0, 0.0));
        self.powers.push(None);
        self.weights.push(None);
        slot
    }

    /// Wires a link into every maintained structure at `slot`.
    fn attach(&mut self, slot: usize, link: Link) {
        self.attach_core(slot, link);
        self.link_conflict_row(slot, false);
    }

    /// Everything [`InterferenceEngine::attach`] maintains *except* the
    /// conflict adjacency row: geometry tables, class grids, path-loss state.
    /// Callers must follow up with [`InterferenceEngine::link_conflict_row`]
    /// — immediately (the per-event path) or once at the end of a batch
    /// ([`InterferenceEngine::apply_batch`]), after every other mutation of
    /// the batch has landed.
    fn attach_core(&mut self, slot: usize, link: Link) {
        assert!(
            link.sender.x.is_finite()
                && link.sender.y.is_finite()
                && link.receiver.x.is_finite()
                && link.receiver.y.is_finite(),
            "link endpoints must be finite"
        );
        debug_assert!(self.links[slot].is_none(), "attaching over a live slot");
        let bbox = BoundingBox::of_segment(link.sender, link.receiver);

        // Path-loss state: one link's worth of `PathLossCache` values,
        // computed by the cache itself so the formulas can never drift.
        let (p, w) = PathLossCache::new(
            &self.config.scheduler.model,
            std::slice::from_ref(&link),
            &self.config.power,
        )
        .into_parts();
        self.powers[slot] = p[0];
        self.weights[slot] = w[0];

        self.bboxes[slot] = bbox;
        self.links[slot] = Some(link);
        self.live += 1;
        if link.length() > 0.0 {
            self.classes
                .insert(slot, &self.links, &self.bboxes, self.config.grid_slack);
        } else if let Err(pos) = self.degenerate.binary_search(&slot) {
            self.degenerate.insert(pos, slot);
        }
        self.stats.inserts += 1;
    }

    /// Computes the conflict row of the (live) link in `slot` against the
    /// current state and links every discovered edge. The row of a live link
    /// is correct whenever it was computed against the final state of all
    /// other slots.
    ///
    /// `dedup` skips edges already present — only a batch finalisation can
    /// see those (two fresh links discover their mutual edge from both
    /// sides); on the per-event path a freshly attached or just-isolated
    /// slot never has edges, so the extra adjacency probe is skipped there.
    fn link_conflict_row(&mut self, slot: usize, dedup: bool) {
        self.rows_counter.add(1);
        let link = self.links[slot].expect("linking a live slot");
        let bbox = self.bboxes[slot];
        let row = self.conflict_row(&link, &bbox, slot);
        // Cover the whole slot table: in a batch, this row may reference
        // slots allocated after `slot` whose own rows are still pending.
        self.adj.ensure_capacity(self.links.len());
        for &w in &row {
            if !dedup || !self.adj.are_adjacent(slot, w) {
                self.adj.link(slot, w);
            }
        }
        self.adj.maybe_compact(self.config.compact_slack);
    }

    /// Unwires the link at `slot` from every maintained structure (the slot
    /// itself is not freed — `move_node` re-attaches in place).
    fn detach(&mut self, slot: usize) -> Link {
        let link = self.links[slot].take().expect("detaching a live slot");
        self.adj.isolate(slot);
        self.adj.maybe_compact(self.config.compact_slack);
        self.powers[slot] = None;
        self.weights[slot] = None;
        if link.length() > 0.0 {
            self.classes.remove(
                link.length(),
                &self.links,
                &self.bboxes,
                self.config.grid_slack,
            );
        } else if let Ok(pos) = self.degenerate.binary_search(&slot) {
            self.degenerate.remove(pos);
        }
        self.live -= 1;
        self.stats.removals += 1;
        link
    }

    /// The sorted conflict row of `link` against every live link except
    /// `exclude` (the slot the link is being attached to).
    fn conflict_row(&self, link: &Link, bbox: &BoundingBox, exclude: usize) -> Vec<usize> {
        let mut row: Vec<usize> = Vec::new();
        let mut push = |j: usize| {
            if j != exclude {
                if let Some(other) = self.links[j].as_ref() {
                    if self.config.relation.conflicting(link, other) {
                        row.push(j);
                    }
                }
            }
        };
        if link.length() <= 0.0 {
            // A degenerate link conflicts with every distinct live link.
            for j in 0..self.links.len() {
                push(j);
            }
        } else {
            self.classes
                .for_each_candidate(link, bbox, self.config.relation, &mut push);
            for &j in &self.degenerate {
                push(j);
            }
        }
        row.sort_unstable();
        row.dedup();
        row
    }

    fn register_node_links(map: &mut HashMap<usize, Vec<usize>>, link: &Link, slot: usize) {
        for node in [link.sender_node, link.receiver_node].into_iter().flatten() {
            let slots = map.entry(node.index()).or_default();
            if !slots.contains(&slot) {
                slots.push(slot);
            }
        }
    }

    fn unregister_node_links(map: &mut HashMap<usize, Vec<usize>>, link: &Link, slot: usize) {
        for node in [link.sender_node, link.receiver_node].into_iter().flatten() {
            if let Some(slots) = map.get_mut(&node.index()) {
                slots.retain(|&s| s != slot);
                if slots.is_empty() {
                    map.remove(&node.index());
                }
            }
        }
    }

    /// The live links renumbered to contiguous ids `0..len()` in slot order
    /// (node annotations preserved) — the vertex order of
    /// [`InterferenceEngine::snapshot`].
    pub fn links(&self) -> Vec<Link> {
        self.live_slots()
            .into_iter()
            .enumerate()
            .map(|(pos, slot)| {
                let mut link = self.links[slot].expect("live slot");
                link.id = LinkId(pos);
                link
            })
            .collect()
    }

    /// Materialises the maintained state into `(links, conflict graph)`
    /// without re-running any geometry: live slots are renumbered to
    /// contiguous vertices and the adjacency rows are remapped. The result
    /// equals `ConflictGraph::build(&links, relation)` edge for edge.
    pub fn snapshot(&self) -> (Vec<Link>, ConflictGraph) {
        let slots = self.live_slots();
        let mut pos_of = vec![usize::MAX; self.links.len()];
        for (pos, &slot) in slots.iter().enumerate() {
            pos_of[slot] = pos;
        }
        let links = self.links();
        let mut offsets = Vec::with_capacity(slots.len() + 1);
        offsets.push(0);
        let mut neighbors = Vec::new();
        for &slot in &slots {
            // Slot order is ascending, so the remapped row stays sorted.
            neighbors.extend(self.adj.row(slot).into_iter().map(|w| pos_of[w]));
            offsets.push(neighbors.len());
        }
        let graph =
            ConflictGraph::from_parts(links.clone(), self.config.relation, offsets, neighbors);
        (links, graph)
    }

    /// Total relative interference on the link in `slot` from every other
    /// live link (set order = ascending slots), using the incrementally
    /// patched per-link state. `None` when a needed power or the target
    /// weight is unavailable, mirroring `PathLossCache`.
    pub fn relative_interference_on(&self, slot: usize) -> Option<f64> {
        let members = self.live_slots();
        let target = members
            .binary_search(&slot)
            .expect("slot must hold a live link");
        relative_interference_sum(
            wagg_sinr::AlphaPow::new(self.config.scheduler.model.alpha()),
            &members,
            target,
            self.weights[slot],
            |j| self.links[j].as_ref().expect("live slot"),
            |j| self.powers[j],
        )
    }

    /// Whether the live links in `slots` can transmit together under the
    /// engine's model and power assignment — the engine-side counterpart of
    /// [`PathLossCache::subset_feasible`], evaluated from the patched
    /// per-link state (no cache rebuild). Singletons are trivially feasible.
    ///
    /// # Panics
    ///
    /// Panics when a slot does not hold a live link.
    pub fn subset_feasible(&self, slots: &[usize]) -> bool {
        let pow = wagg_sinr::AlphaPow::new(self.config.scheduler.model.alpha());
        let inv_beta = 1.0 / self.config.scheduler.model.beta();
        (0..slots.len()).all(|k| {
            let total = relative_interference_sum(
                pow,
                slots,
                k,
                self.weights[slots[k]],
                |j| self.links[j].as_ref().expect("live slot"),
                |j| self.powers[j],
            );
            match total {
                Some(total) => total <= inv_beta,
                None => false,
            }
        })
    }

    /// The slots of every live link recorded as touching `node` (via
    /// `sender_node`/`receiver_node`) — the set a
    /// [`InterferenceEngine::move_node`] on `node` re-seats. Empty for nodes
    /// no live link references.
    pub fn node_slots(&self, node: usize) -> Vec<usize> {
        self.node_links.get(&node).cloned().unwrap_or_default()
    }

    /// The maintained path-loss state of one live slot, `(power, weight)` —
    /// the single-slot view of [`InterferenceEngine::cache_parts`], so a
    /// caller mirroring the live set can patch just the entries an event
    /// touched instead of re-collecting all of them.
    ///
    /// # Panics
    ///
    /// Panics when `slot` is out of range (dead slots return the stored
    /// `None`s, which is what a mirror should hold for them anyway — but
    /// callers are expected to ask about live slots only).
    pub fn cache_entry(&self, slot: usize) -> (Option<f64>, Option<f64>) {
        (self.powers[slot], self.weights[slot])
    }

    /// The patched per-link path-loss state gathered over the live links in
    /// [`InterferenceEngine::links`] order — ready for
    /// [`PathLossCache::from_parts`], so repair probes (like
    /// [`InterferenceEngine::schedule`]'s) reuse the maintained values
    /// instead of recomputing geometry.
    pub fn cache_parts(&self) -> (Vec<Option<f64>>, Vec<Option<f64>>) {
        let slots = self.live_slots();
        let powers = slots.iter().map(|&s| self.powers[s]).collect();
        let weights = slots.iter().map(|&s| self.weights[s]).collect();
        (powers, weights)
    }

    /// Schedules the current live links under the engine's own scheduler
    /// configuration ([`EngineConfig::scheduler`] — one source of truth, no
    /// re-supplied config to drift from the maintained state), reusing the
    /// incrementally maintained state end to end: the conflict graph is a
    /// [`InterferenceEngine::snapshot`] (no geometric rebuild) and — when the
    /// scheduler's power mode matches the engine's assignment — the patched
    /// per-link path-loss values are lent to **all** slot probes of the run
    /// via [`PathLossCache::from_parts`], so nothing is recomputed per probe.
    ///
    /// # Panics
    ///
    /// Panics when the engine maintains a custom conflict relation that is
    /// not the one the scheduler's power mode implies (engines built with
    /// [`EngineConfig::for_scheduler`] always match).
    pub fn schedule(&self) -> ScheduleReport {
        let config = self.config.scheduler;
        let snapshot_span = self.recorder.span("engine/snapshot");
        let (links, graph) = self.snapshot();
        snapshot_span.finish();
        // Sync the maintenance watermarks so a session-boundary metrics dump
        // reflects the engine's cumulative upkeep, not just this solve.
        let stats = self.stats();
        self.recorder
            .record_max("engine.grid_rebuilds", stats.grid_rebuilds as u64);
        self.recorder
            .record_max("engine.compactions", stats.compactions as u64);
        let lend_cache = config.model.noise() == 0.0
            && config.mode.assignment().as_ref() == Some(&self.config.power);
        if lend_cache {
            let (powers, weights) = self.cache_parts();
            let cache = PathLossCache::from_parts(&config.model, &links, powers, weights);
            schedule_prebuilt_traced(&graph, Some(&cache), config, &self.recorder)
        } else {
            schedule_prebuilt_traced(&graph, None, config, &self.recorder)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_schedule::PowerMode;

    fn engine() -> InterferenceEngine {
        InterferenceEngine::new(EngineConfig::new(
            ConflictRelation::unit_constant(),
            SinrModel::default(),
            PowerAssignment::mean(),
        ))
    }

    fn line(engine: &mut InterferenceEngine, s: f64, r: f64) -> usize {
        engine.insert_link(Point::on_line(s), Point::on_line(r))
    }

    fn assert_matches_scratch(engine: &InterferenceEngine) {
        let (links, graph) = engine.snapshot();
        let scratch = ConflictGraph::build(&links, engine.config().relation);
        assert_eq!(
            graph, scratch,
            "engine adjacency diverged from a fresh build"
        );
        let fresh = PathLossCache::new(engine.config().model(), &links, &engine.config().power);
        for (pos, &slot) in engine.live_slots().iter().enumerate() {
            assert_eq!(
                engine.relative_interference_on(slot),
                fresh.relative_interference_on(pos),
                "cache diverged at slot {slot}"
            );
        }
    }

    #[test]
    fn empty_engine_is_consistent() {
        let engine = engine();
        assert!(engine.is_empty());
        assert_eq!(engine.edge_count(), 0);
        assert_matches_scratch(&engine);
    }

    #[test]
    fn inserts_discover_conflicts_and_removals_clear_them() {
        let mut e = engine();
        let a = line(&mut e, 0.0, 1.0);
        let b = line(&mut e, 1.5, 2.5);
        let c = line(&mut e, 40.0, 41.0);
        assert!(e.are_adjacent(a, b));
        assert!(!e.are_adjacent(a, c));
        assert_eq!(e.edge_count(), 1);
        assert_matches_scratch(&e);
        e.remove_link(b).unwrap();
        assert_eq!(e.edge_count(), 0);
        assert_matches_scratch(&e);
    }

    #[test]
    fn slots_are_recycled_on_reinsert() {
        let mut e = engine();
        let a = line(&mut e, 0.0, 1.0);
        let b = line(&mut e, 10.0, 11.0);
        e.remove_link(a).unwrap();
        let c = line(&mut e, 10.8, 11.8); // reuses slot `a`, conflicts with b
        assert_eq!(c, a);
        assert!(e.are_adjacent(c, b));
        assert_matches_scratch(&e);
    }

    #[test]
    fn remove_errors_are_typed() {
        let mut e = engine();
        let a = line(&mut e, 0.0, 1.0);
        assert_eq!(e.remove_link(7), Err(EngineError::UnknownSlot { slot: 7 }));
        e.remove_link(a).unwrap();
        assert_eq!(e.remove_link(a), Err(EngineError::EmptySlot { slot: a }));
    }

    #[test]
    fn degenerate_links_conflict_with_everything() {
        let mut e = engine();
        let a = line(&mut e, 0.0, 1.0);
        let b = line(&mut e, 30.0, 31.0);
        let z = line(&mut e, 60.0, 60.0); // zero length
        assert!(e.are_adjacent(z, a));
        assert!(e.are_adjacent(z, b));
        assert_matches_scratch(&e);
        e.remove_link(z).unwrap();
        assert_matches_scratch(&e);
    }

    #[test]
    fn move_node_reseats_every_touching_link() {
        let mut e = engine();
        // A 3-node chain 0 -> 1 -> 2; node 1 is on both links.
        let l0 = e.insert_link_with_nodes(
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            NodeId(0),
            NodeId(1),
        );
        let l1 = e.insert_link_with_nodes(
            Point::new(10.0, 0.0),
            Point::new(20.0, 0.0),
            NodeId(1),
            NodeId(2),
        );
        assert!(e.are_adjacent(l0, l1)); // shared endpoint
        let touched = e.move_node(1, Point::new(100.0, 100.0));
        assert_eq!(touched, 2);
        let moved = *e.link(l0).unwrap();
        assert_eq!(moved.receiver, Point::new(100.0, 100.0));
        assert!(e.are_adjacent(l0, l1)); // still share node 1
        assert_matches_scratch(&e);
        assert_eq!(e.move_node(99, Point::origin()), 0);
    }

    #[test]
    fn bulk_seeding_matches_incremental_insertion() {
        let links: Vec<Link> = (0..120)
            .map(|i| {
                let x = i as f64 * 1.4;
                Link::new(i, Point::on_line(x), Point::on_line(x + 1.0))
            })
            .collect();
        let config = EngineConfig::new(
            ConflictRelation::unit_constant(),
            SinrModel::default(),
            PowerAssignment::mean(),
        );
        let bulk = InterferenceEngine::with_links(config.clone(), &links);
        let mut incremental = InterferenceEngine::new(config);
        for l in &links {
            incremental.insert_link(l.sender, l.receiver);
        }
        assert_eq!(bulk.snapshot(), incremental.snapshot());
        assert_matches_scratch(&bulk);
    }

    #[test]
    fn apply_batch_equals_per_event_application() {
        let ops = vec![
            BatchOp::Insert {
                sender: Point::on_line(0.0),
                receiver: Point::on_line(1.0),
                sender_node: Some(NodeId(0)),
                receiver_node: Some(NodeId(1)),
            },
            BatchOp::Insert {
                sender: Point::on_line(1.4),
                receiver: Point::on_line(2.4),
                sender_node: None,
                receiver_node: None,
            },
            BatchOp::Insert {
                sender: Point::on_line(30.0),
                receiver: Point::on_line(31.0),
                sender_node: None,
                receiver_node: None,
            },
            BatchOp::MoveNode {
                node: 1,
                to: Point::on_line(29.5),
            },
            BatchOp::Remove { slot: 1 },
        ];
        let mut batched = engine();
        let inserted = batched.apply_batch(&ops).unwrap();
        assert_eq!(inserted, vec![0, 1, 2]);

        let mut sequential = engine();
        sequential.insert_link_with_nodes(
            Point::on_line(0.0),
            Point::on_line(1.0),
            NodeId(0),
            NodeId(1),
        );
        sequential.insert_link(Point::on_line(1.4), Point::on_line(2.4));
        sequential.insert_link(Point::on_line(30.0), Point::on_line(31.0));
        sequential.move_node(1, Point::on_line(29.5));
        sequential.remove_link(1).unwrap();

        assert_eq!(batched.snapshot(), sequential.snapshot());
        assert_matches_scratch(&batched);
    }

    #[test]
    fn apply_batch_recycles_slots_and_reports_errors_in_place() {
        let mut e = engine();
        let a = line(&mut e, 0.0, 1.0);
        // Remove and re-insert in one batch: the insert recycles slot `a`.
        let inserted = e
            .apply_batch(&[
                BatchOp::Remove { slot: a },
                BatchOp::Insert {
                    sender: Point::on_line(5.0),
                    receiver: Point::on_line(6.0),
                    sender_node: None,
                    receiver_node: None,
                },
            ])
            .unwrap();
        assert_eq!(inserted, vec![a]);
        assert_matches_scratch(&e);
        // A bad remove fails exactly where the sequential path would, with
        // the prior operations applied and rows finalised.
        let err = e
            .apply_batch(&[
                BatchOp::Insert {
                    sender: Point::on_line(10.0),
                    receiver: Point::on_line(11.0),
                    sender_node: None,
                    receiver_node: None,
                },
                BatchOp::Remove { slot: 99 },
            ])
            .unwrap_err();
        assert_eq!(err, EngineError::UnknownSlot { slot: 99 });
        assert_eq!(e.len(), 2);
        assert_matches_scratch(&e);
    }

    #[test]
    fn schedule_reuses_engine_state_and_matches_schedule_links() {
        let links: Vec<Link> = (0..60)
            .map(|i| {
                let x = (i % 10) as f64 * 4.0;
                let y = (i / 10) as f64 * 4.0;
                Link::new(i, Point::new(x, y), Point::new(x + 1.0, y))
            })
            .collect();
        for mode in [PowerMode::mean_oblivious(), PowerMode::GlobalControl] {
            let sched_config = SchedulerConfig::new(mode);
            let engine =
                InterferenceEngine::with_links(EngineConfig::for_scheduler(sched_config), &links);
            let via_engine = engine.schedule();
            let direct = wagg_schedule::solve_static(&engine.links(), sched_config);
            assert_eq!(
                via_engine, direct,
                "{mode}: engine path changed the schedule"
            );
        }
    }
}
