//! Incremental interference engine for dynamic networks.
//!
//! The paper's schedules are computed for a *static* link set, and PR 1 made
//! that computation fast; but the convergecast setting is naturally dynamic —
//! nodes fail, arrive and move — and rebuilding the conflict graph, the
//! spatial grids and the path-loss cache from scratch on every event costs a
//! full `O(n)` rebuild per event. This crate turns those three structures
//! into one **mutable, incrementally maintained** engine:
//!
//! * **Spatial grids** — the per-length-class `UniformGrid`s of the static
//!   build become tombstoned indexes with pending suffixes, rebuilt per
//!   class only when churn crosses an occupancy threshold
//!   ([`EngineConfig::grid_slack`]).
//! * **Conflict adjacency** — a CSR base snapshot plus added/removed delta
//!   overlays, compacted once the overlay passes a fixed fraction of the
//!   edge set ([`EngineConfig::compact_slack`]); equivalent edge for edge to
//!   `ConflictGraph::build` over the live links at every point.
//! * **Path-loss state** — the per-link powers and target weights of
//!   `PathLossCache`, patched per event and lent to *every* scheduler slot
//!   probe of a run ([`InterferenceEngine::schedule`]) instead of being
//!   rebuilt per feasibility call.
//!
//! Per-event cost is proportional to the affected neighbourhood (plus
//! amortised rebuild/compaction work), not to the network size — see the
//! `engine` benchmark for incremental-versus-rebuild numbers.
//!
//! The event API is [`InterferenceEngine::insert_link`] /
//! [`InterferenceEngine::remove_link`] / [`InterferenceEngine::move_node`];
//! [`scenario`] packages event sequences (random churn and random-waypoint
//! mobility via [`wagg_instances::mobility`]) into replayable traces.
//!
//! # Examples
//!
//! End to end: seed an engine from a link set, churn it, reschedule.
//!
//! ```
//! use wagg_engine::{run_trace, churn_trace, EngineConfig, InterferenceEngine};
//! use wagg_schedule::{PowerMode, SchedulerConfig};
//!
//! let config = SchedulerConfig::new(PowerMode::mean_oblivious());
//! let mut engine = InterferenceEngine::new(EngineConfig::for_scheduler(config));
//! let trace = churn_trace(60, 40, 7);
//! let outcome = run_trace(&mut engine, &trace).unwrap();
//! assert_eq!(outcome.final_links, engine.len());
//!
//! // Reschedule from the maintained state: no geometric rebuild, and the
//! // patched path-loss values feed every slot probe.
//! let report = engine.schedule();
//! assert!(report.schedule.is_partition(engine.len()));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod error;
pub mod scenario;

mod classes;
mod overlay;

pub use engine::{BatchOp, EngineConfig, EngineStats, InterferenceEngine};
pub use error::EngineError;
pub use scenario::{
    churn_trace, run_trace, run_trace_batched, EngineEvent, EngineTrace, TraceBinding, TraceOutcome,
};
