//! Per-length-class spatial indexes with tombstones and threshold rebuilds.
//!
//! The static `ConflictGraph::build` bins links into power-of-two length
//! classes and queries one `UniformGrid` per class; this module is the
//! *mutable* counterpart. A grid cannot be updated in place (it is a flat
//! counting-sorted table), so each class keeps
//!
//! * an immutable grid over the members indexed at the last rebuild,
//! * a **pending** suffix of members inserted since (scanned exactly, no
//!   pruning — correct because the caller applies the exact conflict
//!   predicate to every candidate anyway), and
//! * a **tombstone** count of members removed since.
//!
//! When `pending + tombstones` crosses an occupancy threshold (a configurable
//! fraction of the live membership), the class rebuilds its grid in one pass,
//! so maintenance stays amortised `O(1)`-ish per event while queries keep the
//! grid's pruning power.
//!
//! Class length bounds `lo`/`hi` are maintained *monotonically* between
//! rebuilds (they may only widen), which keeps the per-class conflict radius
//! a sound upper bound — exactness is restored at each rebuild.

use wagg_geometry::grid::UniformGrid;
use wagg_geometry::BoundingBox;
use wagg_sinr::Link;

/// Minimum churn (pending + tombstones) before a class rebuild is considered.
const REBUILD_MIN: usize = 16;

/// The absolute power-of-two length-class key of a positive length.
pub(crate) fn class_key(length: f64) -> i32 {
    debug_assert!(length > 0.0);
    length.log2().floor() as i32
}

/// One mutable length class.
#[derive(Debug, Clone)]
pub(crate) struct ClassIndex {
    /// Lower bound on every live member's length (exact after a rebuild,
    /// only ever lowered between rebuilds).
    lo: f64,
    /// Upper bound on every live member's length (exact after a rebuild).
    hi: f64,
    /// Member slots; `members[..indexed]` are covered by `grid` (at their
    /// position when the grid was built), the rest are pending. May contain
    /// tombstoned (dead) or superseded entries until the next rebuild.
    members: Vec<usize>,
    /// Spatial index over the bounding boxes of `members[..indexed]`.
    grid: UniformGrid,
    /// Length of the grid-covered prefix of `members`.
    indexed: usize,
    /// Members removed (or re-classed) since the last rebuild.
    tombstones: usize,
}

/// All length classes of the engine, keyed by [`class_key`].
#[derive(Debug, Clone, Default)]
pub(crate) struct LengthClasses {
    classes: std::collections::BTreeMap<i32, ClassIndex>,
    rebuilds: usize,
}

impl LengthClasses {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of grid rebuilds performed so far (stats).
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Number of populated classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Registers a live slot holding a positive-length link. `links` and
    /// `bboxes` are the engine's slot tables (used if a rebuild triggers).
    pub fn insert(
        &mut self,
        slot: usize,
        links: &[Option<Link>],
        bboxes: &[BoundingBox],
        slack: f64,
    ) {
        let link = links[slot].as_ref().expect("inserting a live slot");
        let len = link.length();
        let key = class_key(len);
        let class = self.classes.entry(key).or_insert_with(|| ClassIndex {
            lo: len,
            hi: len,
            members: Vec::new(),
            grid: UniformGrid::build(len, &[]),
            indexed: 0,
            tombstones: 0,
        });
        class.lo = class.lo.min(len);
        class.hi = class.hi.max(len);
        class.members.push(slot);
        self.maybe_rebuild(key, links, bboxes, slack);
    }

    /// Unregisters a slot that held a link of length `len` (the engine calls
    /// this before clearing the slot, passing the departing length).
    pub fn remove(&mut self, len: f64, links: &[Option<Link>], bboxes: &[BoundingBox], slack: f64) {
        let key = class_key(len);
        let class = self
            .classes
            .get_mut(&key)
            .expect("removing from a populated class");
        class.tombstones += 1;
        self.maybe_rebuild(key, links, bboxes, slack);
    }

    /// Rebuilds the class grid when the churn since the last rebuild exceeds
    /// `max(REBUILD_MIN, slack · live)`; drops the class when it emptied.
    fn maybe_rebuild(
        &mut self,
        key: i32,
        links: &[Option<Link>],
        bboxes: &[BoundingBox],
        slack: f64,
    ) {
        let class = &self.classes[&key];
        let pending = class.members.len() - class.indexed;
        let live = class.members.len().saturating_sub(class.tombstones);
        let threshold = REBUILD_MIN.max((slack * live as f64).ceil() as usize);
        if pending + class.tombstones <= threshold {
            return;
        }
        self.rebuild(key, links, bboxes);
    }

    /// Unconditionally rebuilds one class from the engine's current state.
    fn rebuild(&mut self, key: i32, links: &[Option<Link>], bboxes: &[BoundingBox]) {
        let class = self.classes.get_mut(&key).expect("rebuilding a live class");
        let mut live: Vec<usize> = class
            .members
            .iter()
            .copied()
            .filter(|&slot| {
                links[slot]
                    .as_ref()
                    .is_some_and(|l| l.length() > 0.0 && class_key(l.length()) == key)
            })
            .collect();
        live.sort_unstable();
        live.dedup();
        if live.is_empty() {
            self.classes.remove(&key);
            self.rebuilds += 1;
            return;
        }
        let lengths = live
            .iter()
            .map(|&slot| links[slot].as_ref().expect("live").length());
        let lo = lengths.clone().fold(f64::INFINITY, f64::min);
        let hi = lengths.fold(0.0f64, f64::max);
        let boxes: Vec<BoundingBox> = live.iter().map(|&slot| bboxes[slot]).collect();
        class.grid = UniformGrid::build(hi, &boxes);
        class.indexed = live.len();
        class.members = live;
        class.lo = lo;
        class.hi = hi;
        class.tombstones = 0;
        self.rebuilds += 1;
    }

    /// Visits every slot that could conflict with `link` (whose bounding box
    /// is `bbox`) under `f`-radius pruning, class by class. Visited slots may
    /// repeat, may be dead, and may be false positives — the caller applies
    /// the exact conflict predicate. No true conflict partner is ever
    /// skipped: each class's radius is computed from sound `lo`/`hi` bounds,
    /// and members not yet indexed by the grid are scanned unconditionally.
    pub fn for_each_candidate<F: FnMut(usize)>(
        &self,
        link: &Link,
        bbox: &BoundingBox,
        relation: wagg_conflict::ConflictRelation,
        mut visit: F,
    ) {
        let li = link.length();
        debug_assert!(li > 0.0, "degenerate links are not class-indexed");
        for class in self.classes.values() {
            // Largest distance at which a member with length in [lo, hi]
            // could conflict with `link` — sound because f is non-decreasing
            // and lo/hi bound every live member's length (see module docs).
            let l_min = li.min(class.hi);
            let ratio = li.max(class.hi) / li.min(class.lo);
            let radius = l_min * relation.f(ratio);
            if radius.is_finite() {
                class
                    .grid
                    .for_each_candidate(bbox, radius, |local| visit(class.members[local]));
            } else {
                for &slot in &class.members[..class.indexed] {
                    visit(slot);
                }
            }
            for &slot in &class.members[class.indexed..] {
                visit(slot);
            }
        }
    }
}
