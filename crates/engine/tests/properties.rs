//! Property tests: after an **arbitrary** event sequence, the engine's
//! incrementally maintained state must equal a from-scratch build over the
//! live links —
//!
//! * the conflict adjacency edge for edge against `ConflictGraph::build`
//!   (CSR arrays compared exactly), and
//! * the path-loss state against a fresh `PathLossCache::new` within 1e-9
//!   relative (the workspace-wide drift bound; in practice the values are
//!   bit-identical because both sides run the same per-link formulas).
//!
//! The scripted tests force the corners the issue calls out: remove-then-
//! reinsert into recycled slots, and grid-rebuild / overlay-compaction
//! threshold crossings (via aggressively small slacks). The suite runs under
//! both the serial and the parallel feature configuration (`ci.sh` runs it
//! with `--no-default-features` too).

use proptest::prelude::*;
use wagg_conflict::{ConflictGraph, ConflictRelation};
use wagg_engine::{EngineConfig, InterferenceEngine};
use wagg_geometry::Point;
use wagg_sinr::{NodeId, PathLossCache, PowerAssignment, SinrModel};

fn relation_for(which: u8) -> ConflictRelation {
    match which % 3 {
        0 => ConflictRelation::unit_constant(),
        1 => ConflictRelation::oblivious_default(),
        _ => ConflictRelation::arbitrary_default(),
    }
}

fn config_for(which: u8, grid_slack: f64, compact_slack: f64) -> EngineConfig {
    EngineConfig::new(
        relation_for(which),
        SinrModel::default(),
        PowerAssignment::mean(),
    )
    .with_slacks(grid_slack, compact_slack)
}

/// Asserts the engine equals a from-scratch build of its live links.
fn assert_matches_scratch(engine: &InterferenceEngine) {
    let (links, graph) = engine.snapshot();
    let scratch = ConflictGraph::build(&links, engine.config().relation);
    assert_eq!(
        graph,
        scratch,
        "engine adjacency diverged from ConflictGraph::build on {} links",
        links.len()
    );

    let fresh = PathLossCache::new(engine.config().model(), &links, &engine.config().power);
    for (pos, &slot) in engine.live_slots().iter().enumerate() {
        let incremental = engine.relative_interference_on(slot);
        let scratch = fresh.relative_interference_on(pos);
        match (incremental, scratch) {
            (Some(a), Some(b)) if a.is_finite() && b.is_finite() => {
                let tol = b.abs() * 1e-9 + 1e-300;
                assert!(
                    (a - b).abs() <= tol,
                    "cache drift at slot {slot}: {a} vs {b}"
                );
            }
            (a, b) => assert_eq!(a, b, "cache availability differs at slot {slot}"),
        }
    }
}

/// One scripted operation, decoded from proptest tuples.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert {
        x: f64,
        y: f64,
        angle: f64,
        len: f64,
        node: usize,
    },
    Remove {
        pick: usize,
    },
    Move {
        node: usize,
        x: f64,
        y: f64,
    },
}

fn decode(ops: &[(u8, f64, f64, f64, f64, u16)]) -> Vec<Op> {
    ops.iter()
        .map(|&(kind, x, y, angle, len, sel)| match kind % 4 {
            // Two insert variants so traces grow on average.
            0 | 1 => Op::Insert {
                x,
                y,
                angle,
                len,
                // A small node pool so several links share nodes and moves
                // re-seat more than one link.
                node: sel as usize % 12,
            },
            2 => Op::Remove { pick: sel as usize },
            _ => Op::Move {
                node: sel as usize % 12,
                x,
                y,
            },
        })
        .collect()
}

fn apply(engine: &mut InterferenceEngine, op: Op) {
    match op {
        Op::Insert {
            x,
            y,
            angle,
            len,
            node,
        } => {
            let sender = Point::new(x, y);
            let receiver = Point::new(x + len * angle.cos(), y + len * angle.sin());
            engine.insert_link_with_nodes(
                sender,
                receiver,
                NodeId(node),
                NodeId((node + 1) % 12 + 12), // receiver nodes from a disjoint pool
            );
        }
        Op::Remove { pick } => {
            let live = engine.live_slots();
            if !live.is_empty() {
                engine.remove_link(live[pick % live.len()]).unwrap();
            }
        }
        Op::Move { node, x, y } => {
            engine.move_node(node, Point::new(x, y));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary event traces under every relation, checked at several
    /// checkpoints and at the end, with default maintenance thresholds.
    #[test]
    fn engine_equals_scratch_after_arbitrary_traces(
        raw in proptest::collection::vec(
            (0u8..4, 0.0f64..250.0, 0.0f64..250.0, 0.0f64..std::f64::consts::TAU, 0.2f64..25.0, 0u16..4096),
            20..90,
        ),
        which in 0u8..3,
    ) {
        let mut engine = InterferenceEngine::new(config_for(which, 0.25, 0.25));
        let ops = decode(&raw);
        for (i, &op) in ops.iter().enumerate() {
            apply(&mut engine, op);
            if i % 23 == 22 {
                assert_matches_scratch(&engine);
            }
        }
        assert_matches_scratch(&engine);
    }

    /// Batched application (`apply_batch` via whole-trace chunks) must land
    /// in exactly the per-event state: same snapshot graph, same path-loss
    /// verdicts, for arbitrary traces and batch sizes.
    #[test]
    fn batched_application_equals_per_event_application(
        raw in proptest::collection::vec(
            (0u8..4, 0.0f64..250.0, 0.0f64..250.0, 0.0f64..std::f64::consts::TAU, 0.2f64..25.0, 0u16..4096),
            20..90,
        ),
        which in 0u8..3,
        batch in 1usize..40,
    ) {
        use wagg_engine::BatchOp;
        let ops = decode(&raw);
        let mut per_event = InterferenceEngine::new(config_for(which, 0.25, 0.25));
        for &op in &ops {
            apply(&mut per_event, op);
        }
        // The same operations as slot-level batch ops. `Remove` picks over
        // the live slots *at batch-build time*, so resolve each chunk
        // against the batched engine's state as it evolves.
        let mut batched = InterferenceEngine::new(config_for(which, 0.25, 0.25));
        for chunk in ops.chunks(batch) {
            // A Remove that picks a slot inserted earlier in the same chunk
            // cannot be expressed without knowing the allocation, so chunks
            // are resolved op by op against a scouting clone — exactly what
            // the sequential path sees.
            let mut scout = batched.clone();
            let mut batch_ops = Vec::new();
            for &op in chunk {
                match op {
                    Op::Insert { x, y, angle, len, node } => {
                        let sender = Point::new(x, y);
                        let receiver = Point::new(x + len * angle.cos(), y + len * angle.sin());
                        let (s, r) = (NodeId(node), NodeId((node + 1) % 12 + 12));
                        scout.insert_link_with_nodes(sender, receiver, s, r);
                        batch_ops.push(BatchOp::Insert {
                            sender,
                            receiver,
                            sender_node: Some(s),
                            receiver_node: Some(r),
                        });
                    }
                    Op::Remove { pick } => {
                        let live = scout.live_slots();
                        if !live.is_empty() {
                            let slot = live[pick % live.len()];
                            scout.remove_link(slot).unwrap();
                            batch_ops.push(BatchOp::Remove { slot });
                        }
                    }
                    Op::Move { node, x, y } => {
                        scout.move_node(node, Point::new(x, y));
                        batch_ops.push(BatchOp::MoveNode { node, to: Point::new(x, y) });
                    }
                }
            }
            batched.apply_batch(&batch_ops).unwrap();
        }
        prop_assert_eq!(per_event.snapshot(), batched.snapshot());
        assert_matches_scratch(&batched);
    }

    /// The same traces under adversarially small maintenance slacks, so grid
    /// rebuilds and overlay compactions trigger constantly mid-trace.
    #[test]
    fn engine_equals_scratch_across_maintenance_thresholds(
        raw in proptest::collection::vec(
            (0u8..4, 0.0f64..120.0, 0.0f64..120.0, 0.0f64..std::f64::consts::TAU, 0.2f64..40.0, 0u16..4096),
            30..80,
        ),
        which in 0u8..3,
    ) {
        let mut engine = InterferenceEngine::new(config_for(which, 0.01, 0.001));
        for &op in &decode(&raw) {
            apply(&mut engine, op);
        }
        assert_matches_scratch(&engine);
    }
}

#[test]
fn remove_then_reinsert_recycles_slots_consistently() {
    let mut engine = InterferenceEngine::new(config_for(0, 0.05, 0.05));
    // A dense row of unit links.
    let slots: Vec<usize> = (0..120)
        .map(|i| {
            let x = i as f64 * 1.3;
            engine.insert_link(Point::on_line(x), Point::on_line(x + 1.0))
        })
        .collect();
    assert_matches_scratch(&engine);
    // Remove every other link...
    for &slot in slots.iter().step_by(2) {
        engine.remove_link(slot).unwrap();
    }
    assert_matches_scratch(&engine);
    // ...reinsert into the recycled slots at new positions and lengths
    // (crossing length classes), then churn once more.
    let reinserted: Vec<usize> = (0..60)
        .map(|i| {
            let x = i as f64 * 2.6 + 0.4;
            engine.insert_link(Point::on_line(x), Point::on_line(x + 4.0))
        })
        .collect();
    assert!(
        reinserted.iter().all(|s| slots.contains(s)),
        "slots must be recycled"
    );
    assert_matches_scratch(&engine);
    for &slot in reinserted.iter().take(20) {
        engine.remove_link(slot).unwrap();
    }
    assert_matches_scratch(&engine);
    let stats = engine.stats();
    assert!(
        stats.grid_rebuilds > 0,
        "the trace must cross grid-rebuild thresholds"
    );
}

#[test]
fn long_churn_forces_compactions_and_stays_exact() {
    let mut engine = InterferenceEngine::new(config_for(1, 0.02, 0.01));
    let mut live: Vec<usize> = (0..150)
        .map(|i| {
            let x = (i % 15) as f64 * 2.0;
            let y = (i / 15) as f64 * 2.0;
            engine.insert_link(Point::new(x, y), Point::new(x + 1.0, y))
        })
        .collect();
    for round in 0..300 {
        let victim = live[round * 7 % live.len()];
        live.retain(|&s| s != victim);
        engine.remove_link(victim).unwrap();
        let x = (round % 17) as f64 * 1.7;
        let y = (round % 13) as f64 * 1.9;
        live.push(engine.insert_link(Point::new(x, y), Point::new(x + 1.2, y + 0.3)));
        if round % 60 == 59 {
            assert_matches_scratch(&engine);
        }
    }
    assert_matches_scratch(&engine);
    let stats = engine.stats();
    assert!(
        stats.compactions > 0,
        "the churn must cross compaction thresholds"
    );
    assert!(stats.grid_rebuilds > 0);
}

#[test]
fn degenerate_and_mixed_scale_universes_stay_exact() {
    let mut engine = InterferenceEngine::new(config_for(2, 0.1, 0.1));
    // Mixed scales spanning many length classes plus degenerate links.
    for i in 0..40 {
        let x = i as f64 * 3.0;
        engine.insert_link(Point::on_line(x), Point::on_line(x + 1.0));
        let growth = 1.0 + (i % 7) as f64 * 4.0;
        engine.insert_link(Point::on_line(x + 1.2), Point::on_line(x + 1.2 + growth));
    }
    let degenerate = engine.insert_link(Point::on_line(5.0), Point::on_line(5.0));
    assert_matches_scratch(&engine);
    assert_eq!(engine.neighbors(degenerate).len(), engine.len() - 1);
    engine.remove_link(degenerate).unwrap();
    assert_matches_scratch(&engine);
}
