//! The stochastic channel: Rayleigh fading and noise fluctuation.

use crate::error::FadingError;
use rand::Rng;
use serde::{Deserialize, Serialize};
use wagg_sinr::SinrModel;

/// A stochastic perturbation of the deterministic path-loss channel.
///
/// * **Rayleigh fading** multiplies every received power (signal *and*
///   interference) by an independent exponential gain with the configured
///   mean — the power-domain form of Rayleigh amplitude fading. Gains are
///   drawn independently per transmission and per slot (block fading that is
///   independent across time, the setting in which the paper cites the
///   robustness result of Dams, Hoefer and Kesselheim).
/// * **Noise fluctuation** multiplies the ambient noise by a log-normal
///   factor `exp(sigma * Z)` with `Z` standard normal, modelling sporadic
///   variations in the noise floor.
///
/// # Examples
///
/// ```
/// use wagg_fading::FadingModel;
///
/// let channel = FadingModel::rayleigh(1.0).with_noise_sigma(0.2).unwrap();
/// assert!(channel.is_stochastic());
/// assert_eq!(FadingModel::none().is_stochastic(), false);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FadingModel {
    /// Mean of the exponential power gain, or `None` for no fading.
    mean_gain: Option<f64>,
    /// Standard deviation of the log-normal noise factor, or `None` for a
    /// constant noise floor.
    noise_sigma: Option<f64>,
}

impl FadingModel {
    /// A deterministic channel: no fading, no noise fluctuation.
    pub fn none() -> Self {
        FadingModel {
            mean_gain: None,
            noise_sigma: None,
        }
    }

    /// Rayleigh fading with the given mean power gain (1.0 preserves the mean
    /// received power of the deterministic model).
    ///
    /// # Panics
    ///
    /// Panics if `mean_gain` is not positive and finite — that is a
    /// programming error; use [`FadingModel::try_rayleigh`] for data-driven
    /// values.
    pub fn rayleigh(mean_gain: f64) -> Self {
        Self::try_rayleigh(mean_gain).expect("mean gain must be positive and finite")
    }

    /// Fallible constructor for Rayleigh fading.
    ///
    /// # Errors
    ///
    /// Returns [`FadingError::InvalidParameter`] when `mean_gain` is not
    /// positive and finite.
    pub fn try_rayleigh(mean_gain: f64) -> Result<Self, FadingError> {
        if mean_gain <= 0.0 || !mean_gain.is_finite() {
            return Err(FadingError::InvalidParameter {
                name: "mean_gain",
                value: mean_gain,
            });
        }
        Ok(FadingModel {
            mean_gain: Some(mean_gain),
            noise_sigma: None,
        })
    }

    /// Adds log-normal noise fluctuation with the given sigma.
    ///
    /// # Errors
    ///
    /// Returns [`FadingError::InvalidParameter`] when `sigma` is negative or
    /// not finite.
    pub fn with_noise_sigma(mut self, sigma: f64) -> Result<Self, FadingError> {
        if sigma < 0.0 || !sigma.is_finite() {
            return Err(FadingError::InvalidParameter {
                name: "noise_sigma",
                value: sigma,
            });
        }
        self.noise_sigma = if sigma == 0.0 { None } else { Some(sigma) };
        Ok(self)
    }

    /// The mean of the fading gain (`None` when fading is disabled).
    pub fn mean_gain(&self) -> Option<f64> {
        self.mean_gain
    }

    /// The noise-fluctuation sigma (`None` when the noise floor is constant).
    pub fn noise_sigma(&self) -> Option<f64> {
        self.noise_sigma
    }

    /// Whether any stochastic component is enabled.
    pub fn is_stochastic(&self) -> bool {
        self.mean_gain.is_some() || self.noise_sigma.is_some()
    }

    /// Samples one power gain (1.0 when fading is disabled).
    pub fn sample_gain<R: Rng>(&self, rng: &mut R) -> f64 {
        match self.mean_gain {
            None => 1.0,
            Some(mean) => {
                // Exponential with the given mean via inverse transform; clamp
                // the uniform away from 1 to avoid ln(0).
                let u: f64 = rng.gen::<f64>().min(1.0 - 1e-16);
                -mean * (1.0 - u).ln()
            }
        }
    }

    /// Samples one noise value given the base noise floor.
    pub fn sample_noise<R: Rng>(&self, base_noise: f64, rng: &mut R) -> f64 {
        match self.noise_sigma {
            None => base_noise,
            Some(sigma) => {
                // Box–Muller for a standard normal.
                let u1: f64 = rng.gen::<f64>().max(1e-16);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                base_noise * (sigma * z).exp()
            }
        }
    }

    /// Closed-form success probability of an *isolated* transmission (no
    /// concurrent interference) over a link of length `length` with sender
    /// power `power` under Rayleigh fading: `exp(-beta * N * l^alpha / (mean *
    /// power))`. Returns 1.0 when fading is disabled or the model is
    /// noise-free (the deterministic SINR is then infinite).
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_fading::FadingModel;
    /// use wagg_sinr::SinrModel;
    ///
    /// let model = SinrModel::new(3.0, 1.0, 1e-3).unwrap();
    /// let p = FadingModel::rayleigh(1.0).isolated_success_probability(&model, 2.0, 1.0);
    /// assert!((p - (-8.0e-3f64).exp()).abs() < 1e-12);
    /// ```
    pub fn isolated_success_probability(&self, model: &SinrModel, length: f64, power: f64) -> f64 {
        let mean = match self.mean_gain {
            None => return 1.0,
            Some(m) => m,
        };
        let noise = model.noise();
        if noise <= 0.0 || power <= 0.0 {
            return 1.0;
        }
        let demand = model.beta() * noise * length.powf(model.alpha());
        (-demand / (mean * power)).exp()
    }
}

impl Default for FadingModel {
    fn default() -> Self {
        FadingModel::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_geometry::rng::seeded_rng;

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(FadingModel::try_rayleigh(0.0).is_err());
        assert!(FadingModel::try_rayleigh(f64::NAN).is_err());
        assert!(FadingModel::rayleigh(1.0).with_noise_sigma(-0.1).is_err());
        assert!(FadingModel::rayleigh(1.0)
            .with_noise_sigma(f64::INFINITY)
            .is_err());
    }

    #[test]
    #[should_panic(expected = "mean gain must be positive and finite")]
    fn panicking_constructor_rejects_bad_means() {
        let _ = FadingModel::rayleigh(-2.0);
    }

    #[test]
    fn deterministic_channel_returns_unit_gain_and_base_noise() {
        let channel = FadingModel::none();
        let mut rng = seeded_rng(1);
        assert_eq!(channel.sample_gain(&mut rng), 1.0);
        assert_eq!(channel.sample_noise(0.5, &mut rng), 0.5);
        assert!(!channel.is_stochastic());
    }

    #[test]
    fn rayleigh_gains_have_the_configured_mean() {
        let channel = FadingModel::rayleigh(2.0);
        let mut rng = seeded_rng(42);
        let samples = 20_000;
        let mean: f64 = (0..samples)
            .map(|_| channel.sample_gain(&mut rng))
            .sum::<f64>()
            / samples as f64;
        assert!((mean - 2.0).abs() < 0.1, "empirical mean {mean}");
    }

    #[test]
    fn noise_fluctuation_is_centered_on_the_base_noise() {
        let channel = FadingModel::none().with_noise_sigma(0.3).unwrap();
        let mut rng = seeded_rng(7);
        let samples = 20_000;
        let mean_log: f64 = (0..samples)
            .map(|_| (channel.sample_noise(1.0, &mut rng)).ln())
            .sum::<f64>()
            / samples as f64;
        assert!(mean_log.abs() < 0.02, "mean log-noise {mean_log}");
        assert!(channel.is_stochastic());
        // Sigma zero turns the fluctuation off entirely.
        let quiet = FadingModel::none().with_noise_sigma(0.0).unwrap();
        assert_eq!(quiet.noise_sigma(), None);
    }

    #[test]
    fn isolated_success_probability_decreases_with_length() {
        let model = SinrModel::new(3.0, 1.0, 1e-3).unwrap();
        let channel = FadingModel::rayleigh(1.0);
        let p_short = channel.isolated_success_probability(&model, 1.0, 1.0);
        let p_long = channel.isolated_success_probability(&model, 4.0, 1.0);
        assert!(p_short > p_long);
        assert!(p_long > 0.0 && p_short < 1.0);
        // No fading or no noise means certain success.
        assert_eq!(
            FadingModel::none().isolated_success_probability(&model, 5.0, 1.0),
            1.0
        );
        let noise_free = SinrModel::new(3.0, 1.0, 0.0).unwrap();
        assert_eq!(
            channel.isolated_success_probability(&noise_free, 5.0, 1.0),
            1.0
        );
    }
}
