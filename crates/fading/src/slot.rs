//! The outcome of one faded slot.

use crate::error::FadingError;
use crate::model::FadingModel;
use rand::Rng;
use wagg_schedule::PowerMode;
use wagg_sinr::power_control::optimal_powers;
use wagg_sinr::{Link, SinrModel};

/// The transmission powers the links of a slot use under the given power
/// mode: the fixed assignment for uniform/linear/oblivious power, the
/// Foschini–Miljanic witness powers for global control.
///
/// # Errors
///
/// Returns [`FadingError::Power`] for degenerate link geometry or a slot that
/// is infeasible under global power control.
///
/// # Examples
///
/// ```
/// use wagg_fading::slot_powers;
/// use wagg_geometry::Point;
/// use wagg_schedule::PowerMode;
/// use wagg_sinr::{Link, SinrModel};
///
/// let links = vec![
///     Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
///     Link::new(1, Point::new(20.0, 0.0), Point::new(21.0, 0.0)),
/// ];
/// let powers = slot_powers(&SinrModel::default(), PowerMode::Uniform, &links).unwrap();
/// assert_eq!(powers, vec![1.0, 1.0]);
/// ```
pub fn slot_powers(
    model: &SinrModel,
    mode: PowerMode,
    links: &[Link],
) -> Result<Vec<f64>, FadingError> {
    match mode.assignment() {
        Some(assignment) => links
            .iter()
            .map(|l| {
                assignment
                    .power(l, model.alpha())
                    .map_err(FadingError::from)
            })
            .collect(),
        None => optimal_powers(model, links).map_err(FadingError::from),
    }
}

/// Simulates one faded slot: every link of `links` transmits with power
/// `powers[i]`, every received power (signal and interference) is multiplied
/// by an independently sampled fading gain, the noise floor is resampled, and
/// the SINR threshold is checked per link.
///
/// Returns one success flag per link.
///
/// # Panics
///
/// Panics if `powers` and `links` have different lengths — that is a
/// programming error.
///
/// # Examples
///
/// ```
/// use wagg_fading::{faded_slot_outcome, FadingModel};
/// use wagg_geometry::{rng::seeded_rng, Point};
/// use wagg_sinr::{Link, SinrModel};
///
/// let links = vec![Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0))];
/// let mut rng = seeded_rng(1);
/// // A noise-free isolated link always succeeds, fading or not.
/// let ok = faded_slot_outcome(&SinrModel::default(), &links, &[1.0], FadingModel::rayleigh(1.0), &mut rng);
/// assert_eq!(ok, vec![true]);
/// ```
pub fn faded_slot_outcome<R: Rng>(
    model: &SinrModel,
    links: &[Link],
    powers: &[f64],
    fading: FadingModel,
    rng: &mut R,
) -> Vec<bool> {
    assert_eq!(
        links.len(),
        powers.len(),
        "one power level is needed per link"
    );
    let alpha = model.alpha();
    let n = links.len();

    // Independent gain per (transmitter, receiver) pair for this slot.
    let mut gains = vec![vec![1.0f64; n]; n];
    for row in gains.iter_mut() {
        for g in row.iter_mut() {
            *g = fading.sample_gain(rng);
        }
    }

    (0..n)
        .map(|i| {
            let length = links[i].length();
            if length <= 0.0 || powers[i] <= 0.0 {
                return false;
            }
            let signal = gains[i][i] * powers[i] / length.powf(alpha);
            let mut interference = fading.sample_noise(model.noise(), rng);
            for j in 0..n {
                if j == i {
                    continue;
                }
                let d = links[j].sender_to_receiver_distance(&links[i]);
                if d <= 0.0 {
                    return false;
                }
                interference += gains[j][i] * powers[j] / d.powf(alpha);
            }
            if interference == 0.0 {
                true
            } else {
                signal / interference >= model.beta()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_geometry::rng::seeded_rng;
    use wagg_geometry::Point;

    fn well_separated_pair() -> Vec<Link> {
        vec![
            Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
            Link::new(1, Point::new(100.0, 0.0), Point::new(101.0, 0.0)),
        ]
    }

    #[test]
    fn deterministic_channel_reproduces_the_sinr_check() {
        let model = SinrModel::default();
        let links = well_separated_pair();
        let powers = slot_powers(&model, PowerMode::Uniform, &links).unwrap();
        let mut rng = seeded_rng(3);
        let outcome = faded_slot_outcome(&model, &links, &powers, FadingModel::none(), &mut rng);
        assert_eq!(outcome, vec![true, true]);
    }

    #[test]
    fn adjacent_links_fail_under_uniform_power_even_without_fading() {
        let model = SinrModel::default();
        let links = vec![
            Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
            Link::new(1, Point::new(1.5, 0.0), Point::new(2.5, 0.0)),
        ];
        let powers = slot_powers(&model, PowerMode::Uniform, &links).unwrap();
        let mut rng = seeded_rng(5);
        let outcome = faded_slot_outcome(&model, &links, &powers, FadingModel::none(), &mut rng);
        assert!(outcome.iter().any(|&ok| !ok));
    }

    #[test]
    fn global_control_powers_make_the_slot_feasible() {
        let model = SinrModel::default();
        let links = vec![
            Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
            Link::new(1, Point::new(30.0, 0.0), Point::new(24.0, 0.0)),
        ];
        let powers = slot_powers(&model, PowerMode::GlobalControl, &links).unwrap();
        let mut rng = seeded_rng(9);
        let outcome = faded_slot_outcome(&model, &links, &powers, FadingModel::none(), &mut rng);
        assert_eq!(outcome, vec![true, true]);
    }

    #[test]
    fn fading_sometimes_fails_a_marginal_link() {
        // With noise and a power exactly at the deterministic threshold, Rayleigh
        // fading fails the link roughly 1 - 1/e of the time.
        let model = SinrModel::new(3.0, 1.0, 1e-3).unwrap();
        let link = vec![Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0))];
        let threshold_power = model.beta() * model.noise();
        let mut rng = seeded_rng(11);
        let trials = 4000;
        let successes: usize = (0..trials)
            .filter(|_| {
                faded_slot_outcome(
                    &model,
                    &link,
                    &[threshold_power],
                    FadingModel::rayleigh(1.0),
                    &mut rng,
                )[0]
            })
            .count();
        let rate = successes as f64 / trials as f64;
        assert!((rate - (-1.0f64).exp()).abs() < 0.05, "success rate {rate}");
    }

    #[test]
    #[should_panic(expected = "one power level is needed per link")]
    fn mismatched_power_vector_panics() {
        let model = SinrModel::default();
        let links = well_separated_pair();
        let mut rng = seeded_rng(1);
        let _ = faded_slot_outcome(&model, &links, &[1.0], FadingModel::none(), &mut rng);
    }

    #[test]
    fn zero_length_or_zero_power_links_fail() {
        let model = SinrModel::default();
        let links = vec![Link::new(0, Point::origin(), Point::origin())];
        let mut rng = seeded_rng(2);
        assert_eq!(
            faded_slot_outcome(&model, &links, &[1.0], FadingModel::none(), &mut rng),
            vec![false]
        );
        let links = vec![Link::new(0, Point::origin(), Point::new(1.0, 0.0))];
        assert_eq!(
            faded_slot_outcome(&model, &links, &[0.0], FadingModel::none(), &mut rng),
            vec![false]
        );
    }
}
