//! Effective-rate estimation of a periodic schedule under fading.
//!
//! For every slot of the schedule the per-link success probability is
//! estimated by Monte-Carlo sampling of the faded SINR; the expected number
//! of repetitions a slot needs until its slowest link succeeds gives the
//! *effective* schedule length, and its reciprocal the effective aggregation
//! rate. The paper's robustness claim is that this rate stays within a
//! constant factor of the nominal (fading-free) rate.

use crate::error::FadingError;
use crate::model::FadingModel;
use crate::slot::{faded_slot_outcome, slot_powers};
use serde::{Deserialize, Serialize};
use wagg_geometry::rng::{derive_seed, seeded_rng};
use wagg_schedule::{PowerMode, Schedule};
use wagg_sinr::{Link, SinrModel};

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// The estimated effect of fading on a periodic schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FadingRateReport {
    /// The nominal schedule length (slots per period without fading).
    pub nominal_slots: usize,
    /// The nominal rate `1 / nominal_slots`.
    pub nominal_rate: f64,
    /// Expected slots per period once every slot is repeated until its
    /// slowest link succeeds.
    pub effective_slots: f64,
    /// The effective rate `1 / effective_slots`.
    pub effective_rate: f64,
    /// Mean per-link success probability across all scheduled transmissions.
    pub mean_success_probability: f64,
    /// The smallest per-link success probability observed.
    pub min_success_probability: f64,
    /// Expected retransmissions per link per period.
    pub expected_retransmissions_per_link: f64,
    /// Number of Monte-Carlo trials used per slot.
    pub trials: usize,
}

impl FadingRateReport {
    /// Rate degradation factor `nominal_rate / effective_rate` (1.0 when
    /// fading has no effect). The paper's robustness discussion corresponds
    /// to this factor being a constant.
    pub fn degradation(&self) -> f64 {
        if self.effective_rate <= 0.0 {
            return f64::INFINITY;
        }
        self.nominal_rate / self.effective_rate
    }
}

/// Estimates the effective rate of `schedule` over `links` under the given
/// fading model.
///
/// # Errors
///
/// Returns [`FadingError::ScheduleOutOfRange`] for schedules referencing
/// missing links, [`FadingError::InvalidParameter`] for `trials == 0`, and
/// [`FadingError::Power`] when a slot's witness powers cannot be computed.
///
/// # Examples
///
/// ```
/// use wagg_fading::{effective_rate, FadingModel};
/// use wagg_instances::random::uniform_square;
/// use wagg_schedule::{solve_static, PowerMode, SchedulerConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let inst = uniform_square(25, 80.0, 3);
/// let links = inst.mst_links()?;
/// let config = SchedulerConfig::new(PowerMode::GlobalControl);
/// let report = solve_static(&links, config);
/// let fading = effective_rate(
///     &links,
///     &report.schedule,
///     &config.model,
///     config.mode,
///     FadingModel::rayleigh(1.0),
///     200,
///     42,
/// )?;
/// assert!(fading.effective_rate > 0.0);
/// assert!(fading.degradation() >= 1.0);
/// # Ok(())
/// # }
/// ```
#[allow(clippy::too_many_arguments)]
pub fn effective_rate(
    links: &[Link],
    schedule: &Schedule,
    model: &SinrModel,
    mode: PowerMode,
    fading: FadingModel,
    trials: usize,
    seed: u64,
) -> Result<FadingRateReport, FadingError> {
    if trials == 0 {
        return Err(FadingError::InvalidParameter {
            name: "trials",
            value: 0.0,
        });
    }
    for slot in schedule.slots() {
        for &idx in slot {
            if idx >= links.len() {
                return Err(FadingError::ScheduleOutOfRange { index: idx });
            }
        }
    }

    let nominal_slots = schedule.len();

    // Each slot's Monte-Carlo run is independent by construction (its RNG is
    // seeded from `derive_seed(seed, slot_index)`), so the per-slot trials run
    // across threads under the `parallel` feature. Results are folded in slot
    // order afterwards, making the report identical to the serial build.
    let estimate_slot =
        |(slot_index, slot): (usize, &Vec<usize>)| -> Result<(f64, Vec<f64>), FadingError> {
            if slot.is_empty() {
                return Ok((1.0, Vec::new()));
            }
            let slot_links: Vec<Link> = slot.iter().map(|&idx| links[idx]).collect();
            let powers = slot_powers(model, mode, &slot_links)?;
            let mut successes = vec![0usize; slot_links.len()];
            let mut rng = seeded_rng(derive_seed(seed, slot_index as u64));
            for _ in 0..trials {
                let outcome = faded_slot_outcome(model, &slot_links, &powers, fading, &mut rng);
                for (i, &ok) in outcome.iter().enumerate() {
                    if ok {
                        successes[i] += 1;
                    }
                }
            }
            // Clamp the estimate away from zero so a link that never succeeded in
            // the sample contributes a large-but-finite repetition count.
            let probs: Vec<f64> = successes
                .iter()
                .map(|&s| (s as f64 / trials as f64).max(0.5 / trials as f64))
                .collect();
            let slowest = probs.iter().cloned().fold(f64::INFINITY, f64::min);
            Ok((1.0 / slowest, probs))
        };

    #[cfg(feature = "parallel")]
    let per_slot: Result<Vec<(f64, Vec<f64>)>, FadingError> = schedule
        .slots()
        .par_iter()
        .enumerate()
        .map(estimate_slot)
        .collect();
    #[cfg(not(feature = "parallel"))]
    let per_slot: Result<Vec<(f64, Vec<f64>)>, FadingError> = schedule
        .slots()
        .iter()
        .enumerate()
        .map(estimate_slot)
        .collect();

    let mut effective_slots = 0.0f64;
    let mut success_probs: Vec<f64> = Vec::new();
    for (slot_cost, probs) in per_slot? {
        effective_slots += slot_cost;
        success_probs.extend(probs);
    }

    let mean_success_probability = if success_probs.is_empty() {
        1.0
    } else {
        success_probs.iter().sum::<f64>() / success_probs.len() as f64
    };
    let min_success_probability = success_probs.iter().cloned().fold(1.0f64, f64::min);
    let expected_retransmissions_per_link = if success_probs.is_empty() {
        0.0
    } else {
        success_probs.iter().map(|&p| 1.0 / p - 1.0).sum::<f64>() / success_probs.len() as f64
    };

    Ok(FadingRateReport {
        nominal_slots,
        nominal_rate: if nominal_slots == 0 {
            0.0
        } else {
            1.0 / nominal_slots as f64
        },
        effective_slots,
        effective_rate: if effective_slots <= 0.0 {
            0.0
        } else {
            1.0 / effective_slots
        },
        mean_success_probability,
        min_success_probability,
        expected_retransmissions_per_link,
        trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_instances::random::uniform_square;
    use wagg_schedule::{solve_static, SchedulerConfig};

    fn scheduled(n: usize, seed: u64, mode: PowerMode) -> (Vec<Link>, Schedule, SinrModel) {
        let inst = uniform_square(n, 100.0, seed);
        let links = inst.mst_links().unwrap();
        let config = SchedulerConfig::new(mode);
        let report = solve_static(&links, config);
        (links, report.schedule, config.model)
    }

    #[test]
    fn zero_trials_and_bad_schedules_are_rejected() {
        let (links, schedule, model) = scheduled(10, 1, PowerMode::Uniform);
        assert!(matches!(
            effective_rate(
                &links,
                &schedule,
                &model,
                PowerMode::Uniform,
                FadingModel::none(),
                0,
                1
            ),
            Err(FadingError::InvalidParameter { name: "trials", .. })
        ));
        let bad = Schedule::new(vec![vec![999]]);
        assert!(matches!(
            effective_rate(
                &links,
                &bad,
                &model,
                PowerMode::Uniform,
                FadingModel::none(),
                10,
                1
            ),
            Err(FadingError::ScheduleOutOfRange { index: 999 })
        ));
    }

    #[test]
    fn deterministic_channel_has_no_degradation() {
        let (links, schedule, model) = scheduled(30, 5, PowerMode::GlobalControl);
        let report = effective_rate(
            &links,
            &schedule,
            &model,
            PowerMode::GlobalControl,
            FadingModel::none(),
            50,
            7,
        )
        .unwrap();
        assert_eq!(report.nominal_slots, schedule.len());
        assert!((report.effective_slots - schedule.len() as f64).abs() < 1e-9);
        assert!((report.degradation() - 1.0).abs() < 1e-9);
        assert_eq!(report.mean_success_probability, 1.0);
        assert_eq!(report.expected_retransmissions_per_link, 0.0);
    }

    #[test]
    fn fading_degradation_is_a_modest_constant_on_verified_schedules() {
        let (links, schedule, model) = scheduled(40, 11, PowerMode::GlobalControl);
        let report = effective_rate(
            &links,
            &schedule,
            &model,
            PowerMode::GlobalControl,
            FadingModel::rayleigh(1.0),
            300,
            13,
        )
        .unwrap();
        assert!(report.degradation() >= 1.0);
        assert!(
            report.degradation() < 25.0,
            "degradation {} unexpectedly large",
            report.degradation()
        );
        assert!(report.mean_success_probability > 0.2);
        assert!(report.min_success_probability > 0.0);
        assert!(report.expected_retransmissions_per_link >= 0.0);
    }

    #[test]
    fn estimates_are_deterministic_given_the_seed() {
        let (links, schedule, model) = scheduled(20, 3, PowerMode::mean_oblivious());
        let run = || {
            effective_rate(
                &links,
                &schedule,
                &model,
                PowerMode::mean_oblivious(),
                FadingModel::rayleigh(1.0),
                100,
                21,
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }
}
