//! Robustness of aggregation schedules under fading and noise fluctuations.
//!
//! The paper's schedules are computed against the deterministic path-loss
//! SINR model. Section 3.1 ("Robustness and temporal variability") argues
//! that sporadic fluctuations — Rayleigh fading, noise variation — do not
//! change the picture materially as long as an acknowledgment/retransmission
//! mechanism is in place. This crate makes that claim measurable:
//!
//! * [`model`] — the stochastic channel: Rayleigh (exponential power gain)
//!   fading per transmission, optional log-normal noise fluctuation, and the
//!   closed-form success probability of an isolated faded link,
//! * [`slot`] — the outcome of one faded slot: which of the concurrently
//!   transmitting links meet the SINR threshold once the sampled gains are
//!   applied,
//! * [`arq`] — an acknowledgment/retransmission convergecast: one aggregation
//!   wave over the scheduled tree where failed transmissions are retried in
//!   the link's next scheduled slot,
//! * [`montecarlo`] — the effective (fading-degraded) rate of a periodic
//!   schedule, estimated from per-slot success probabilities.
//!
//! # Examples
//!
//! ```
//! use wagg_fading::{ArqConvergecast, ArqConfig, FadingModel};
//! use wagg_instances::random::uniform_square;
//! use wagg_schedule::{solve_static, PowerMode, SchedulerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let inst = uniform_square(30, 100.0, 7);
//! let links = inst.mst_links()?;
//! let config = SchedulerConfig::new(PowerMode::GlobalControl);
//! let report = solve_static(&links, config);
//!
//! let sim = ArqConvergecast::new(&links, &report.schedule)?;
//! let outcome = sim.run(&config.model, config.mode, FadingModel::rayleigh(1.0), ArqConfig::default())?;
//! assert!(outcome.completed);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arq;
pub mod error;
pub mod model;
pub mod montecarlo;
pub mod slot;

pub use arq::{ArqConfig, ArqConvergecast, ArqReport};
pub use error::FadingError;
pub use model::FadingModel;
pub use montecarlo::{effective_rate, FadingRateReport};
pub use slot::{faded_slot_outcome, slot_powers};
