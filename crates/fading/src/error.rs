//! Error type for the fading layer.

use std::error::Error;
use std::fmt;

/// Errors raised by the fading simulations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FadingError {
    /// A fading parameter (mean gain, noise sigma) is not positive and finite.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was supplied.
        value: f64,
    },
    /// A link does not carry sender/receiver node identifiers.
    MissingNodeIds {
        /// Identifier of the offending link.
        link: usize,
    },
    /// A node is the sender of more than one link.
    MultipleParents {
        /// The offending node index.
        node: usize,
    },
    /// The links do not form a tree directed towards a single sink.
    NotAConvergecastTree,
    /// The schedule references a link index that does not exist.
    ScheduleOutOfRange {
        /// The offending index.
        index: usize,
    },
    /// Computing the transmission powers for a slot failed (degenerate link
    /// geometry or an infeasible slot under global power control).
    Power(wagg_sinr::SinrError),
}

impl fmt::Display for FadingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FadingError::InvalidParameter { name, value } => {
                write!(
                    f,
                    "fading parameter {name} = {value} is not positive and finite"
                )
            }
            FadingError::MissingNodeIds { link } => {
                write!(f, "link {link} carries no sender/receiver node identifiers")
            }
            FadingError::MultipleParents { node } => {
                write!(f, "node {node} is the sender of more than one link")
            }
            FadingError::NotAConvergecastTree => {
                write!(f, "links do not form a tree directed towards a single sink")
            }
            FadingError::ScheduleOutOfRange { index } => {
                write!(f, "schedule references non-existent link index {index}")
            }
            FadingError::Power(e) => write!(f, "slot power computation failed: {e}"),
        }
    }
}

impl Error for FadingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FadingError::Power(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wagg_sinr::SinrError> for FadingError {
    fn from(e: wagg_sinr::SinrError) -> Self {
        FadingError::Power(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let errors = [
            FadingError::InvalidParameter {
                name: "mean_gain",
                value: -1.0,
            },
            FadingError::MissingNodeIds { link: 2 },
            FadingError::MultipleParents { node: 4 },
            FadingError::NotAConvergecastTree,
            FadingError::ScheduleOutOfRange { index: 10 },
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn power_errors_expose_their_source() {
        let err: FadingError =
            wagg_sinr::SinrError::PowerIterationDiverged { iterations: 5 }.into();
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync_and_static() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<FadingError>();
    }
}
