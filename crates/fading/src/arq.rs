//! Acknowledgment/retransmission convergecast over a faded channel.
//!
//! The simulation runs one *aggregation wave*: every non-sink node holds one
//! (aggregated) packet for its parent, a node may transmit once all its
//! children have delivered, transmissions happen in the link's scheduled
//! slots, and a failed transmission (fading pushed the SINR below the
//! threshold) is simply retried at the link's next scheduled slot — the
//! acknowledgment mechanism Sec. 3.1 assumes.

use crate::error::FadingError;
use crate::model::FadingModel;
use crate::slot::{faded_slot_outcome, slot_powers};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wagg_geometry::rng::seeded_rng;
use wagg_schedule::{PowerMode, Schedule};
use wagg_sinr::{Link, SinrModel};

/// Configuration of an ARQ run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArqConfig {
    /// Hard cap on simulated slots.
    pub max_slots: usize,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

impl Default for ArqConfig {
    fn default() -> Self {
        ArqConfig {
            max_slots: 100_000,
            seed: 0,
        }
    }
}

/// The outcome of one ARQ aggregation wave.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArqReport {
    /// Whether every node's contribution reached the sink within the budget.
    pub completed: bool,
    /// Slots elapsed until completion (or the budget when not completed).
    pub slots_to_complete: usize,
    /// Slots one wave takes on the same schedule without fading (the
    /// deterministic baseline measured by running the same wave with a
    /// deterministic channel).
    pub ideal_slots: usize,
    /// Total transmission attempts.
    pub attempts: usize,
    /// Successful transmissions (always the number of links when completed).
    pub successes: usize,
    /// Failed attempts that had to be retried.
    pub retransmissions: usize,
    /// The largest number of attempts any single link needed.
    pub max_attempts_per_link: usize,
}

impl ArqReport {
    /// Completion-time inflation caused by fading: `slots_to_complete /
    /// ideal_slots` (1.0 when fading changes nothing).
    pub fn slowdown(&self) -> f64 {
        if self.ideal_slots == 0 {
            return 1.0;
        }
        self.slots_to_complete as f64 / self.ideal_slots as f64
    }

    /// Fraction of attempts that failed.
    pub fn loss_rate(&self) -> f64 {
        if self.attempts == 0 {
            return 0.0;
        }
        self.retransmissions as f64 / self.attempts as f64
    }
}

/// An ARQ convergecast simulator bound to a tree (its links) and a periodic
/// schedule of those links.
#[derive(Debug, Clone)]
pub struct ArqConvergecast {
    links: Vec<Link>,
    schedule: Schedule,
    /// Children of each node (node indices are the original pointset ids).
    children: HashMap<usize, Vec<usize>>,
    /// `link_of_sender[s]` = index of the link s transmits on.
    link_of_sender: HashMap<usize, usize>,
    sink: usize,
}

impl ArqConvergecast {
    /// Builds the simulator.
    ///
    /// # Errors
    ///
    /// Returns a [`FadingError`] if the links lack node identifiers, a node
    /// has several parents, the digraph is not a tree towards a single sink,
    /// or the schedule references missing links.
    pub fn new(links: &[Link], schedule: &Schedule) -> Result<Self, FadingError> {
        for slot in schedule.slots() {
            for &idx in slot {
                if idx >= links.len() {
                    return Err(FadingError::ScheduleOutOfRange { index: idx });
                }
            }
        }
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut link_of_sender: HashMap<usize, usize> = HashMap::new();
        let mut children: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut nodes: Vec<usize> = Vec::new();
        for (idx, link) in links.iter().enumerate() {
            let (s, r) = match (link.sender_node, link.receiver_node) {
                (Some(s), Some(r)) => (s.index(), r.index()),
                _ => {
                    return Err(FadingError::MissingNodeIds {
                        link: link.id.index(),
                    })
                }
            };
            if parent.insert(s, r).is_some() {
                return Err(FadingError::MultipleParents { node: s });
            }
            link_of_sender.insert(s, idx);
            children.entry(r).or_default().push(s);
            for v in [s, r] {
                if !nodes.contains(&v) {
                    nodes.push(v);
                }
            }
        }
        let sinks: Vec<usize> = nodes
            .iter()
            .copied()
            .filter(|v| !parent.contains_key(v))
            .collect();
        if sinks.len() != 1 {
            return Err(FadingError::NotAConvergecastTree);
        }
        let sink = sinks[0];
        // Reachability check: every node walks up to the sink.
        for &v in &nodes {
            let mut cur = v;
            let mut steps = 0;
            while cur != sink {
                match parent.get(&cur) {
                    Some(&p) => cur = p,
                    None => return Err(FadingError::NotAConvergecastTree),
                }
                steps += 1;
                if steps > nodes.len() {
                    return Err(FadingError::NotAConvergecastTree);
                }
            }
        }
        Ok(ArqConvergecast {
            links: links.to_vec(),
            schedule: schedule.clone(),
            children,
            link_of_sender,
            sink,
        })
    }

    /// The sink node.
    pub fn sink(&self) -> usize {
        self.sink
    }

    /// Number of links (equivalently, non-sink nodes).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Runs one aggregation wave over the faded channel and, for the
    /// `ideal_slots` baseline, the same wave over the deterministic channel.
    ///
    /// # Errors
    ///
    /// Returns [`FadingError::Power`] when a slot's witness powers cannot be
    /// computed under global power control.
    pub fn run(
        &self,
        model: &SinrModel,
        mode: PowerMode,
        fading: FadingModel,
        config: ArqConfig,
    ) -> Result<ArqReport, FadingError> {
        let ideal = self.run_once(model, mode, FadingModel::none(), config)?;
        if !fading.is_stochastic() {
            let mut report = ideal;
            report.ideal_slots = report.slots_to_complete;
            return Ok(report);
        }
        let mut faded = self.run_once(model, mode, fading, config)?;
        faded.ideal_slots = ideal.slots_to_complete;
        Ok(faded)
    }

    fn run_once(
        &self,
        model: &SinrModel,
        mode: PowerMode,
        fading: FadingModel,
        config: ArqConfig,
    ) -> Result<ArqReport, FadingError> {
        let mut rng = seeded_rng(config.seed);
        let num_links = self.links.len();
        let mut delivered = vec![false; num_links];
        let mut attempts_per_link = vec![0usize; num_links];
        let mut attempts = 0usize;
        let mut successes = 0usize;
        let schedule_len = self.schedule.len().max(1);

        let pending_children = |sender: usize, delivered: &[bool]| -> bool {
            self.children
                .get(&sender)
                .map(|cs| {
                    cs.iter().any(|c| {
                        let link = self.link_of_sender[c];
                        !delivered[link]
                    })
                })
                .unwrap_or(false)
        };

        let mut slot = 0usize;
        let mut completed_at = None;
        while slot < config.max_slots {
            if delivered.iter().all(|&d| d) {
                completed_at = Some(slot);
                break;
            }
            let scheduled = if self.schedule.is_empty() {
                &[][..]
            } else {
                self.schedule.slot(slot % schedule_len)
            };
            // Links transmit when scheduled, not yet delivered, and ready
            // (their sender has aggregated every child's packet).
            let active: Vec<usize> = scheduled
                .iter()
                .copied()
                .filter(|&idx| {
                    if delivered[idx] {
                        return false;
                    }
                    let sender = self.links[idx]
                        .sender_node
                        .expect("validated at construction")
                        .index();
                    !pending_children(sender, &delivered)
                })
                .collect();
            if !active.is_empty() {
                let active_links: Vec<Link> = active.iter().map(|&idx| self.links[idx]).collect();
                let powers = slot_powers(model, mode, &active_links)?;
                let outcome = faded_slot_outcome(model, &active_links, &powers, fading, &mut rng);
                for (pos, &idx) in active.iter().enumerate() {
                    attempts += 1;
                    attempts_per_link[idx] += 1;
                    if outcome[pos] {
                        delivered[idx] = true;
                        successes += 1;
                    }
                }
            }
            slot += 1;
        }
        if completed_at.is_none() && delivered.iter().all(|&d| d) {
            completed_at = Some(slot);
        }

        Ok(ArqReport {
            completed: completed_at.is_some(),
            slots_to_complete: completed_at.unwrap_or(config.max_slots),
            ideal_slots: 0,
            attempts,
            successes,
            retransmissions: attempts - successes,
            max_attempts_per_link: attempts_per_link.iter().copied().max().unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_geometry::Point;
    use wagg_instances::random::uniform_square;
    use wagg_schedule::{solve_static, SchedulerConfig};
    use wagg_sinr::NodeId;

    fn scheduled_instance(
        n: usize,
        seed: u64,
        mode: PowerMode,
    ) -> (Vec<Link>, Schedule, SinrModel) {
        let inst = uniform_square(n, 100.0, seed);
        let links = inst.mst_links().unwrap();
        let config = SchedulerConfig::new(mode);
        let report = solve_static(&links, config);
        (links, report.schedule, config.model)
    }

    #[test]
    fn malformed_trees_are_rejected() {
        let schedule = Schedule::new(vec![vec![0]]);
        let links = vec![Link::new(0, Point::origin(), Point::new(1.0, 0.0))];
        assert!(matches!(
            ArqConvergecast::new(&links, &schedule),
            Err(FadingError::MissingNodeIds { .. })
        ));
        let schedule = Schedule::new(vec![vec![5]]);
        let links = vec![Link::with_nodes(
            0,
            Point::origin(),
            Point::new(1.0, 0.0),
            NodeId(1),
            NodeId(0),
        )];
        assert!(matches!(
            ArqConvergecast::new(&links, &schedule),
            Err(FadingError::ScheduleOutOfRange { index: 5 })
        ));
    }

    #[test]
    fn deterministic_channel_completes_without_retransmissions() {
        let (links, schedule, model) = scheduled_instance(30, 4, PowerMode::GlobalControl);
        let sim = ArqConvergecast::new(&links, &schedule).unwrap();
        let report = sim
            .run(
                &model,
                PowerMode::GlobalControl,
                FadingModel::none(),
                ArqConfig::default(),
            )
            .unwrap();
        assert!(report.completed);
        assert_eq!(report.retransmissions, 0);
        assert_eq!(report.successes, links.len());
        assert_eq!(report.slowdown(), 1.0);
        assert_eq!(report.loss_rate(), 0.0);
        assert_eq!(report.max_attempts_per_link, 1);
    }

    #[test]
    fn noise_free_fading_changes_nothing_for_isolated_slots() {
        // With a noise-free model and a verified schedule, fading multiplies both
        // signal and interference by unit-mean gains; failures are possible but the
        // wave still completes with a modest slowdown.
        let (links, schedule, model) = scheduled_instance(40, 9, PowerMode::GlobalControl);
        let sim = ArqConvergecast::new(&links, &schedule).unwrap();
        let report = sim
            .run(
                &model,
                PowerMode::GlobalControl,
                FadingModel::rayleigh(1.0),
                ArqConfig {
                    max_slots: 200_000,
                    seed: 3,
                },
            )
            .unwrap();
        assert!(report.completed, "wave did not complete under fading");
        assert!(report.slowdown() >= 1.0);
        assert!(
            report.slowdown() < 30.0,
            "fading slowdown {} unexpectedly large",
            report.slowdown()
        );
        assert_eq!(report.successes, links.len());
    }

    #[test]
    fn oblivious_power_wave_completes_under_fading() {
        let (links, schedule, model) = scheduled_instance(25, 12, PowerMode::mean_oblivious());
        let sim = ArqConvergecast::new(&links, &schedule).unwrap();
        let report = sim
            .run(
                &model,
                PowerMode::mean_oblivious(),
                FadingModel::rayleigh(1.0).with_noise_sigma(0.1).unwrap(),
                ArqConfig {
                    max_slots: 200_000,
                    seed: 7,
                },
            )
            .unwrap();
        assert!(report.completed);
        assert!(report.attempts >= links.len());
        assert_eq!(report.retransmissions, report.attempts - report.successes);
    }

    #[test]
    fn runs_are_deterministic_given_the_seed() {
        let (links, schedule, model) = scheduled_instance(20, 2, PowerMode::GlobalControl);
        let sim = ArqConvergecast::new(&links, &schedule).unwrap();
        let config = ArqConfig {
            max_slots: 100_000,
            seed: 99,
        };
        let a = sim
            .run(
                &model,
                PowerMode::GlobalControl,
                FadingModel::rayleigh(1.0),
                config,
            )
            .unwrap();
        let b = sim
            .run(
                &model,
                PowerMode::GlobalControl,
                FadingModel::rayleigh(1.0),
                config,
            )
            .unwrap();
        assert_eq!(a, b);
    }
}
