//! Per-shard incremental maintenance: churn events touch only the owning
//! shard and its halo neighbours.
//!
//! [`PartitionedEngine`] keeps one `wagg_engine::InterferenceEngine` per
//! tile of a fixed [`TileLayout`]. A link lives in its **owner** shard (the
//! tile containing its midpoint) and as a **ghost** copy in every shard its
//! halo-expanded bounding box overlaps — the same ownership rule the static
//! [`PartitionLayout`](crate::PartitionLayout) uses, so the stitching
//! invariants carry over: interior links have no cross-shard conflicts and
//! every cross-shard conflict edge is present in both owners' member
//! graphs. An insert or removal therefore updates a handful of engines
//! (each incrementally, in `O(affected neighbourhood)`), never all of them.
//!
//! Because the tiling and its halo margin are fixed at construction, the
//! engine declares the deployment extent and the link length bounds up
//! front; inserting a link outside the declared length bounds would silently
//! break the ghosting invariant, so it panics instead.
//!
//! # Examples
//!
//! ```
//! use wagg_geometry::{BoundingBox, Point};
//! use wagg_partition::{PartitionedEngine, PartitionedEngineConfig};
//! use wagg_schedule::{PowerMode, SchedulerConfig};
//!
//! let scheduler = SchedulerConfig::new(PowerMode::mean_oblivious());
//! let config = PartitionedEngineConfig::new(
//!     scheduler,
//!     BoundingBox::new(0.0, 0.0, 100.0, 100.0),
//!     (1.0, 2.0), // declared link length bounds
//!     4,
//! );
//! let mut engine = PartitionedEngine::new(config);
//! let a = engine.insert_link(Point::new(10.0, 10.0), Point::new(11.0, 10.0));
//! let _b = engine.insert_link(Point::new(80.0, 80.0), Point::new(81.0, 80.0));
//! engine.remove_link(a).unwrap();
//! let sharded = engine.schedule();
//! assert!(sharded.report.schedule.is_partition(engine.len()));
//! ```

use crate::layout::conflict_radius_bound;
use crate::pipeline::{self, ShardPieces};
use crate::verify::VerifierStrategy;
use crate::ShardedReport;
use std::collections::BTreeMap;
use wagg_engine::{EngineConfig, EngineError, InterferenceEngine};
use wagg_geometry::logmath::{log_log2, log_star};
use wagg_geometry::tiling::TileLayout;
use wagg_geometry::{BoundingBox, Point};
use wagg_obs::Recorder;
use wagg_schedule::{Schedule, ScheduleReport, SchedulerConfig};
use wagg_sinr::link::link_diversity;
use wagg_sinr::Link;

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Configuration of a [`PartitionedEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionedEngineConfig {
    /// The scheduler configuration shard schedules are computed for (fixes
    /// the conflict relation the shard engines maintain).
    pub scheduler: SchedulerConfig,
    /// The deployment region the tiling covers (links outside it clamp to
    /// border tiles — correct, just less balanced).
    pub extent: BoundingBox,
    /// Declared bounds `(min, max)` on every inserted link's length; they
    /// size the halo margin, so they are enforced per insert.
    pub length_bounds: (f64, f64),
    /// Target shard count (the halo-derived minimum tile side may cap it).
    pub target_shards: usize,
    /// The far-field strategy of the certified slot verifier
    /// ([`PartitionedEngine::schedule`]'s verification passes); defaults to
    /// the hierarchical pyramid.
    pub verifier: VerifierStrategy,
}

impl PartitionedEngineConfig {
    /// A configuration over `extent` for links with lengths in
    /// `length_bounds`, aiming for `target_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics when the bounds are not `0 < min ≤ max < ∞`, the extent is not
    /// finite, or `target_shards == 0`.
    pub fn new(
        scheduler: SchedulerConfig,
        extent: BoundingBox,
        length_bounds: (f64, f64),
        target_shards: usize,
    ) -> Self {
        let (lo, hi) = length_bounds;
        assert!(
            lo > 0.0 && lo <= hi && hi.is_finite(),
            "length bounds must satisfy 0 < min <= max < inf"
        );
        assert!(target_shards > 0, "need at least one shard");
        assert!(
            extent.min_x.is_finite()
                && extent.min_y.is_finite()
                && extent.max_x.is_finite()
                && extent.max_y.is_finite(),
            "extent must be finite"
        );
        PartitionedEngineConfig {
            scheduler,
            extent,
            length_bounds,
            target_shards,
            verifier: VerifierStrategy::default(),
        }
    }

    /// Replaces the slot-verifier far-field strategy.
    pub fn with_verifier(mut self, verifier: VerifierStrategy) -> Self {
        self.verifier = verifier;
        self
    }
}

/// Aggregate maintenance accounting across the shard engines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionedStats {
    /// Live links (each counted once, not per copy).
    pub links: usize,
    /// Ghost copies currently held by non-owner shards.
    pub ghost_copies: usize,
    /// Shards (tiles) in the decomposition.
    pub shards: usize,
    /// Engine events applied across all shards (inserts + removals,
    /// including ghost-copy maintenance).
    pub events: usize,
}

/// Where one link lives: its owner shard/slot plus its ghost copies.
#[derive(Debug, Clone)]
struct LinkSites {
    owner_shard: u32,
    owner_slot: u32,
    /// `(shard, slot)` of each ghost copy, ascending by shard.
    ghosts: Vec<(u32, u32)>,
}

/// A sharded, incrementally maintained link universe with a stitched
/// scheduler (see the [module docs](self)).
#[derive(Debug)]
pub struct PartitionedEngine {
    config: PartitionedEngineConfig,
    tiles: TileLayout,
    radius: f64,
    halo: f64,
    engines: Vec<InterferenceEngine>,
    /// Per shard, per engine slot: `(key, owned)` of the link in the slot.
    meta: Vec<Vec<Option<(u64, bool)>>>,
    /// Key → placement; BTreeMap so iteration (and thus scheduling) is
    /// deterministic.
    sites: BTreeMap<u64, LinkSites>,
    next_key: u64,
    /// Instrumentation sink (disabled by default — see `wagg-obs`).
    recorder: Recorder,
}

impl PartitionedEngine {
    /// An empty engine over the configured tiling.
    pub fn new(config: PartitionedEngineConfig) -> Self {
        let relation = config
            .scheduler
            .mode
            .conflict_relation(config.scheduler.model.alpha());
        let radius = conflict_radius_bound(config.length_bounds, config.length_bounds, relation);
        let halo = radius + config.length_bounds.1 / 2.0;
        let tiles = TileLayout::cover(&config.extent, config.target_shards, 2.0 * halo);
        let engines = (0..tiles.tiles())
            .map(|_| InterferenceEngine::new(EngineConfig::for_scheduler(config.scheduler)))
            .collect::<Vec<_>>();
        let meta = vec![Vec::new(); tiles.tiles()];
        PartitionedEngine {
            config,
            tiles,
            radius,
            halo,
            engines,
            meta,
            sites: BTreeMap::new(),
            next_key: 0,
            recorder: Recorder::disabled(),
        }
    }

    /// Bulk-seeds an engine from a link set, assigning keys `0..n` in input
    /// order. State-equivalent to `n` [`PartitionedEngine::insert_link`]
    /// calls — same slots, same sites, and (since engine snapshots are
    /// canonical) the same schedules — but each shard engine is built once
    /// through the grid-accelerated `InterferenceEngine::with_links` instead
    /// of `n` incremental conflict-row recomputations. This is the
    /// restart-in-seconds path: re-materialising a large engine from a
    /// session snapshot costs seconds where sequential insertion costs
    /// minutes. (Maintenance accounting differs: bulk-built shard engines
    /// start with zeroed event counters.)
    ///
    /// # Panics
    ///
    /// Panics when a link's length is outside the configured bounds.
    pub fn with_links(config: PartitionedEngineConfig, links: &[Link]) -> Self {
        let mut engine = PartitionedEngine::new(config);
        let shards = engine.engines.len();
        // Stage per-shard insertion sequences in key order: the j-th staged
        // link of a shard lands in engine slot j, exactly where the
        // sequential insert path (owner first, then ghosts, ascending keys)
        // would have put it.
        let mut staged: Vec<Vec<Link>> = vec![Vec::new(); shards];
        let mut staged_meta: Vec<Vec<Option<(u64, bool)>>> = vec![Vec::new(); shards];
        for (key, link) in links.iter().enumerate() {
            let key = key as u64;
            engine.assert_length_bounds(link.sender, link.receiver);
            let (owner, ghost_tiles) = engine.site_tiles(link.sender, link.receiver);
            // `insert_link` stores bare `Link::new(slot, ..)` values (node
            // annotations are session-side); `with_links` relabels ids to
            // slots, so staging id 0 reproduces the sequential state.
            let bare = Link::new(0, link.sender, link.receiver);
            let owner_slot = staged[owner].len() as u32;
            staged[owner].push(bare);
            staged_meta[owner].push(Some((key, true)));
            let mut ghosts = Vec::with_capacity(ghost_tiles.len());
            for t in ghost_tiles {
                ghosts.push((t as u32, staged[t].len() as u32));
                staged[t].push(bare);
                staged_meta[t].push(Some((key, false)));
            }
            engine.sites.insert(
                key,
                LinkSites {
                    owner_shard: owner as u32,
                    owner_slot,
                    ghosts,
                },
            );
        }
        engine.next_key = links.len() as u64;
        engine.meta = staged_meta;
        let econfig = EngineConfig::for_scheduler(config.scheduler);
        let build = |shard_links: &Vec<Link>| -> InterferenceEngine {
            InterferenceEngine::with_links(econfig.clone(), shard_links)
        };
        #[cfg(feature = "parallel")]
        {
            engine.engines = staged.par_iter().map(build).collect();
        }
        #[cfg(not(feature = "parallel"))]
        {
            engine.engines = staged.iter().map(build).collect();
        }
        engine
    }

    /// Routes the engine's instrumentation to `rec`: every shard engine's
    /// maintenance counters (`engine.rows_recomputed` etc.), the pipeline's
    /// `partition/*` phase spans and occupancy counters, and the certified
    /// verifier's `verifier.*` counters. A disabled recorder (the default)
    /// keeps all of it no-op.
    pub fn set_recorder(&mut self, rec: Recorder) {
        for engine in &mut self.engines {
            engine.set_recorder(rec.clone());
        }
        self.recorder = rec;
    }

    /// The engine's configuration.
    pub fn config(&self) -> &PartitionedEngineConfig {
        &self.config
    }

    /// Number of live links.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no links are live.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Number of shards in the decomposition.
    pub fn shard_count(&self) -> usize {
        self.engines.len()
    }

    /// Live links (owned + ghost copies) in `shard`.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.engines[shard].len()
    }

    /// The conflict radius the tiling was sized for.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Links currently ghosted into at least one neighbouring shard.
    pub fn boundary_link_count(&self) -> usize {
        self.sites.values().filter(|s| !s.ghosts.is_empty()).count()
    }

    /// The keys of every live link conflicting with `key`, ascending, or
    /// `None` for unknown keys. Reads only the owner shard: the halo
    /// invariant keeps every conflict partner of an owned link present there
    /// (owned or ghosted), so the owner shard's incrementally maintained
    /// adjacency row is already the link's complete global neighbourhood.
    pub fn neighbor_keys(&self, key: u64) -> Option<Vec<u64>> {
        let site = self.sites.get(&key)?;
        let shard = site.owner_shard as usize;
        let mut keys: Vec<u64> = self.engines[shard]
            .neighbors(site.owner_slot as usize)
            .into_iter()
            .map(|w| self.meta[shard][w].expect("adjacent slot is live").0)
            .collect();
        keys.sort_unstable();
        debug_assert!(
            keys.windows(2).all(|w| w[0] != w[1]),
            "owner shard holds one copy per key"
        );
        Some(keys)
    }

    /// Aggregate accounting.
    pub fn stats(&self) -> PartitionedStats {
        let ghost_copies = self.sites.values().map(|s| s.ghosts.len()).sum();
        let events = self
            .engines
            .iter()
            .map(|e| {
                let s = e.stats();
                s.inserts + s.removals
            })
            .sum();
        PartitionedStats {
            links: self.sites.len(),
            ghost_copies,
            shards: self.engines.len(),
            events,
        }
    }

    /// The ownership rule, in one place: the owner tile (under the
    /// midpoint) and the ghost tiles (halo-expanded bounding-box overlap,
    /// owner excluded) of a link at this geometry. Everything that places,
    /// re-places or predicts placement must go through here — the stitching
    /// invariants depend on all of them agreeing.
    fn site_tiles(&self, sender: Point, receiver: Point) -> (usize, Vec<usize>) {
        let owner = self.tiles.tile_of(sender.midpoint(receiver));
        let bbox = BoundingBox::of_segment(sender, receiver);
        let mut ghosts = Vec::new();
        self.tiles.for_each_tile_overlapping(&bbox, self.halo, |t| {
            if t != owner {
                ghosts.push(t);
            }
        });
        (owner, ghosts)
    }

    /// Validates the declared length bounds for an insertion at this
    /// geometry (the halo margin — and with it the correctness of the
    /// decomposition — is sized from them).
    fn assert_length_bounds(&self, sender: Point, receiver: Point) {
        let len = sender.distance(receiver);
        let (lo, hi) = self.config.length_bounds;
        assert!(
            len >= lo && len <= hi,
            "link length {len} outside the configured bounds [{lo}, {hi}]"
        );
    }

    /// Places a link into its owner and ghost engines under `key` and
    /// records the sites.
    fn place_link(&mut self, key: u64, sender: Point, receiver: Point) {
        let (owner, ghost_tiles) = self.site_tiles(sender, receiver);
        let owner_slot = self.place(owner, sender, receiver, key, true);
        let mut ghosts = Vec::with_capacity(ghost_tiles.len());
        for t in ghost_tiles {
            let slot = self.place(t, sender, receiver, key, false);
            ghosts.push((t as u32, slot as u32));
        }
        self.sites.insert(
            key,
            LinkSites {
                owner_shard: owner as u32,
                owner_slot: owner_slot as u32,
                ghosts,
            },
        );
    }

    /// The number of shards an insert at this geometry would touch (owner
    /// plus ghosts) — 1 for interior links.
    pub fn shards_touched(&self, sender: Point, receiver: Point) -> usize {
        1 + self.site_tiles(sender, receiver).1.len()
    }

    /// Inserts a link, returning its stable key.
    ///
    /// # Panics
    ///
    /// Panics when the link's length is outside the configured bounds.
    pub fn insert_link(&mut self, sender: Point, receiver: Point) -> u64 {
        self.assert_length_bounds(sender, receiver);
        let key = self.next_key;
        self.next_key += 1;
        self.place_link(key, sender, receiver);
        key
    }

    /// Inserts into one shard engine and records the slot's metadata.
    fn place(
        &mut self,
        shard: usize,
        sender: Point,
        receiver: Point,
        key: u64,
        owned: bool,
    ) -> usize {
        let slot = self.engines[shard].insert_link(sender, receiver);
        let meta = &mut self.meta[shard];
        if slot >= meta.len() {
            meta.resize(slot + 1, None);
        }
        meta[slot] = Some((key, owned));
        slot
    }

    /// Removes the link under `key` from its owner shard and every ghost.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTraceKey`] when no live link has this key.
    pub fn remove_link(&mut self, key: u64) -> Result<(), EngineError> {
        let sites = self
            .sites
            .remove(&key)
            .ok_or(EngineError::UnknownTraceKey { key })?;
        self.engines[sites.owner_shard as usize].remove_link(sites.owner_slot as usize)?;
        self.meta[sites.owner_shard as usize][sites.owner_slot as usize] = None;
        for &(shard, slot) in &sites.ghosts {
            self.engines[shard as usize].remove_link(slot as usize)?;
            self.meta[shard as usize][slot as usize] = None;
        }
        Ok(())
    }

    /// Moves the link under `key` to a new geometry, re-deriving its owner
    /// and ghost shards (the key stays stable).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTraceKey`] when no live link has this key.
    ///
    /// # Panics
    ///
    /// Panics when the new length is outside the configured bounds.
    pub fn relocate_link(
        &mut self,
        key: u64,
        sender: Point,
        receiver: Point,
    ) -> Result<(), EngineError> {
        if !self.sites.contains_key(&key) {
            return Err(EngineError::UnknownTraceKey { key });
        }
        self.assert_length_bounds(sender, receiver);
        self.remove_link(key)?;
        // Re-place under the original key.
        self.place_link(key, sender, receiver);
        Ok(())
    }

    /// The live links, ascending by key, relabeled to contiguous ids — the
    /// link universe [`PartitionedEngine::schedule`] schedules.
    pub fn links(&self) -> Vec<Link> {
        self.sites
            .iter()
            .enumerate()
            .map(|(gid, (_, sites))| {
                let mut link = *self.engines[sites.owner_shard as usize]
                    .link(sites.owner_slot as usize)
                    .expect("owner slot is live");
                link.id = gid.into();
                link
            })
            .collect()
    }

    /// Schedules the current link universe through the sharded pipeline,
    /// reusing every shard engine's incrementally maintained conflict state
    /// (member graphs are engine snapshots — no geometric rebuild).
    pub fn schedule(&self) -> ShardedReport {
        let config = self.config.scheduler;
        let root = self.recorder.span("partition");
        let assemble_phase = root.child("assemble");
        let links = self.links();
        // gid lookup by key (keys ascending = gid order).
        let keys: Vec<u64> = self.sites.keys().copied().collect();
        let gid_of = |key: u64| -> usize { keys.binary_search(&key).expect("live key") };

        let assemble = |s: usize| -> ShardPieces {
            let engine = &self.engines[s];
            let (_, graph) = engine.snapshot();
            let live = engine.live_slots();
            let mut member_globals = Vec::with_capacity(live.len());
            let mut owned_local = Vec::new();
            for (local, &slot) in live.iter().enumerate() {
                let (key, owned) = self.meta[s][slot].expect("live slot has metadata");
                member_globals.push(gid_of(key));
                if owned {
                    owned_local.push(local);
                }
            }
            ShardPieces {
                member_globals,
                owned_local,
                graph,
                parity: self.tiles.parity(s),
            }
        };
        #[cfg(feature = "parallel")]
        let pieces: Vec<ShardPieces> = (0..self.engines.len())
            .into_par_iter()
            .map(assemble)
            .collect();
        #[cfg(not(feature = "parallel"))]
        let pieces: Vec<ShardPieces> = (0..self.engines.len()).map(assemble).collect();
        assemble_phase.finish();

        let mut boundary = vec![false; links.len()];
        for (gid, sites) in self.sites.values().enumerate() {
            boundary[gid] = !sites.ghosts.is_empty();
        }
        let mut owner_of = vec![(0u32, 0u32); links.len()];
        for (pi, piece) in pieces.iter().enumerate() {
            for &local in &piece.owned_local {
                owner_of[piece.member_globals[local]] = (pi as u32, local as u32);
            }
        }
        let outcome = pipeline::schedule_pieces(
            &links,
            &pieces,
            &boundary,
            &owner_of,
            config,
            self.config.verifier,
            &self.recorder,
        );
        root.finish();

        let diversity = link_diversity(&links).unwrap_or(1.0);
        let report = ScheduleReport {
            verified_slots: outcome.slots.len(),
            coloring_slots: outcome.coloring_slots,
            schedule: Schedule::new(outcome.slots),
            diversity,
            log_star_diversity: log_star(diversity),
            log_log_diversity: log_log2(diversity),
            mode: config.mode,
            num_links: links.len(),
        };
        ShardedReport {
            report,
            shards: self.engines.len(),
            radius: self.radius,
            boundary_links: outcome.boundary_links,
            repaired_links: outcome.repaired_links,
            evicted_links: outcome.evicted_links,
            max_owned: outcome.max_owned,
            mean_owned: outcome.mean_owned,
            ghost_fraction: outcome.ghost_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_schedule::PowerMode;

    fn engine(shards: usize) -> PartitionedEngine {
        PartitionedEngine::new(PartitionedEngineConfig::new(
            SchedulerConfig::new(PowerMode::mean_oblivious()),
            BoundingBox::new(0.0, 0.0, 120.0, 120.0),
            (1.0, 1.5),
            shards,
        ))
    }

    #[test]
    fn inserts_route_to_owner_and_halo_neighbours_only() {
        let mut e = engine(16);
        assert!(e.shard_count() >= 4);
        // A link well inside a tile touches exactly one shard.
        let interior = e.insert_link(Point::new(15.0, 15.0), Point::new(16.0, 15.0));
        assert_eq!(e.stats().ghost_copies, 0);
        // A link near a tile border is ghosted into the neighbouring shard.
        let tile = e.tiles.tile_size();
        let near = e.insert_link(Point::new(tile - 0.5, 15.0), Point::new(tile + 0.5, 15.0));
        assert!(e.stats().ghost_copies >= 1);
        assert_eq!(e.len(), 2);
        e.remove_link(interior).unwrap();
        e.remove_link(near).unwrap();
        assert!(e.is_empty());
        assert_eq!(e.stats().ghost_copies, 0);
    }

    #[test]
    fn unknown_keys_error() {
        let mut e = engine(4);
        assert_eq!(
            e.remove_link(3),
            Err(EngineError::UnknownTraceKey { key: 3 })
        );
        assert_eq!(
            e.relocate_link(3, Point::origin(), Point::on_line(1.0)),
            Err(EngineError::UnknownTraceKey { key: 3 })
        );
    }

    #[test]
    fn relocation_rederives_ownership() {
        let mut e = engine(16);
        let key = e.insert_link(Point::new(10.0, 10.0), Point::new(11.0, 10.0));
        let before = e.sites[&key].owner_shard;
        e.relocate_link(key, Point::new(110.0, 110.0), Point::new(111.0, 110.0))
            .unwrap();
        let after = e.sites[&key].owner_shard;
        assert_ne!(before, after);
        assert_eq!(e.len(), 1);
        let sharded = e.schedule();
        assert!(sharded.report.schedule.is_partition(1));
    }

    #[test]
    #[should_panic(expected = "outside the configured bounds")]
    fn out_of_bounds_lengths_are_rejected() {
        let mut e = engine(4);
        let _ = e.insert_link(Point::new(0.0, 0.0), Point::new(50.0, 0.0));
    }

    #[test]
    fn bulk_seeding_matches_sequential_inserts() {
        let links: Vec<Link> = (0..120)
            .map(|i| {
                let x = (i % 12) as f64 * 9.0 + 1.0;
                let y = (i / 12) as f64 * 11.0 + 1.0;
                Link::new(i, Point::new(x, y), Point::new(x + 1.2, y))
            })
            .collect();
        let config = PartitionedEngineConfig::new(
            SchedulerConfig::new(PowerMode::mean_oblivious()),
            BoundingBox::new(0.0, 0.0, 120.0, 120.0),
            (1.0, 1.5),
            16,
        );
        let mut seq = PartitionedEngine::new(config);
        for l in &links {
            seq.insert_link(l.sender, l.receiver);
        }
        let bulk = PartitionedEngine::with_links(config, &links);
        // Same placements: sites, per-shard occupancy, links and metadata.
        assert_eq!(bulk.len(), seq.len());
        assert_eq!(bulk.next_key, seq.next_key);
        assert_eq!(bulk.links(), seq.links());
        assert_eq!(bulk.stats().ghost_copies, seq.stats().ghost_copies);
        for s in 0..seq.shard_count() {
            assert_eq!(bulk.shard_len(s), seq.shard_len(s), "shard {s} occupancy");
            assert_eq!(bulk.meta[s], seq.meta[s], "shard {s} metadata");
        }
        for (key, site) in &seq.sites {
            let b = &bulk.sites[key];
            assert_eq!(b.owner_shard, site.owner_shard);
            assert_eq!(b.owner_slot, site.owner_slot);
            assert_eq!(b.ghosts, site.ghosts);
        }
        // Same neighbourhoods and, decisive for snapshot restore, the same
        // schedule slot for slot.
        for key in 0..links.len() as u64 {
            assert_eq!(bulk.neighbor_keys(key), seq.neighbor_keys(key));
        }
        assert_eq!(bulk.schedule(), seq.schedule());
        // Churn after bulk seeding behaves like churn after sequential
        // seeding (slots freed by bulk-built engines recycle identically).
        let mut bulk = bulk;
        for key in (0..24u64).step_by(3) {
            seq.remove_link(key).unwrap();
            bulk.remove_link(key).unwrap();
        }
        let k1 = seq.insert_link(Point::new(60.0, 60.0), Point::new(61.0, 60.0));
        let k2 = bulk.insert_link(Point::new(60.0, 60.0), Point::new(61.0, 60.0));
        assert_eq!(k1, k2);
        assert_eq!(bulk.schedule(), seq.schedule());
    }

    #[test]
    fn schedule_is_feasible_under_churn() {
        let mut e = engine(9);
        let mut keys = Vec::new();
        for i in 0..80u64 {
            let x = (i % 10) as f64 * 12.0;
            let y = (i / 10) as f64 * 12.0;
            keys.push(e.insert_link(Point::new(x, y), Point::new(x + 1.0, y)));
        }
        for (round, &k) in keys.iter().enumerate().take(20) {
            if round % 2 == 0 {
                e.remove_link(k).unwrap();
            }
        }
        let links = e.links();
        let sharded = e.schedule();
        assert!(sharded.report.schedule.is_partition(links.len()));
        let config = e.config().scheduler;
        assert!(sharded
            .report
            .schedule
            .verify(&links, &config.model, config.mode));
    }
}
