//! Spatially sharded scheduling for very large link sets.
//!
//! PR 1 made one conflict-graph build fast and PR 2 made it incremental, but
//! every scheduler still operated on a **single** global graph, cache and
//! color space. This crate is the first layer where the system stops being
//! one graph: the deployment region is tiled into shards sized by the
//! maximum conflict radius of the instance, links are assigned to shards
//! with ghost (halo) overlap, each shard builds and colors its own CSR
//! conflict subgraph in parallel, and the per-shard schedules are stitched
//! back into one global, SINR-verified schedule.
//!
//! The division of labour:
//!
//! * [`layout`] — [`PartitionLayout`]: conflict-radius bounds, tile
//!   ownership, ghost membership (on top of
//!   `wagg_geometry::tiling::TileLayout`);
//! * [`verify`] — [`AffectanceVerifier`]: certified-upper-bound slot
//!   verification with exact fallback, the piece that keeps million-link
//!   verification off the `O(s²)` cliff. The default [`VerifierStrategy`]
//!   prices the far field through a cell → super-cell aggregation pyramid
//!   (`O(log m)`-ish per target); the flat PR-3 grid survives as the
//!   differential baseline;
//! * `pipeline` (internal) — per-shard coloring via
//!   `wagg_schedule::schedule_prebuilt`, parity-offset boundary repair and
//!   the global verification/eviction pass;
//! * [`engine`] — [`PartitionedEngine`]: per-shard incremental maintenance
//!   on top of `wagg_engine::InterferenceEngine`, routing each churn event
//!   to the owning shard and its halo neighbours only.
//!
//! # Examples
//!
//! ```
//! use wagg_geometry::Point;
//! use wagg_partition::{solve_sharded, VerifierStrategy};
//! use wagg_schedule::{PowerMode, SchedulerConfig};
//! use wagg_sinr::Link;
//!
//! let links: Vec<Link> = (0..100)
//!     .map(|i| {
//!         let x = (i % 10) as f64 * 8.0;
//!         let y = (i / 10) as f64 * 8.0;
//!         Link::new(i, Point::new(x, y), Point::new(x + 1.0, y))
//!     })
//!     .collect();
//! let config = SchedulerConfig::new(PowerMode::mean_oblivious());
//! let sharded = solve_sharded(&links, config, 4, VerifierStrategy::default());
//! assert!(sharded.shards >= 4);
//! assert!(sharded.report.schedule.is_partition(links.len()));
//! assert!(sharded.report.schedule.verify(&links, &config.model, config.mode));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod layout;
pub mod verify;

mod pipeline;

pub use engine::{PartitionedEngine, PartitionedEngineConfig, PartitionedStats};
pub use layout::{conflict_radius_bound, max_conflict_radius, PartitionLayout};
pub use verify::{AffectanceVerifier, VerifierStrategy};

use serde::{Deserialize, Serialize};
use wagg_geometry::logmath::{log_log2, log_star};
use wagg_obs::Recorder;
use wagg_schedule::{BackendKind, Schedule, ScheduleReport, SchedulerConfig, SolveReport};
use wagg_sinr::link::link_diversity;
use wagg_sinr::Link;

/// The outcome of a sharded scheduling run: the regular [`ScheduleReport`]
/// plus the decomposition's own accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedReport {
    /// The stitched, verified schedule and the usual analysis quantities.
    pub report: ScheduleReport,
    /// Number of shards actually realised (the halo-derived minimum tile
    /// side may cap the requested count).
    pub shards: usize,
    /// The conflict radius the tiling was sized for.
    pub radius: f64,
    /// Links ghosted into at least one neighbouring shard.
    pub boundary_links: usize,
    /// Boundary links the stitching repair sweep recolored.
    pub repaired_links: usize,
    /// Links the global verification pass evicted and re-packed.
    pub evicted_links: usize,
    /// Largest per-shard owned-link count (the imbalance numerator).
    pub max_owned: usize,
    /// Mean per-shard owned-link count.
    pub mean_owned: f64,
    /// Ghost copies per owned link — the halo replication overhead.
    pub ghost_fraction: f64,
}

impl From<ShardedReport> for SolveReport {
    /// Lossless: the full [`ScheduleReport`] is embedded and the sharded
    /// accounting lands in [`wagg_schedule::ShardingStats`], tagged with
    /// [`BackendKind::Sharded`] provenance.
    fn from(sharded: ShardedReport) -> Self {
        SolveReport {
            report: sharded.report,
            backend: BackendKind::Sharded,
            sharding: Some(wagg_schedule::ShardingStats {
                shards: sharded.shards,
                radius: sharded.radius,
                boundary_links: sharded.boundary_links,
                repaired_links: sharded.repaired_links,
                evicted_links: sharded.evicted_links,
                max_owned: sharded.max_owned,
                mean_owned: sharded.mean_owned,
                ghost_fraction: sharded.ghost_fraction,
            }),
            repair: None,
            metrics: None,
            health: None,
        }
    }
}

/// Schedules `links` under `config` across roughly `target_shards` spatial
/// shards.
#[deprecated(
    since = "0.2.0",
    note = "schedule through `wagg_core::session::Session` (explicit `Backend::Sharded` reproduces \
            this entry point slot for slot); the session backend itself wraps `solve_sharded`"
)]
pub fn schedule_sharded(
    links: &[Link],
    config: SchedulerConfig,
    target_shards: usize,
) -> ShardedReport {
    solve_sharded(links, config, target_shards, VerifierStrategy::default())
}

/// [`schedule_sharded`] with an explicit far-field [`VerifierStrategy`].
#[deprecated(
    since = "0.2.0",
    note = "schedule through `wagg_core::session::Session` (configure the strategy with \
            `SessionBuilder::verifier`); the session backend itself wraps `solve_sharded`"
)]
pub fn schedule_sharded_with(
    links: &[Link],
    config: SchedulerConfig,
    target_shards: usize,
    strategy: VerifierStrategy,
) -> ShardedReport {
    solve_sharded(links, config, target_shards, strategy)
}

/// The sharded scheduling pipeline: tiles the link set by [`PartitionLayout`],
/// schedules each shard independently (see the [crate docs](self)), stitches,
/// and verifies the stitched schedule slot by slot with the given far-field
/// [`VerifierStrategy`] — so, exactly like the unsharded kernel
/// (`wagg_schedule::solve_static`), every returned slot is genuinely feasible
/// under `config`'s power mode when `config.verify_slots` is set. With one
/// shard and verification disabled the result coincides with the unsharded
/// scheduler's coloring.
///
/// The strategy only changes how the verifier *prices* slots — accept/evict
/// decisions (and with them the final schedule) match
/// `is_feasible_by_affectance` under every strategy, which the differential
/// test battery pins; [`VerifierStrategy::Flat`] is the PR-3 baseline, the
/// default descends the aggregation pyramid.
///
/// This is the primitive `wagg_core::session::Session`'s sharded backend
/// wraps; application code should schedule through the session, which also
/// picks the shard count and strategy for `Backend::Auto`.
///
/// Zero-length links conflict with every other link and cannot be localised
/// by any finite halo; they are split off up front and appended as singleton
/// slots (which is where the unsharded scheduler ends up putting them too).
///
/// # Panics
///
/// Panics when `target_shards == 0`.
pub fn solve_sharded(
    links: &[Link],
    config: SchedulerConfig,
    target_shards: usize,
    strategy: VerifierStrategy,
) -> ShardedReport {
    solve_sharded_traced(
        links,
        config,
        target_shards,
        strategy,
        &Recorder::disabled(),
    )
}

/// [`solve_sharded`] with phase instrumentation: records a `partition` span
/// with `build` / `color` / `stitch` / `verify` children (per-shard `shard`
/// sub-spans inside build and color), the `partition.*` occupancy and
/// stitching counters, and the `verifier.*` work counters on `rec` (see
/// `wagg-obs`). With the workspace `obs` feature off, or with a disabled
/// recorder, this is exactly [`solve_sharded`].
pub fn solve_sharded_traced(
    links: &[Link],
    config: SchedulerConfig,
    target_shards: usize,
    strategy: VerifierStrategy,
    rec: &Recorder,
) -> ShardedReport {
    assert!(target_shards > 0, "need at least one shard");
    let root = rec.span("partition");
    let relation = config.mode.conflict_relation(config.model.alpha());

    let (positive, degenerate): (Vec<usize>, Vec<usize>) =
        (0..links.len()).partition(|&i| links[i].length() > 0.0);
    let plinks: Vec<Link> = positive
        .iter()
        .enumerate()
        .map(|(pos, &i)| {
            let mut link = links[i];
            link.id = pos.into();
            link
        })
        .collect();

    let layout = PartitionLayout::build(&plinks, relation, target_shards);
    let pieces = pipeline::build_pieces(&plinks, &layout, relation, rec);
    let boundary: Vec<bool> = (0..plinks.len()).map(|i| layout.is_boundary(i)).collect();
    let mut owner_of = vec![(0u32, 0u32); plinks.len()];
    for (pi, piece) in pieces.iter().enumerate() {
        for &local in &piece.owned_local {
            owner_of[piece.member_globals[local]] = (pi as u32, local as u32);
        }
    }
    let outcome = pipeline::schedule_pieces(
        &plinks, &pieces, &boundary, &owner_of, config, strategy, rec,
    );

    // Back to the caller's indices; degenerate links close the schedule as
    // singleton slots.
    let mut slots: Vec<Vec<usize>> = outcome
        .slots
        .into_iter()
        .map(|slot| slot.into_iter().map(|i| positive[i]).collect())
        .collect();
    slots.extend(degenerate.iter().map(|&d| vec![d]));

    let diversity = link_diversity(links).unwrap_or(1.0);
    let report = ScheduleReport {
        verified_slots: slots.len(),
        coloring_slots: outcome.coloring_slots + degenerate.len(),
        schedule: Schedule::new(slots),
        diversity,
        log_star_diversity: log_star(diversity),
        log_log_diversity: log_log2(diversity),
        mode: config.mode,
        num_links: links.len(),
    };
    root.finish();
    ShardedReport {
        report,
        shards: layout.shards(),
        radius: layout.radius(),
        boundary_links: outcome.boundary_links,
        repaired_links: outcome.repaired_links,
        evicted_links: outcome.evicted_links,
        max_owned: outcome.max_owned,
        mean_owned: outcome.mean_owned,
        ghost_fraction: outcome.ghost_fraction,
    }
}
