//! Slot verification at scale: certified affectance checks with exact
//! fallback, and first-fit packing of evicted links.
//!
//! The unsharded scheduler verifies a candidate slot with
//! `PathLossCache::subset_feasible`, an exact `O(s²)` pairwise sum — fine for
//! the slot sizes one conflict graph produces at `n ≤ 50k`, ruinous for the
//! `~n / slots` member counts of a million-link schedule. The
//! [`AffectanceVerifier`] replaces the quadratic scan with a **certified
//! upper bound**:
//!
//! * slot members are binned by sender into a small square grid;
//! * for each target, interferers in the target's own and adjacent cells are
//!   summed **exactly** (the same terms, in deterministic cell-then-member
//!   order, via [`relative_interference_sum`]'s formulas);
//! * every other cell contributes `(Σ_j P_j) · w_i / d(cell, r_i)^α`, where
//!   `d` is the exact point-to-box distance — a rigorous **upper bound** on
//!   its members' total contribution, costing `O(1)` per cell.
//!
//! If `exact_near + bound_far ≤ 1/β` the target is certified feasible (the
//! true sum can only be smaller). Otherwise the target's sum is recomputed
//! exactly; only genuinely failing targets are reported. Small slots (and
//! slots containing links with unavailable powers, whose failure semantics
//! the bound cannot reproduce) skip the grid and go straight to the exact
//! kernel, so the verifier's verdicts always match
//! `is_feasible_by_affectance` on the slot's links.
//!
//! [`AffectanceVerifier::evict_infeasible`] exploits a monotonicity: every
//! term of the affectance sum is non-negative, so removing members never
//! hurts the remaining targets. One verification sweep therefore yields a
//! feasible slot — keep the passing targets, evict the failing ones — and
//! the evicted links are re-packed first-fit by
//! [`AffectanceVerifier::pack_first_fit`].

use wagg_sinr::pathloss::relative_interference_sum;
use wagg_sinr::{AlphaPow, Link, SinrModel};

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Below this member count the exact `O(s²)` scan beats building the grid.
const EXACT_CUTOFF: usize = 192;

/// Per-target interference state over a link universe — a borrowed view of
/// `PathLossCache` parts (global, or a shard's slice via
/// `PathLossCache::subset_parts`).
#[derive(Debug, Clone)]
pub struct AffectanceVerifier<'a> {
    links: &'a [Link],
    powers: &'a [Option<f64>],
    weights: &'a [Option<f64>],
    pow: AlphaPow,
    inv_beta: f64,
}

impl<'a> AffectanceVerifier<'a> {
    /// A verifier over `links` with the given per-link cache parts (exactly
    /// what `PathLossCache::new` computes for `links` under the power
    /// assignment being verified).
    ///
    /// # Panics
    ///
    /// Panics when the part vectors do not cover `links`.
    pub fn new(
        model: &SinrModel,
        links: &'a [Link],
        powers: &'a [Option<f64>],
        weights: &'a [Option<f64>],
    ) -> Self {
        assert_eq!(powers.len(), links.len(), "one power per link");
        assert_eq!(weights.len(), links.len(), "one weight per link");
        AffectanceVerifier {
            links,
            powers,
            weights,
            pow: AlphaPow::new(model.alpha()),
            inv_beta: 1.0 / model.beta(),
        }
    }

    /// The exact affectance total on `members[k]` from the rest of the
    /// members (the `PathLossCache` kernel, same order, same verdict).
    fn exact_total(&self, members: &[usize], k: usize) -> Option<f64> {
        relative_interference_sum(
            self.pow,
            members,
            k,
            self.weights[members[k]],
            |j| &self.links[j],
            |j| self.powers[j],
        )
    }

    fn exact_ok(&self, members: &[usize], k: usize) -> bool {
        match self.exact_total(members, k) {
            Some(total) => total <= self.inv_beta,
            None => false,
        }
    }

    /// Per-target verdicts for one slot, `verdicts[k]` for `members[k]`.
    fn verdicts(&self, members: &[usize]) -> Vec<bool> {
        let all_powers_known = members.iter().all(|&i| self.powers[i].is_some());
        if members.len() <= EXACT_CUTOFF || !all_powers_known {
            let check = |k: usize| self.exact_ok(members, k);
            #[cfg(feature = "parallel")]
            {
                return (0..members.len()).into_par_iter().map(check).collect();
            }
            #[cfg(not(feature = "parallel"))]
            {
                return (0..members.len()).map(check).collect();
            }
        }
        self.certified_verdicts(members)
    }

    /// The grid-certified path (all member powers known, slot large).
    fn certified_verdicts(&self, members: &[usize]) -> Vec<bool> {
        let m = members.len();
        // Sender extent.
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for &i in members {
            let s = self.links[i].sender;
            min_x = min_x.min(s.x);
            min_y = min_y.min(s.y);
            max_x = max_x.max(s.x);
            max_y = max_y.max(s.y);
        }
        let width = (max_x - min_x).max(0.0);
        let height = (max_y - min_y).max(0.0);
        if width == 0.0 && height == 0.0 {
            // All senders collocated — no useful binning; exact it is.
            let check = |k: usize| self.exact_ok(members, k);
            #[cfg(feature = "parallel")]
            {
                return (0..m).into_par_iter().map(check).collect();
            }
            #[cfg(not(feature = "parallel"))]
            {
                return (0..m).map(check).collect();
            }
        }
        // Grid dimension ~ m^(1/4) per axis balances the per-target far-cell
        // scan (g²) against the near-cell exact work (9 m / g²).
        let g = ((m as f64).powf(0.25) * 1.8).ceil().max(1.0) as usize;
        let cell = (width.max(height) / g as f64).max(f64::MIN_POSITIVE);
        let cols = ((width / cell).floor() as usize + 1).min(g.max(1));
        let rows = ((height / cell).floor() as usize + 1).min(g.max(1));
        let cell_of = |x: f64, y: f64| -> (usize, usize) {
            let c = (((x - min_x) / cell).floor().max(0.0) as usize).min(cols - 1);
            let r = (((y - min_y) / cell).floor().max(0.0) as usize).min(rows - 1);
            (c, r)
        };
        // Counting-sorted member lists per cell, plus per-cell power sums.
        let n_cells = cols * rows;
        let mut counts = vec![0u32; n_cells + 1];
        let cells: Vec<usize> = members
            .iter()
            .map(|&i| {
                let s = self.links[i].sender;
                let (c, r) = cell_of(s.x, s.y);
                r * cols + c
            })
            .collect();
        for &c in &cells {
            counts[c + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut binned = vec![0u32; m];
        for (pos, &c) in cells.iter().enumerate() {
            binned[cursor[c] as usize] = pos as u32;
            cursor[c] += 1;
        }
        // Per-cell power sums and *exact* sender bounding boxes (clamped
        // binning may park a borderline sender outside its cell's nominal
        // square; the far bound below needs a box that provably contains
        // every sender it aggregates).
        let mut power_sums = vec![0.0f64; n_cells];
        let mut cell_boxes = vec![
            (
                f64::INFINITY,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::NEG_INFINITY
            );
            n_cells
        ];
        for c in 0..n_cells {
            let mut sum = 0.0;
            let b = &mut cell_boxes[c];
            for &pos in &binned[offsets[c] as usize..offsets[c + 1] as usize] {
                let i = members[pos as usize];
                sum += self.powers[i].expect("powers known");
                let s = self.links[i].sender;
                b.0 = b.0.min(s.x);
                b.1 = b.1.min(s.y);
                b.2 = b.2.max(s.x);
                b.3 = b.3.max(s.y);
            }
            power_sums[c] = sum;
        }

        let check = |k: usize| -> bool {
            let target = &self.links[members[k]];
            let Some(w) = self.weights[members[k]] else {
                return false;
            };
            let r_pos = target.receiver;
            let (tc, tr) = cell_of(r_pos.x, r_pos.y);
            let mut total = 0.0f64;
            for cr in 0..rows {
                for cc in 0..cols {
                    let c = cr * cols + cc;
                    let near = cc.abs_diff(tc) <= 1 && cr.abs_diff(tr) <= 1;
                    if near {
                        // Exact terms for this cell, in binned (member) order.
                        for &pos in &binned[offsets[c] as usize..offsets[c + 1] as usize] {
                            let j = members[pos as usize];
                            let source = &self.links[j];
                            if source.id == target.id {
                                continue;
                            }
                            let d = source.sender.distance(r_pos);
                            if d <= 0.0 {
                                return self.exact_ok(members, k);
                            }
                            total += self.powers[j].expect("powers known") * w / self.pow.pow(d);
                        }
                    } else {
                        let sum = power_sums[c];
                        if sum == 0.0 {
                            continue;
                        }
                        // Exact point-to-box distance over the cell's true
                        // sender bounding box lower-bounds every member's
                        // sender distance, so this term upper-bounds the
                        // cell's contribution.
                        let (bx0, by0, bx1, by1) = cell_boxes[c];
                        let dx = (bx0 - r_pos.x).max(r_pos.x - bx1).max(0.0);
                        let dy = (by0 - r_pos.y).max(r_pos.y - by1).max(0.0);
                        let d = dx.hypot(dy);
                        if d <= 0.0 {
                            return self.exact_ok(members, k);
                        }
                        total += sum * w / self.pow.pow(d);
                    }
                    if total > self.inv_beta {
                        // The bound failed; only an exact sum can acquit.
                        return self.exact_ok(members, k);
                    }
                }
            }
            // Certified: the exact total is ≤ the bound ≤ 1/β. The target's
            // own sender contributed at most extra non-negative terms, which
            // only makes the certificate more conservative.
            true
        };
        #[cfg(feature = "parallel")]
        {
            (0..m).into_par_iter().map(check).collect()
        }
        #[cfg(not(feature = "parallel"))]
        {
            (0..m).map(check).collect()
        }
    }

    /// Whether `members` can share a slot (singletons trivially can — the
    /// affectance sum over an empty interferer set is zero).
    pub fn set_feasible(&self, members: &[usize]) -> bool {
        members.len() <= 1 || self.verdicts(members).into_iter().all(|ok| ok)
    }

    /// One verification sweep over a slot: returns `(kept, evicted)` with
    /// member order preserved. Every kept target passed its affectance check
    /// **with the evicted members still present**; since all terms are
    /// non-negative, the kept set remains feasible after the eviction, so
    /// `kept` always satisfies `is_feasible_by_affectance`.
    pub fn evict_infeasible(&self, members: &[usize]) -> (Vec<usize>, Vec<usize>) {
        if members.len() <= 1 {
            return (members.to_vec(), Vec::new());
        }
        let verdicts = self.verdicts(members);
        let mut kept = Vec::with_capacity(members.len());
        let mut evicted = Vec::new();
        for (k, &i) in members.iter().enumerate() {
            if verdicts[k] {
                kept.push(i);
            } else {
                evicted.push(i);
            }
        }
        (kept, evicted)
    }

    /// Packs `evicted` links into fresh slots, first-fit in non-increasing
    /// length order (ties by index — the deterministic order the unsharded
    /// splitter uses). A link that fits nowhere opens its own slot, so the
    /// packing always terminates; singleton slots are trivially feasible.
    pub fn pack_first_fit(&self, evicted: &[usize]) -> Vec<Vec<usize>> {
        let mut order = evicted.to_vec();
        order.sort_by(|&a, &b| {
            self.links[b]
                .length()
                .total_cmp(&self.links[a].length())
                .then(a.cmp(&b))
        });
        let mut slots: Vec<Vec<usize>> = Vec::new();
        let mut candidate: Vec<usize> = Vec::new();
        for idx in order {
            let mut placed = false;
            for slot in slots.iter_mut() {
                candidate.clear();
                candidate.extend_from_slice(slot);
                candidate.push(idx);
                if self.set_feasible(&candidate) {
                    slot.push(idx);
                    placed = true;
                    break;
                }
            }
            if !placed {
                slots.push(vec![idx]);
            }
        }
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_geometry::Point;
    use wagg_sinr::affectance::is_feasible_by_affectance;
    use wagg_sinr::{PathLossCache, PowerAssignment};

    fn field(n: usize, spacing: f64) -> Vec<Link> {
        let cols = (n as f64).sqrt().ceil() as usize;
        (0..n)
            .map(|i| {
                let x = (i % cols) as f64 * spacing;
                let y = (i / cols) as f64 * spacing;
                Link::new(i, Point::new(x, y), Point::new(x + 1.0, y))
            })
            .collect()
    }

    fn subset_links(links: &[Link], members: &[usize]) -> Vec<Link> {
        members.iter().map(|&i| links[i]).collect()
    }

    #[test]
    fn verdicts_match_is_feasible_by_affectance_exactly() {
        let model = SinrModel::default();
        let power = PowerAssignment::mean();
        // Sweep spacings through the feasibility threshold; include sizes on
        // both sides of the exact cutoff so the certified path is exercised.
        for &(n, spacing) in &[
            (64usize, 3.0),
            (64, 8.0),
            (400, 2.5),
            (400, 6.0),
            (400, 12.0),
        ] {
            let links = field(n, spacing);
            let cache = PathLossCache::new(&model, &links, &power);
            let (powers, weights) = cache.into_parts();
            let verifier = AffectanceVerifier::new(&model, &links, &powers, &weights);
            let members: Vec<usize> = (0..n).collect();
            let (kept, evicted) = verifier.evict_infeasible(&members);
            assert_eq!(kept.len() + evicted.len(), n);
            // Kept sets are genuinely feasible under the reference check.
            assert!(
                is_feasible_by_affectance(&model, &subset_links(&links, &kept), &power),
                "kept set infeasible at n={n} spacing={spacing}"
            );
            // And the sweep's verdicts agree with per-target reference sums.
            let reference = PathLossCache::new(&model, &links, &power);
            for (k, &i) in members.iter().enumerate() {
                let want = match reference.subset_relative_interference_on(&members, k) {
                    Some(t) => t <= 1.0 / model.beta(),
                    None => false,
                };
                assert_eq!(
                    kept.contains(&i),
                    want,
                    "target {i} verdict mismatch at n={n} spacing={spacing}"
                );
            }
            if evicted.is_empty() {
                assert!(verifier.set_feasible(&members));
            } else {
                assert!(!verifier.set_feasible(&members));
                // Packing terminates and every packed slot is feasible.
                for slot in verifier.pack_first_fit(&evicted) {
                    assert!(is_feasible_by_affectance(
                        &model,
                        &subset_links(&links, &slot),
                        &power
                    ));
                }
            }
        }
    }

    #[test]
    fn missing_powers_fail_exactly_like_the_cache() {
        let model = SinrModel::default();
        let links = field(20, 4.0);
        let empty = PowerAssignment::explicit(std::collections::HashMap::new());
        let cache = PathLossCache::new(&model, &links, &empty);
        let (powers, weights) = cache.into_parts();
        let verifier = AffectanceVerifier::new(&model, &links, &powers, &weights);
        let members: Vec<usize> = (0..20).collect();
        let (kept, evicted) = verifier.evict_infeasible(&members);
        assert!(kept.is_empty());
        assert_eq!(evicted.len(), 20);
        // Singletons are still trivially feasible.
        assert!(verifier.set_feasible(&[3]));
    }

    #[test]
    fn collocated_interferers_are_evicted() {
        let model = SinrModel::default();
        // Link 1's sender sits on link 0's receiver.
        let links = vec![
            Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
            Link::new(1, Point::new(1.0, 0.0), Point::new(2.0, 0.0)),
            Link::new(2, Point::new(60.0, 0.0), Point::new(61.0, 0.0)),
        ];
        let power = PowerAssignment::uniform(1.0);
        let cache = PathLossCache::new(&model, &links, &power);
        let (powers, weights) = cache.into_parts();
        let verifier = AffectanceVerifier::new(&model, &links, &powers, &weights);
        let (kept, evicted) = verifier.evict_infeasible(&[0, 1, 2]);
        assert!(evicted.contains(&0)); // infinite interference on target 0
        assert!(kept.contains(&2));
    }
}
