//! Slot verification at scale: certified affectance checks with exact
//! fallback, and first-fit packing of evicted links.
//!
//! The unsharded scheduler verifies a candidate slot with
//! `PathLossCache::subset_feasible`, an exact `O(s²)` pairwise sum — fine for
//! the slot sizes one conflict graph produces at `n ≤ 50k`, ruinous for the
//! `~n / slots` member counts of a million-link schedule. The
//! [`AffectanceVerifier`] replaces the quadratic scan with a **certified
//! upper bound** built from sender aggregates over a grid:
//!
//! * slot members are binned by sender into square cells, and each cell
//!   carries its members' total power and their *tight* sender bounding box;
//! * interferers close to the target are summed **exactly** (the same terms,
//!   in deterministic cell-then-member order, via
//!   [`relative_interference_sum`]'s formulas);
//! * every other cell contributes `(Σ_j P_j) · w_i / d^α`, where `d` is the
//!   exact point-to-box distance to the cell's tight sender box — a rigorous
//!   **upper bound** on its members' total contribution, costing `O(1)` per
//!   aggregate.
//!
//! Two strategies share that contract (see [`VerifierStrategy`]):
//!
//! * **Flat** — one coarse level (`Θ(√m)` cells, `~m^(1/4)` per axis), every
//!   cell priced per target: the PR-3 verifier, kept as the differential
//!   baseline.
//! * **Hierarchical** (the default) — a fine grid (a few members per cell)
//!   under a [`GridPyramid`] of super-cells, each aggregating its children's
//!   power sum and tight box. A target query descends from the top: a node
//!   whose tight box lies at distance `d ≥ 2 · side(level)` is accepted as
//!   one aggregate term, anything closer is expanded; finest-level cells
//!   within the gate are summed exactly. Per-target cost drops from the flat
//!   grid's `Θ(√m)` to `O(log m)` opened nodes, and a depth of 1 collapses
//!   to the flat strategy byte for byte.
//!
//! If `exact_near + bound_far ≤ 1/β` the target is certified feasible (the
//! true sum can only be smaller). Otherwise the target's sum is recomputed
//! exactly; only genuinely failing targets are reported. Small slots (and
//! slots containing links with unavailable powers, whose failure semantics
//! the bound cannot reproduce) skip the grid and go straight to the exact
//! kernel, so the verifier's verdicts always match
//! `is_feasible_by_affectance` on the slot's links — under **every** strategy
//! and pyramid depth, which is what the differential test battery pins.
//!
//! [`AffectanceVerifier::evict_infeasible`] exploits a monotonicity: every
//! term of the affectance sum is non-negative, so removing members never
//! hurts the remaining targets. One verification sweep therefore yields a
//! feasible slot — keep the passing targets, evict the failing ones — and
//! the evicted links are re-packed first-fit by
//! [`AffectanceVerifier::pack_first_fit`]. The grid-shape state (the sender
//! extent every slot grid is anchored to) is hoisted into the verifier at
//! construction, so the repack loop's repeated feasibility probes and the
//! query path share one layout instead of re-deriving it per call.

use serde::{Deserialize, Serialize};
use wagg_geometry::pyramid::GridPyramid;
use wagg_geometry::{BoundingBox, Point};
use wagg_obs::{Counter, Recorder};
use wagg_sinr::link::LinkId;
use wagg_sinr::pathloss::relative_interference_sum;
use wagg_sinr::{AlphaPow, Link, SinrModel};

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Below this member count the exact `O(s²)` scan beats building the grid.
const EXACT_CUTOFF: usize = 192;

/// A node (or finest cell) is accepted as one aggregate term when its tight
/// box is at least this many level-sides away from the target; anything
/// closer is expanded (or, at the finest level, summed exactly).
const OPEN_GATE: f64 = 2.0;

/// Below this slot size the adaptive default prices the far field with the
/// flat grid: the descent's per-level node visits only amortise once the
/// flat scan's `Θ(√m)` far cells dwarf them (empirically around `10⁴`
/// members on the bench workloads).
const PYRAMID_CUTOFF: usize = 8192;

/// How the verifier prices the far field of a target query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerifierStrategy {
    /// The single-level grid of PR 3: `~m^(1/4)` cells per axis, exact sums
    /// over the 3×3 cell neighbourhood of the target, one aggregate term per
    /// far cell. Per-target far-field cost `Θ(√m)`.
    Flat,
    /// Fine cells (a few members each) under a cell → super-cell aggregation
    /// pyramid; target queries descend the pyramid and expand only nodes too
    /// close for their aggregate bound. Per-target cost `O(log m)`-ish.
    Hierarchical {
        /// Number of pyramid levels, or `None` for the adaptive default:
        /// flat below [`PYRAMID_CUTOFF`] members, the naturally deep
        /// pyramid above it (always clamped to
        /// [`GridPyramid::natural_depth`]). An explicit depth of 1 collapses
        /// to the [`VerifierStrategy::Flat`] code path exactly.
        depth: Option<usize>,
    },
}

impl Default for VerifierStrategy {
    /// The production strategy: adaptively hierarchical.
    fn default() -> Self {
        VerifierStrategy::Hierarchical { depth: None }
    }
}

impl VerifierStrategy {
    /// The pyramid depth this strategy requests for a slot of `m` members
    /// (1 means the flat path).
    fn requested_depth(self, m: usize) -> usize {
        match self {
            VerifierStrategy::Flat => 1,
            VerifierStrategy::Hierarchical { depth: Some(d) } => d.max(1),
            VerifierStrategy::Hierarchical { depth: None } => {
                if m < PYRAMID_CUTOFF {
                    1
                } else {
                    usize::MAX
                }
            }
        }
    }
}

/// Per-target interference state over a link universe — a borrowed view of
/// `PathLossCache` parts (global, or a shard's slice via
/// `PathLossCache::subset_parts`).
#[derive(Debug, Clone)]
pub struct AffectanceVerifier<'a> {
    links: &'a [Link],
    powers: &'a [Option<f64>],
    weights: &'a [Option<f64>],
    pow: AlphaPow,
    inv_beta: f64,
    strategy: VerifierStrategy,
    /// Bounding box of every sender in the universe, computed once at
    /// construction — the shared grid anchor for every slot query and every
    /// repack probe (`None` only for an empty universe).
    sender_extent: Option<BoundingBox>,
    /// `verifier.expansions`: pyramid nodes opened during certify descents
    /// (accumulated locally per target, one atomic add per certify call).
    expansions: Counter,
    /// `verifier.exact_fallbacks`: targets the certified bound could not
    /// acquit, resolved by the exact kernel.
    exact_fallbacks: Counter,
    /// `verifier.evictions`: members evicted by verification sweeps.
    evictions: Counter,
    /// `verifier.repacked`: evicted members re-packed into fresh slots.
    repacked: Counter,
}

impl<'a> AffectanceVerifier<'a> {
    /// A verifier over `links` with the given per-link cache parts (exactly
    /// what `PathLossCache::new` computes for `links` under the power
    /// assignment being verified), using the default hierarchical strategy.
    ///
    /// # Panics
    ///
    /// Panics when the part vectors do not cover `links`.
    pub fn new(
        model: &SinrModel,
        links: &'a [Link],
        powers: &'a [Option<f64>],
        weights: &'a [Option<f64>],
    ) -> Self {
        assert_eq!(powers.len(), links.len(), "one power per link");
        assert_eq!(weights.len(), links.len(), "one weight per link");
        let mut sender_extent: Option<BoundingBox> = None;
        for link in links {
            let s = link.sender;
            sender_extent = Some(match sender_extent {
                None => BoundingBox::new(s.x, s.y, s.x, s.y),
                Some(e) => BoundingBox::new(
                    e.min_x.min(s.x),
                    e.min_y.min(s.y),
                    e.max_x.max(s.x),
                    e.max_y.max(s.y),
                ),
            });
        }
        AffectanceVerifier {
            links,
            powers,
            weights,
            pow: AlphaPow::new(model.alpha()),
            inv_beta: 1.0 / model.beta(),
            strategy: VerifierStrategy::default(),
            sender_extent,
            expansions: Counter::default(),
            exact_fallbacks: Counter::default(),
            evictions: Counter::default(),
            repacked: Counter::default(),
        }
    }

    /// Replaces the far-field strategy (the default is hierarchical at
    /// natural depth).
    pub fn with_strategy(mut self, strategy: VerifierStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Routes the verifier's work counters to `rec`: `verifier.expansions`
    /// (pyramid nodes opened per certify descent), `verifier.exact_fallbacks`
    /// (targets the certified bound could not acquit), `verifier.evictions`
    /// and `verifier.repacked`. Counts are accumulated locally and flushed
    /// with one relaxed atomic add per call, so verdicts stay cheap; a
    /// disabled recorder (the default) keeps every counter no-op.
    pub fn with_recorder(mut self, rec: &Recorder) -> Self {
        self.expansions = rec.counter("verifier.expansions");
        self.exact_fallbacks = rec.counter("verifier.exact_fallbacks");
        self.evictions = rec.counter("verifier.evictions");
        self.repacked = rec.counter("verifier.repacked");
        self
    }

    /// The configured far-field strategy.
    pub fn strategy(&self) -> VerifierStrategy {
        self.strategy
    }

    /// The exact affectance total on `members[k]` from the rest of the
    /// members (the `PathLossCache` kernel, same order, same verdict).
    fn exact_total(&self, members: &[usize], k: usize) -> Option<f64> {
        relative_interference_sum(
            self.pow,
            members,
            k,
            self.weights[members[k]],
            |j| &self.links[j],
            |j| self.powers[j],
        )
    }

    /// The exact affectance total on `members[k]`, exposed for the
    /// soundness test battery: [`AffectanceVerifier::hierarchical_bound`]
    /// must upper-bound this at every pyramid depth.
    pub fn exact_affectance(&self, members: &[usize], k: usize) -> Option<f64> {
        self.exact_total(members, k)
    }

    /// The certified upper bound a `depth`-level pyramid computes for the
    /// affectance total on `members[k]`, without the early exit the verdict
    /// path uses (`depth` is clamped to the pyramid's natural depth; 1 is
    /// the flat grid). Returns `None` when the grid path cannot price the
    /// slot — unknown member powers, an unknown target weight, a degenerate
    /// (collocated) sender extent, or a zero interferer distance — exactly
    /// the cases the verifier resolves with the exact kernel instead.
    pub fn hierarchical_bound(&self, members: &[usize], k: usize, depth: usize) -> Option<f64> {
        assert!(k < members.len(), "target index out of range");
        if members.iter().any(|&i| self.powers[i].is_none()) {
            return None;
        }
        SlotPyramid::build(self, members, depth.max(1))?.certify(k, f64::INFINITY)
    }

    fn exact_ok(&self, members: &[usize], k: usize) -> bool {
        match self.exact_total(members, k) {
            Some(total) => total <= self.inv_beta,
            None => false,
        }
    }

    /// Exact per-target verdicts (the reference kernel, used below the grid
    /// cutoff and wherever the grid path cannot run).
    fn exact_verdicts(&self, members: &[usize]) -> Vec<bool> {
        let check = |k: usize| self.exact_ok(members, k);
        #[cfg(feature = "parallel")]
        {
            (0..members.len()).into_par_iter().map(check).collect()
        }
        #[cfg(not(feature = "parallel"))]
        {
            (0..members.len()).map(check).collect()
        }
    }

    /// Per-target verdicts for one slot, `verdicts[k]` for `members[k]`.
    fn verdicts(&self, members: &[usize]) -> Vec<bool> {
        let all_powers_known = members.iter().all(|&i| self.powers[i].is_some());
        if members.len() <= EXACT_CUTOFF || !all_powers_known {
            return self.exact_verdicts(members);
        }
        let depth = self.strategy.requested_depth(members.len());
        let Some(pyramid) = SlotPyramid::build(self, members, depth) else {
            // All senders collocated — no useful binning; exact it is.
            return self.exact_verdicts(members);
        };
        let check = |k: usize| match pyramid.certify(k, self.inv_beta) {
            // Certified: the exact total is ≤ the bound ≤ 1/β. The target's
            // own sender contributed at most extra non-negative aggregate
            // terms, which only makes the certificate more conservative.
            Some(total) if total <= self.inv_beta => true,
            // The bound failed (or met a zero distance / unknown weight);
            // only an exact sum can acquit.
            _ => {
                self.exact_fallbacks.add(1);
                self.exact_ok(members, k)
            }
        };
        #[cfg(feature = "parallel")]
        {
            (0..members.len()).into_par_iter().map(check).collect()
        }
        #[cfg(not(feature = "parallel"))]
        {
            (0..members.len()).map(check).collect()
        }
    }

    /// Per-target affectance budgets for one slot: `out[k]` upper-bounds the
    /// exact affectance total on `members[k]` (`INFINITY` when the pair
    /// terms cannot be priced). Values are the certified pyramid bound when
    /// it already lands within `1/β` and the exact sum otherwise, so on a
    /// feasible slot every budget is finite and within threshold. This is
    /// the near-linear capture half of the warm-start repair contract
    /// (`wagg_schedule::solve_repair`'s `prev_budgets`): conservative
    /// upper bounds are sound — they only make repair fall back earlier.
    pub fn budgets(&self, members: &[usize]) -> Vec<f64> {
        if members.len() <= 1 {
            return vec![0.0; members.len()];
        }
        let exact = |k: usize| self.exact_total(members, k).unwrap_or(f64::INFINITY);
        let all_powers_known = members.iter().all(|&i| self.powers[i].is_some());
        let pyramid = if members.len() <= EXACT_CUTOFF || !all_powers_known {
            None
        } else {
            SlotPyramid::build(self, members, self.strategy.requested_depth(members.len()))
        };
        let one = |k: usize| match &pyramid {
            Some(pyramid) => match pyramid.certify(k, self.inv_beta) {
                Some(total) if total <= self.inv_beta => total,
                _ => exact(k),
            },
            None => exact(k),
        };
        #[cfg(feature = "parallel")]
        {
            (0..members.len()).into_par_iter().map(one).collect()
        }
        #[cfg(not(feature = "parallel"))]
        {
            (0..members.len()).map(one).collect()
        }
    }

    /// Whether `members` can share a slot (singletons trivially can — the
    /// affectance sum over an empty interferer set is zero).
    pub fn set_feasible(&self, members: &[usize]) -> bool {
        members.len() <= 1 || self.verdicts(members).into_iter().all(|ok| ok)
    }

    /// One verification sweep over a slot: returns `(kept, evicted)` with
    /// member order preserved. Every kept target passed its affectance check
    /// **with the evicted members still present**; since all terms are
    /// non-negative, the kept set remains feasible after the eviction, so
    /// `kept` always satisfies `is_feasible_by_affectance`.
    pub fn evict_infeasible(&self, members: &[usize]) -> (Vec<usize>, Vec<usize>) {
        if members.len() <= 1 {
            return (members.to_vec(), Vec::new());
        }
        let verdicts = self.verdicts(members);
        let mut kept = Vec::with_capacity(members.len());
        let mut evicted = Vec::new();
        for (k, &i) in members.iter().enumerate() {
            if verdicts[k] {
                kept.push(i);
            } else {
                evicted.push(i);
            }
        }
        self.evictions.add(evicted.len() as u64);
        (kept, evicted)
    }

    /// Packs `evicted` links into fresh slots, first-fit in non-increasing
    /// length order (ties by index — the deterministic order the unsharded
    /// splitter uses). A link that fits nowhere opens its own slot, so the
    /// packing always terminates; singleton slots are trivially feasible.
    /// The result depends only on the evicted *set* (the sort canonicalises
    /// the input order) and the verifier's construction inputs.
    pub fn pack_first_fit(&self, evicted: &[usize]) -> Vec<Vec<usize>> {
        self.repacked.add(evicted.len() as u64);
        let mut order = evicted.to_vec();
        order.sort_by(|&a, &b| {
            self.links[b]
                .length()
                .total_cmp(&self.links[a].length())
                .then(a.cmp(&b))
        });
        let mut slots: Vec<Vec<usize>> = Vec::new();
        let mut candidate: Vec<usize> = Vec::new();
        for idx in order {
            let mut placed = false;
            for slot in slots.iter_mut() {
                candidate.clear();
                candidate.extend_from_slice(slot);
                candidate.push(idx);
                if self.set_feasible(&candidate) {
                    slot.push(idx);
                    placed = true;
                    break;
                }
            }
            if !placed {
                slots.push(vec![idx]);
            }
        }
        slots
    }
}

impl wagg_schedule::SlotJudge for AffectanceVerifier<'_> {
    /// Warm-start repair probes ([`wagg_schedule::solve_repair`]) through
    /// the verifier — hierarchical far-field aggregation and all — so the
    /// sharded backend's repair path judges slots exactly like its
    /// certified verification pass does.
    fn feasible(&self, members: &[usize]) -> bool {
        self.set_feasible(members)
    }

    fn evict(&self, members: &[usize]) -> (Vec<usize>, Vec<usize>) {
        self.evict_infeasible(members)
    }

    fn additive(&self) -> bool {
        true
    }

    fn threshold(&self) -> f64 {
        self.inv_beta
    }

    fn contribution(&self, source: usize, target: usize) -> f64 {
        let s = &self.links[source];
        let t = &self.links[target];
        if s.id == t.id {
            return 0.0;
        }
        let (Some(p), Some(weight)) = (self.powers[source], self.weights[target]) else {
            return f64::INFINITY;
        };
        let d = s.sender.distance(t.receiver);
        if d <= 0.0 {
            return f64::INFINITY;
        }
        p * weight / self.pow.pow(d)
    }
}

/// One slot's aggregation structure: members binned into the finest grid,
/// per-cell power sums and tight sender boxes at every pyramid level.
///
/// With depth 1 and the flat grid resolution this *is* the PR-3 flat
/// verifier — same cells, same term order, same early exit — which is what
/// the depth-1 differential equivalence rests on.
struct SlotPyramid<'v, 'a> {
    v: &'v AffectanceVerifier<'a>,
    members: &'v [usize],
    pyr: GridPyramid,
    /// Counting-sort offsets per finest cell (`offsets[c]..offsets[c + 1]`
    /// indexes `binned`).
    offsets: Vec<u32>,
    /// Member positions (into `members`) sorted by finest cell.
    binned: Vec<u32>,
    /// Aggregated member power per cell, all levels, indexed by
    /// [`GridPyramid::index`].
    sums: Vec<f64>,
    /// Tight sender bounding box per cell `(min_x, min_y, max_x, max_y)`,
    /// inverted (∞, ∞, −∞, −∞) when empty. Clamped binning may park a
    /// borderline sender outside its cell's nominal square; the far bound
    /// needs a box that provably contains every sender it aggregates.
    boxes: Vec<(f64, f64, f64, f64)>,
    /// Flat near-field rule (3×3 cell adjacency) instead of the distance
    /// gate — the depth-1 / legacy configuration.
    near_by_adjacency: bool,
}

/// One target's query context, shared by every cell-pricing step of a
/// [`SlotPyramid`] descent.
struct TargetQuery {
    /// The target link's receiver position.
    receiver: Point,
    /// The target link's id (its own sender is skipped in exact scans).
    target_id: LinkId,
    /// The target's cached `l_i^α / P(i)` weight.
    weight: f64,
    /// The finest-level cell containing the receiver.
    cell: (usize, usize),
    /// Finest cells with a tight box closer than this are summed exactly
    /// (distance-gated mode; adjacency mode ignores it).
    near_gate: f64,
}

impl<'v, 'a> SlotPyramid<'v, 'a> {
    /// Bins `members` and aggregates the pyramid, or `None` when the
    /// verifier's sender extent is degenerate (no useful binning).
    fn build(
        v: &'v AffectanceVerifier<'a>,
        members: &'v [usize],
        requested_depth: usize,
    ) -> Option<Self> {
        let extent = v.sender_extent?;
        let width = extent.width().max(0.0);
        let height = extent.height().max(0.0);
        if width == 0.0 && height == 0.0 {
            return None;
        }
        let m = members.len();
        // Flat (depth 1): ~m^(1/4) cells per axis balances the per-target
        // far-cell scan (g²) against the near-cell exact work (9 m / g²).
        // Hierarchical: ~4 members per cell — the descent prices far cells
        // per *node*, so finer cells only sharpen the near field.
        let (g, near_by_adjacency) = if requested_depth == 1 {
            (
                (((m as f64).powf(0.25)) * 1.8).ceil().max(1.0) as usize,
                true,
            )
        } else {
            ((((m as f64) / 4.0).sqrt().ceil() as usize).max(2), false)
        };
        let cell = (width.max(height) / g as f64).max(f64::MIN_POSITIVE);
        let cols = ((width / cell).floor() as usize + 1).min(g.max(1));
        let rows = ((height / cell).floor() as usize + 1).min(g.max(1));
        let pyr = GridPyramid::build(
            extent.min_x,
            extent.min_y,
            cell,
            cols,
            rows,
            requested_depth,
        );

        // Counting-sorted member lists per finest cell.
        let n0 = cols * rows;
        let mut counts = vec![0u32; n0 + 1];
        let cells: Vec<u32> = members
            .iter()
            .map(|&i| {
                let (c, r) = pyr.cell_of(v.links[i].sender);
                (r * cols + c) as u32
            })
            .collect();
        for &c in &cells {
            counts[c as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut binned = vec![0u32; m];
        for (pos, &c) in cells.iter().enumerate() {
            binned[cursor[c as usize] as usize] = pos as u32;
            cursor[c as usize] += 1;
        }

        // Finest-level power sums and tight boxes, then aggregate upward —
        // each super-cell folds its (row-major) children.
        let total = pyr.total_cells();
        let mut sums = vec![0.0f64; total];
        let mut boxes = vec![
            (
                f64::INFINITY,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::NEG_INFINITY
            );
            total
        ];
        for c in 0..n0 {
            let mut sum = 0.0;
            let b = &mut boxes[c];
            for &pos in &binned[offsets[c] as usize..offsets[c + 1] as usize] {
                let i = members[pos as usize];
                sum += v.powers[i].expect("powers known");
                let s = v.links[i].sender;
                b.0 = b.0.min(s.x);
                b.1 = b.1.min(s.y);
                b.2 = b.2.max(s.x);
                b.3 = b.3.max(s.y);
            }
            sums[c] = sum;
        }
        for level in 1..pyr.depth() {
            let (lc, lr) = pyr.shape(level);
            for r in 0..lr {
                for c in 0..lc {
                    let pi = pyr.index(level, c, r);
                    let mut sum = 0.0;
                    let mut b = (
                        f64::INFINITY,
                        f64::INFINITY,
                        f64::NEG_INFINITY,
                        f64::NEG_INFINITY,
                    );
                    for (cc, cr) in pyr.children(level, c, r) {
                        let ci = pyr.index(level - 1, cc, cr);
                        sum += sums[ci];
                        let cb = boxes[ci];
                        b.0 = b.0.min(cb.0);
                        b.1 = b.1.min(cb.1);
                        b.2 = b.2.max(cb.2);
                        b.3 = b.3.max(cb.3);
                    }
                    sums[pi] = sum;
                    boxes[pi] = b;
                }
            }
        }
        Some(SlotPyramid {
            v,
            members,
            pyr,
            offsets,
            binned,
            sums,
            boxes,
            near_by_adjacency,
        })
    }

    /// Distance from the target receiver to a cell's tight sender box —
    /// `BoundingBox::distance_to`'s formula, inlined here because empty
    /// cells carry *inverted* boxes (∞, ∞, −∞, −∞), which the `BoundingBox`
    /// constructor's invariant forbids (an inverted box yields `∞`, and
    /// empty cells are skipped via their zero power sum anyway).
    #[inline]
    fn box_distance(&self, idx: usize, p: Point) -> f64 {
        let (bx0, by0, bx1, by1) = self.boxes[idx];
        let dx = (bx0 - p.x).max(p.x - bx1).max(0.0);
        let dy = (by0 - p.y).max(p.y - by1).max(0.0);
        dx.hypot(dy)
    }

    /// Prices one finest-level cell for the target: exact member terms when
    /// near, one aggregate bound otherwise. Returns the cell's contribution,
    /// or `None` when only the exact kernel can price it (a zero distance:
    /// collocated interferer, or a tight box reaching the receiver).
    #[inline]
    fn level0_term(&self, c: usize, r: usize, q: &TargetQuery) -> Option<f64> {
        let v = self.v;
        let idx = self.pyr.index(0, c, r);
        let sum = self.sums[idx];
        let (tc, tr) = q.cell;
        let mut cached_d = f64::NAN;
        let near = if self.near_by_adjacency {
            c.abs_diff(tc) <= 1 && r.abs_diff(tr) <= 1
        } else if sum == 0.0 {
            return Some(0.0);
        } else {
            cached_d = self.box_distance(idx, q.receiver);
            cached_d < q.near_gate
        };
        if near {
            let mut term = 0.0;
            for &pos in &self.binned[self.offsets[idx] as usize..self.offsets[idx + 1] as usize] {
                let j = self.members[pos as usize];
                let source = &v.links[j];
                if source.id == q.target_id {
                    continue;
                }
                let d = source.sender.distance(q.receiver);
                if d <= 0.0 {
                    return None;
                }
                term += v.powers[j].expect("powers known") * q.weight / v.pow.pow(d);
            }
            Some(term)
        } else {
            if sum == 0.0 {
                return Some(0.0);
            }
            let d = if cached_d.is_nan() {
                self.box_distance(idx, q.receiver)
            } else {
                cached_d
            };
            if d <= 0.0 {
                return None;
            }
            Some(sum * q.weight / v.pow.pow(d))
        }
    }

    /// The certified upper bound on the affectance total for `members[k]`,
    /// descending the pyramid top-down (nodes in row-major order, expanded
    /// children likewise — a deterministic term order). Returns early with
    /// the partial total once it exceeds `cap` (pass `∞` for the full
    /// bound); `None` when the bound cannot price the target — unknown
    /// target weight, or a zero distance (collocated interferer / a tight
    /// box reaching the receiver) — which callers resolve exactly.
    fn certify(&self, k: usize, cap: f64) -> Option<f64> {
        let mut expansions = 0u64;
        let out = self.certify_counting(k, cap, &mut expansions);
        self.v.expansions.add(expansions);
        out
    }

    /// The descent body of [`SlotPyramid::certify`], accumulating opened
    /// nodes into `expansions` (flushed by the wrapper with one atomic add).
    fn certify_counting(&self, k: usize, cap: f64, expansions: &mut u64) -> Option<f64> {
        let v = self.v;
        let target = &v.links[self.members[k]];
        let weight = v.weights[self.members[k]]?;
        let receiver = target.receiver;
        let q = TargetQuery {
            receiver,
            target_id: target.id,
            weight,
            cell: self.pyr.cell_of(receiver),
            near_gate: OPEN_GATE * self.pyr.side(0),
        };
        let w = weight;
        let mut total = 0.0f64;

        // Single-level (flat / depth-1) pyramids take a plain row-major
        // sweep — no descent state, no per-target allocation.
        if self.pyr.depth() == 1 {
            let (cols, rows) = self.pyr.shape(0);
            for r in 0..rows {
                for c in 0..cols {
                    total += self.level0_term(c, r, &q)?;
                    if total > cap {
                        return Some(total);
                    }
                }
            }
            return Some(total);
        }

        let top = self.pyr.depth() - 1;
        let (top_cols, top_rows) = self.pyr.shape(top);
        // Expansion frontier: at most 4 children per opened node, a handful
        // of opened nodes per level — a small, single-allocation stack.
        let mut stack: Vec<(u32, u32, u32)> = Vec::with_capacity(top_cols * top_rows + 64);
        for r in (0..top_rows).rev() {
            for c in (0..top_cols).rev() {
                stack.push((top as u32, c as u32, r as u32));
            }
        }
        while let Some((l, c, r)) = stack.pop() {
            let (l, c, r) = (l as usize, c as usize, r as usize);
            if l == 0 {
                total += self.level0_term(c, r, &q)?;
                if total > cap {
                    return Some(total);
                }
                continue;
            }
            let idx = self.pyr.index(l, c, r);
            let sum = self.sums[idx];
            if sum == 0.0 {
                continue;
            }
            let d = self.box_distance(idx, receiver);
            if d >= OPEN_GATE * self.pyr.side(l) {
                total += sum * w / v.pow.pow(d);
                if total > cap {
                    return Some(total);
                }
            } else {
                // Too close for the aggregate: expand the children (pushed
                // reversed so they pop in row-major order).
                *expansions += 1;
                let mut kids = [(0usize, 0usize); 4];
                let mut n = 0;
                for kid in self.pyr.children(l, c, r) {
                    kids[n] = kid;
                    n += 1;
                }
                for &(cc, cr) in kids[..n].iter().rev() {
                    stack.push((l as u32 - 1, cc as u32, cr as u32));
                }
            }
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_geometry::Point;
    use wagg_sinr::affectance::is_feasible_by_affectance;
    use wagg_sinr::{PathLossCache, PowerAssignment};

    fn field(n: usize, spacing: f64) -> Vec<Link> {
        let cols = (n as f64).sqrt().ceil() as usize;
        (0..n)
            .map(|i| {
                let x = (i % cols) as f64 * spacing;
                let y = (i / cols) as f64 * spacing;
                Link::new(i, Point::new(x, y), Point::new(x + 1.0, y))
            })
            .collect()
    }

    fn subset_links(links: &[Link], members: &[usize]) -> Vec<Link> {
        members.iter().map(|&i| links[i]).collect()
    }

    fn strategies() -> Vec<VerifierStrategy> {
        vec![
            VerifierStrategy::Flat,
            VerifierStrategy::Hierarchical { depth: Some(1) },
            VerifierStrategy::Hierarchical { depth: Some(2) },
            VerifierStrategy::Hierarchical { depth: Some(4) },
            VerifierStrategy::Hierarchical { depth: None },
        ]
    }

    #[test]
    fn verdicts_match_is_feasible_by_affectance_exactly() {
        let model = SinrModel::default();
        let power = PowerAssignment::mean();
        // Sweep spacings through the feasibility threshold; include sizes on
        // both sides of the exact cutoff so the certified path is exercised,
        // and every strategy/depth so the battery covers the whole matrix.
        for &(n, spacing) in &[
            (64usize, 3.0),
            (64, 8.0),
            (400, 2.5),
            (400, 6.0),
            (400, 12.0),
        ] {
            let links = field(n, spacing);
            let cache = PathLossCache::new(&model, &links, &power);
            let (powers, weights) = cache.into_parts();
            for strategy in strategies() {
                let verifier = AffectanceVerifier::new(&model, &links, &powers, &weights)
                    .with_strategy(strategy);
                let members: Vec<usize> = (0..n).collect();
                let (kept, evicted) = verifier.evict_infeasible(&members);
                assert_eq!(kept.len() + evicted.len(), n);
                // Kept sets are genuinely feasible under the reference check.
                assert!(
                    is_feasible_by_affectance(&model, &subset_links(&links, &kept), &power),
                    "kept set infeasible at n={n} spacing={spacing} {strategy:?}"
                );
                // And the sweep's verdicts agree with per-target reference sums.
                let reference = PathLossCache::new(&model, &links, &power);
                for (k, &i) in members.iter().enumerate() {
                    let want = match reference.subset_relative_interference_on(&members, k) {
                        Some(t) => t <= 1.0 / model.beta(),
                        None => false,
                    };
                    assert_eq!(
                        kept.contains(&i),
                        want,
                        "target {i} verdict mismatch at n={n} spacing={spacing} {strategy:?}"
                    );
                }
                if evicted.is_empty() {
                    assert!(verifier.set_feasible(&members));
                } else {
                    assert!(!verifier.set_feasible(&members));
                    // Packing terminates and every packed slot is feasible.
                    for slot in verifier.pack_first_fit(&evicted) {
                        assert!(is_feasible_by_affectance(
                            &model,
                            &subset_links(&links, &slot),
                            &power
                        ));
                    }
                }
            }
        }
    }

    #[test]
    fn depth_one_matches_the_flat_strategy_exactly() {
        let model = SinrModel::default();
        let power = PowerAssignment::mean();
        for &(n, spacing) in &[(400usize, 2.5), (400, 6.0), (625, 4.0)] {
            let links = field(n, spacing);
            let cache = PathLossCache::new(&model, &links, &power);
            let (powers, weights) = cache.into_parts();
            let members: Vec<usize> = (0..n).collect();
            let flat = AffectanceVerifier::new(&model, &links, &powers, &weights)
                .with_strategy(VerifierStrategy::Flat);
            let depth1 = AffectanceVerifier::new(&model, &links, &powers, &weights)
                .with_strategy(VerifierStrategy::Hierarchical { depth: Some(1) });
            assert_eq!(
                flat.evict_infeasible(&members),
                depth1.evict_infeasible(&members),
                "depth-1 accept/evict diverged from flat at n={n} spacing={spacing}"
            );
            // The depth-1 bound is the flat bound, term for term.
            for k in (0..n).step_by(37) {
                assert_eq!(
                    flat.hierarchical_bound(&members, k, 1),
                    depth1.hierarchical_bound(&members, k, 1),
                    "bound mismatch at target {k}"
                );
            }
        }
    }

    #[test]
    fn bounds_upper_bound_the_exact_sum_at_every_depth() {
        let model = SinrModel::default();
        let power = PowerAssignment::mean();
        let links = field(400, 3.0);
        let cache = PathLossCache::new(&model, &links, &power);
        let (powers, weights) = cache.into_parts();
        let verifier = AffectanceVerifier::new(&model, &links, &powers, &weights);
        let members: Vec<usize> = (0..links.len()).collect();
        for depth in 1..=8 {
            for k in (0..members.len()).step_by(23) {
                let bound = verifier
                    .hierarchical_bound(&members, k, depth)
                    .expect("grid path available");
                let exact = verifier
                    .exact_affectance(&members, k)
                    .expect("exact sum available");
                assert!(
                    bound >= exact - 1e-12 * exact.abs(),
                    "depth {depth} target {k}: bound {bound} < exact {exact}"
                );
            }
        }
    }

    #[test]
    fn repack_is_deterministic_across_instances_and_input_order() {
        // Regression for the hoisted grid-shape state: the repack path and
        // the query path share one layout anchored at construction, so
        // packing the same evicted *set* — in any input order, from any
        // identically constructed verifier — yields identical slots.
        let model = SinrModel::default();
        let power = PowerAssignment::mean();
        let links = field(400, 2.0);
        let cache = PathLossCache::new(&model, &links, &power);
        let (powers, weights) = cache.into_parts();
        for strategy in strategies() {
            let verifier =
                AffectanceVerifier::new(&model, &links, &powers, &weights).with_strategy(strategy);
            let members: Vec<usize> = (0..links.len()).collect();
            let (_, evicted) = verifier.evict_infeasible(&members);
            assert!(
                !evicted.is_empty(),
                "tight field should force evictions ({strategy:?})"
            );
            let packed = verifier.pack_first_fit(&evicted);
            // Same verifier, reversed input order.
            let mut reversed = evicted.clone();
            reversed.reverse();
            assert_eq!(packed, verifier.pack_first_fit(&reversed), "{strategy:?}");
            // A fresh identically constructed verifier.
            let fresh =
                AffectanceVerifier::new(&model, &links, &powers, &weights).with_strategy(strategy);
            assert_eq!(packed, fresh.pack_first_fit(&evicted), "{strategy:?}");
            for slot in &packed {
                assert!(is_feasible_by_affectance(
                    &model,
                    &subset_links(&links, slot),
                    &power
                ));
            }
        }
    }

    #[test]
    fn missing_powers_fail_exactly_like_the_cache() {
        let model = SinrModel::default();
        let links = field(20, 4.0);
        let empty = PowerAssignment::explicit(std::collections::HashMap::new());
        let cache = PathLossCache::new(&model, &links, &empty);
        let (powers, weights) = cache.into_parts();
        let verifier = AffectanceVerifier::new(&model, &links, &powers, &weights);
        let members: Vec<usize> = (0..20).collect();
        let (kept, evicted) = verifier.evict_infeasible(&members);
        assert!(kept.is_empty());
        assert_eq!(evicted.len(), 20);
        // Singletons are still trivially feasible.
        assert!(verifier.set_feasible(&[3]));
        // The bound cannot price unknown powers either.
        assert_eq!(verifier.hierarchical_bound(&members, 0, 3), None);
    }

    #[test]
    fn collocated_interferers_are_evicted() {
        let model = SinrModel::default();
        // Link 1's sender sits on link 0's receiver.
        let links = vec![
            Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
            Link::new(1, Point::new(1.0, 0.0), Point::new(2.0, 0.0)),
            Link::new(2, Point::new(60.0, 0.0), Point::new(61.0, 0.0)),
        ];
        let power = PowerAssignment::uniform(1.0);
        let cache = PathLossCache::new(&model, &links, &power);
        let (powers, weights) = cache.into_parts();
        let verifier = AffectanceVerifier::new(&model, &links, &powers, &weights);
        let (kept, evicted) = verifier.evict_infeasible(&[0, 1, 2]);
        assert!(evicted.contains(&0)); // infinite interference on target 0
        assert!(kept.contains(&2));
    }
}
