//! The shard scheduling pipeline: per-shard coloring, local verification
//! splits, boundary stitching and the global verification pass.
//!
//! Both entry points — the static [`solve_sharded`](crate::solve_sharded)
//! and [`PartitionedEngine::schedule`](crate::PartitionedEngine::schedule) —
//! reduce their state to the same inputs ([`ShardPieces`] per shard plus
//! global boundary/ownership maps) and run [`schedule_pieces`]:
//!
//! 1. **Color** every shard independently: the owned-only restriction of the
//!    shard's member graph (owned + ghost links) goes through
//!    [`schedule_prebuilt`] with verification deferred — per-shard
//!    verification could not certify a *global* slot anyway.
//! 2. **Split locally** (fixed power assignments, noise-free models): each
//!    shard slices the globally built `PathLossCache` via
//!    [`PathLossCache::subset_parts`] and evicts members whose affectance
//!    already fails among the shard's own links, re-packing them first-fit
//!    into fresh shard colors. This keeps the global pass below from facing
//!    grossly infeasible slots.
//! 3. **Stitch**: interior links keep their shard colors (the layout
//!    guarantees they have no cross-shard conflicts). Boundary links are
//!    swept in ascending global id; any link conflicting with an
//!    already-final neighbour is recolored to the smallest free color at or
//!    above its shard's **parity offset** — adjacent shards have different
//!    tile parities, so simultaneous repairs start in different color bands.
//!    After the sweep, every conflict edge whose endpoints still carry
//!    phase-1 colors is properly colored. (Links the *local split* of
//!    phase 2 re-packed are the exception: the pack is by affectance
//!    feasibility, not graph adjacency, so a re-packed pair may share a
//!    color while being graph-adjacent — physically fine, and phase 4
//!    re-verifies every slot by affectance anyway.)
//! 4. **Verify globally**: every stitched slot passes through the
//!    [`AffectanceVerifier`] (certified bounds — hierarchical far-field
//!    aggregation by default, the flat grid under
//!    [`VerifierStrategy::Flat`] — with exact fallback) and failing
//!    members are evicted and re-packed — so each final slot passes
//!    `is_feasible_by_affectance`. Power modes without a fixed assignment
//!    (global control) and noisy models use
//!    [`split_class_into_feasible`] instead, the unsharded path's exact
//!    splitter.

use crate::layout::PartitionLayout;
use crate::verify::{AffectanceVerifier, VerifierStrategy};
use wagg_conflict::{ConflictGraph, ConflictRelation};
use wagg_obs::Recorder;
use wagg_schedule::{schedule_prebuilt, split_class_into_feasible, SchedulerConfig};
use wagg_sinr::{Link, PathLossCache};

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// One shard's scheduling inputs.
#[derive(Debug, Clone)]
pub(crate) struct ShardPieces {
    /// Global (pipeline) link id of each member, indexed by the member's
    /// local vertex id in `graph`. Owned and ghost links together.
    pub member_globals: Vec<usize>,
    /// Local vertex ids of the owned members, strictly ascending.
    pub owned_local: Vec<usize>,
    /// Conflict graph over all members (links relabeled to local ids).
    pub graph: ConflictGraph,
    /// Chessboard parity of the shard's tile (the repair color offset).
    pub parity: usize,
}

/// What [`schedule_pieces`] produced.
#[derive(Debug, Clone)]
pub(crate) struct PipelineOutcome {
    /// Final verified slots (global link ids, ascending within a slot's kept
    /// prefix; packed overflow slots follow the stitched ones).
    pub slots: Vec<Vec<usize>>,
    /// Colors in use after stitching, before global verification.
    pub coloring_slots: usize,
    /// Links ghosted into at least one other shard.
    pub boundary_links: usize,
    /// Boundary links recolored by the repair sweep.
    pub repaired_links: usize,
    /// Links evicted by the global verification pass (local-phase evictions
    /// are not counted — those stay within their shard's color space).
    pub evicted_links: usize,
    /// Largest per-shard owned-link count (0 with no shards).
    pub max_owned: usize,
    /// Mean per-shard owned-link count (0.0 with no shards).
    pub mean_owned: f64,
    /// Ghost copies per owned link: total ghost memberships across shards
    /// divided by the owned total (0.0 for an empty universe) — the halo
    /// replication overhead of the tiling.
    pub ghost_fraction: f64,
}

/// Builds every shard's [`ShardPieces`] from a [`PartitionLayout`]: member
/// link sets (owned first, then ghosts, each ascending) are relabeled to
/// local ids and their conflict subgraphs built from scratch — one
/// grid-accelerated `ConflictGraph::build` per shard, across threads under
/// the `parallel` feature (the inner builds then run serially inline, so
/// shard results are independent of the thread schedule).
pub(crate) fn build_pieces(
    links: &[Link],
    layout: &PartitionLayout,
    relation: ConflictRelation,
    rec: &Recorder,
) -> Vec<ShardPieces> {
    let phase = rec.span("partition/build");
    let build = |s: usize| -> ShardPieces {
        let shard_span = phase.child("shard");
        let owned = layout.owned(s);
        let ghosts = layout.ghosts(s);
        let member_globals: Vec<usize> = owned
            .iter()
            .chain(ghosts.iter())
            .map(|&g| g as usize)
            .collect();
        let member_links: Vec<Link> = member_globals
            .iter()
            .enumerate()
            .map(|(local, &g)| {
                let mut link = links[g];
                link.id = local.into();
                link
            })
            .collect();
        let pieces = ShardPieces {
            owned_local: (0..owned.len()).collect(),
            graph: ConflictGraph::build(&member_links, relation),
            member_globals,
            parity: layout.parity(s),
        };
        shard_span.finish();
        pieces
    };
    #[cfg(feature = "parallel")]
    let pieces: Vec<ShardPieces> = (0..layout.shards()).into_par_iter().map(build).collect();
    #[cfg(not(feature = "parallel"))]
    let pieces: Vec<ShardPieces> = (0..layout.shards()).map(build).collect();
    phase.finish();
    pieces
}

/// Runs the full pipeline. `links` are the pipeline universe (ids relabeled
/// to positions, all of positive length); `boundary[i]` marks links ghosted
/// into other shards; `owner_of[i]` is `(piece index, local vertex id)` of
/// link `i`'s owned copy.
pub(crate) fn schedule_pieces(
    links: &[Link],
    pieces: &[ShardPieces],
    boundary: &[bool],
    owner_of: &[(u32, u32)],
    config: SchedulerConfig,
    strategy: VerifierStrategy,
    rec: &Recorder,
) -> PipelineOutcome {
    // One globally built cache (fixed assignment, noise-free) feeds every
    // shard slice and the global verifier; other configurations verify by
    // materialising slots, exactly like the unsharded path.
    let assignment = config
        .mode
        .assignment()
        .filter(|_| config.model.noise() == 0.0);
    let global_cache = assignment
        .as_ref()
        .map(|a| PathLossCache::new(&config.model, links, a));

    // Phase 1 + 2: independent per-shard coloring and local splits.
    let color_phase = rec.span("partition/color");
    let shard_colors = |piece: &ShardPieces| -> Vec<usize> {
        let shard_span = color_phase.child("shard");
        let owned_graph = piece.graph.induced_subgraph(&piece.owned_local);
        let report = schedule_prebuilt(&owned_graph, None, config.with_verification(false));
        // Colors indexed by owned position (the owned subgraph's vertex id).
        let mut colors = vec![0usize; piece.owned_local.len()];
        for (slot, members) in report.schedule.slots().iter().enumerate() {
            for &p in members {
                colors[p] = slot;
            }
        }
        let mut num_colors = report.schedule.len();
        if config.verify_slots {
            if let Some(cache) = &global_cache {
                let (powers, weights) = cache.subset_parts(&piece.member_globals);
                let verifier =
                    AffectanceVerifier::new(&config.model, piece.graph.links(), &powers, &weights)
                        .with_strategy(strategy)
                        .with_recorder(rec);
                let mut classes: Vec<Vec<usize>> = vec![Vec::new(); num_colors];
                for (p, &local) in piece.owned_local.iter().enumerate() {
                    classes[colors[p]].push(local);
                }
                let mut evicted_locals: Vec<usize> = Vec::new();
                for class in &classes {
                    let (_, evicted) = verifier.evict_infeasible(class);
                    evicted_locals.extend(evicted);
                }
                if !evicted_locals.is_empty() {
                    for slot in verifier.pack_first_fit(&evicted_locals) {
                        for &local in &slot {
                            let p = piece
                                .owned_local
                                .binary_search(&local)
                                .expect("evicted links are owned");
                            colors[p] = num_colors;
                        }
                        num_colors += 1;
                    }
                }
            }
        }
        shard_span.finish();
        colors
    };
    #[cfg(feature = "parallel")]
    let per_shard: Vec<Vec<usize>> = pieces.par_iter().map(shard_colors).collect();
    #[cfg(not(feature = "parallel"))]
    let per_shard: Vec<Vec<usize>> = pieces.iter().map(shard_colors).collect();

    let mut colors = vec![0usize; links.len()];
    for (piece, piece_colors) in pieces.iter().zip(&per_shard) {
        for (p, &local) in piece.owned_local.iter().enumerate() {
            colors[piece.member_globals[local]] = piece_colors[p];
        }
    }
    color_phase.finish();
    let stitch_phase = rec.span("partition/stitch");

    // Phase 3: boundary repair sweep. A neighbour's color is *final* when the
    // neighbour is interior (its shard coloring already separates it from
    // everything it conflicts with) or an earlier-swept boundary link.
    let mut boundary_links = 0usize;
    let mut repaired_links = 0usize;
    for u in 0..links.len() {
        if !boundary[u] {
            continue;
        }
        boundary_links += 1;
        let (pi, lu) = owner_of[u];
        let piece = &pieces[pi as usize];
        let mut used: Vec<usize> = Vec::new();
        let mut conflict = false;
        for &vl in piece.graph.neighbors(lu as usize) {
            let v = piece.member_globals[vl];
            if !boundary[v] || v < u {
                used.push(colors[v]);
                conflict |= colors[v] == colors[u];
            }
        }
        if conflict {
            used.sort_unstable();
            used.dedup();
            let mut c = piece.parity; // color offsetting: parity band start
            while used.binary_search(&c).is_ok() {
                c += 1;
            }
            colors[u] = c;
            repaired_links += 1;
        }
    }
    let coloring_slots = colors.iter().max().map(|&c| c + 1).unwrap_or(0);
    stitch_phase.finish();

    // Phase 4: global verification.
    let verify_phase = rec.span("partition/verify");
    let mut classes: Vec<Vec<usize>> = vec![Vec::new(); coloring_slots];
    for (i, &c) in colors.iter().enumerate() {
        classes[c].push(i);
    }
    let mut slots: Vec<Vec<usize>> = Vec::new();
    let mut evicted_links = 0usize;
    if !config.verify_slots {
        slots.extend(classes.into_iter().filter(|c| !c.is_empty()));
    } else if let Some(cache) = &global_cache {
        let (powers, weights) = cache.parts();
        let verifier = AffectanceVerifier::new(&config.model, links, powers, weights)
            .with_strategy(strategy)
            .with_recorder(rec);
        let mut all_evicted: Vec<usize> = Vec::new();
        for class in classes.into_iter().filter(|c| !c.is_empty()) {
            let (kept, evicted) = verifier.evict_infeasible(&class);
            if !kept.is_empty() {
                slots.push(kept);
            }
            all_evicted.extend(evicted);
        }
        evicted_links = all_evicted.len();
        slots.extend(verifier.pack_first_fit(&all_evicted));
    } else {
        for class in classes.into_iter().filter(|c| !c.is_empty()) {
            slots.extend(split_class_into_feasible(links, &class, &config, None));
        }
    }
    verify_phase.finish();

    // Per-shard occupancy: how evenly the tiling spread ownership, and how
    // much halo replication the ghosts cost.
    let owned_total: usize = pieces.iter().map(|p| p.owned_local.len()).sum();
    let ghost_copies: usize = pieces
        .iter()
        .map(|p| p.member_globals.len() - p.owned_local.len())
        .sum();
    let max_owned = pieces
        .iter()
        .map(|p| p.owned_local.len())
        .max()
        .unwrap_or(0);
    let mean_owned = if pieces.is_empty() {
        0.0
    } else {
        owned_total as f64 / pieces.len() as f64
    };
    let ghost_fraction = if owned_total == 0 {
        0.0
    } else {
        ghost_copies as f64 / owned_total as f64
    };
    rec.add("partition.owned_links", owned_total as u64);
    rec.add("partition.ghost_copies", ghost_copies as u64);
    rec.record_max("partition.owned_max", max_owned as u64);
    rec.add("partition.boundary_links", boundary_links as u64);
    rec.add("partition.repaired_links", repaired_links as u64);
    rec.add("partition.evicted_links", evicted_links as u64);

    PipelineOutcome {
        slots,
        coloring_slots,
        boundary_links,
        repaired_links,
        evicted_links,
        max_owned,
        mean_owned,
        ghost_fraction,
    }
}
