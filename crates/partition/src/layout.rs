//! The spatial domain decomposition: conflict-radius-sized tiles, link
//! ownership and ghost (halo) membership.
//!
//! The paper's interference model is geometrically local: two links can only
//! conflict when their link-to-link distance is below a radius bounded by
//! their lengths and the conflict relation `f` (the same bound that drives
//! the grid pruning in `ConflictGraph::build`). [`max_conflict_radius`]
//! evaluates that bound per pair of power-of-two length classes, so it stays
//! tight for length-diverse instances instead of degenerating to
//! `l_max · f(Δ)`.
//!
//! [`PartitionLayout`] then tiles the deployment region into shards:
//!
//! * every link is **owned** by the tile containing its midpoint, and
//! * a link is a **ghost** of every other tile its bounding box expanded by
//!   the halo margin `H = R + l_max / 2` touches.
//!
//! The margin makes ownership sound for the stitching pass: if two links
//! owned by *different* shards conflict (distance ≤ `R`), each link's
//! expanded box contains the other's midpoint, so each is a ghost of the
//! other's shard — every cross-shard conflict edge is visible from both
//! owners' member graphs. Conversely a link with no ghost entries (an
//! **interior** link) cannot conflict with any link owned elsewhere: such a
//! partner's midpoint would have to lie inside the interior link's expanded
//! box, which is contained in the owner tile.

use wagg_conflict::ConflictRelation;
use wagg_geometry::tiling::TileLayout;
use wagg_geometry::{BoundingBox, Point};
use wagg_sinr::Link;

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Upper bound on the link-to-link distance at which links with lengths in
/// `[lo_a, hi_a]` and `[lo_b, hi_b]` could still conflict under `relation`:
/// `min(hi_a, hi_b) · f(max(hi_a, hi_b) / min(lo_a, lo_b))`. Sound because
/// `f` is non-decreasing and the true pair radius is
/// `min(l_i, l_j) · f(max(l_i, l_j) / min(l_i, l_j))`.
pub fn conflict_radius_bound(
    (lo_a, hi_a): (f64, f64),
    (lo_b, hi_b): (f64, f64),
    relation: ConflictRelation,
) -> f64 {
    debug_assert!(lo_a > 0.0 && lo_b > 0.0, "length bounds must be positive");
    hi_a.min(hi_b) * relation.f(hi_a.max(hi_b) / lo_a.min(lo_b))
}

/// The maximum distance at which any two of `links` could conflict under
/// `relation`, evaluated per pair of power-of-two length classes (each class
/// carrying its exact min/max member length). Zero-length links are ignored —
/// they conflict at any distance and must be handled out of band. Returns
/// `0.0` when fewer than one positive-length link exists.
pub fn max_conflict_radius(links: &[Link], relation: ConflictRelation) -> f64 {
    let mut classes: std::collections::BTreeMap<i32, (f64, f64)> =
        std::collections::BTreeMap::new();
    for link in links {
        let len = link.length();
        if len <= 0.0 {
            continue;
        }
        let key = len.log2().floor() as i32;
        let entry = classes.entry(key).or_insert((len, len));
        entry.0 = entry.0.min(len);
        entry.1 = entry.1.max(len);
    }
    let bounds: Vec<(f64, f64)> = classes.into_values().collect();
    let mut radius: f64 = 0.0;
    for &a in &bounds {
        for &b in &bounds {
            radius = radius.max(conflict_radius_bound(a, b, relation));
        }
    }
    radius
}

/// A deterministic assignment of links to spatial shards with ghost overlap.
///
/// Shards are the tiles of a [`TileLayout`] sized so that a tile side is at
/// least twice the halo margin (conflicting cross-shard pairs then live in
/// edge- or corner-adjacent tiles, which the 4-class tile parity separates).
/// Built identically for identical inputs — serial and parallel builds agree
/// because the per-link computation is pure and results are assembled in
/// input order.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionLayout {
    tiles: TileLayout,
    radius: f64,
    halo: f64,
    /// Owning tile per link.
    owner: Vec<u32>,
    /// CSR of ghost tiles per link (tiles its halo box overlaps, owner
    /// excluded): link `i`'s ghosts are `ghost_tiles[ghost_offsets[i]..
    /// ghost_offsets[i + 1]]`.
    ghost_offsets: Vec<u32>,
    ghost_tiles: Vec<u32>,
    /// Per tile: owned link ids, ascending.
    shard_owned: Vec<Vec<u32>>,
    /// Per tile: ghost link ids, ascending.
    shard_ghosts: Vec<Vec<u32>>,
}

impl PartitionLayout {
    /// Builds the decomposition of `links` under `relation` into roughly
    /// `target_shards` tiles.
    ///
    /// # Panics
    ///
    /// Panics when `target_shards == 0` or any link has zero length (callers
    /// split degenerate links off first — they conflict with everything, so
    /// no finite halo can localise them).
    pub fn build(links: &[Link], relation: ConflictRelation, target_shards: usize) -> Self {
        assert!(target_shards > 0, "need at least one shard");
        assert!(
            links.iter().all(|l| l.length() > 0.0),
            "degenerate links cannot be spatially partitioned"
        );
        let radius = max_conflict_radius(links, relation);
        let max_len = links.iter().map(|l| l.length()).fold(0.0f64, f64::max);
        let halo = radius + max_len / 2.0;
        let bboxes: Vec<BoundingBox> = links
            .iter()
            .map(|l| BoundingBox::of_segment(l.sender, l.receiver))
            .collect();
        let extent = bboxes
            .iter()
            .fold(None::<BoundingBox>, |acc, b| {
                Some(match acc {
                    None => *b,
                    Some(a) => BoundingBox::new(
                        a.min_x.min(b.min_x),
                        a.min_y.min(b.min_y),
                        a.max_x.max(b.max_x),
                        a.max_y.max(b.max_y),
                    ),
                })
            })
            .unwrap_or(BoundingBox::new(0.0, 0.0, 1.0, 1.0));
        let min_tile = (2.0 * halo).max(f64::MIN_POSITIVE);
        let tiles = TileLayout::cover(&extent, target_shards, min_tile);

        // Per-link ownership and ghost tiles: pure per-link work, assembled
        // in input order (parallel == serial).
        let site_of = |i: usize| -> (u32, Vec<u32>) {
            let link = &links[i];
            let owner = tiles.tile_of(Point::midpoint(&link.sender, link.receiver)) as u32;
            let mut ghosts = Vec::new();
            tiles.for_each_tile_overlapping(&bboxes[i], halo, |t| {
                if t as u32 != owner {
                    ghosts.push(t as u32);
                }
            });
            (owner, ghosts)
        };
        #[cfg(feature = "parallel")]
        let sites: Vec<(u32, Vec<u32>)> = (0..links.len()).into_par_iter().map(site_of).collect();
        #[cfg(not(feature = "parallel"))]
        let sites: Vec<(u32, Vec<u32>)> = (0..links.len()).map(site_of).collect();

        let mut owner = Vec::with_capacity(links.len());
        let mut ghost_offsets = Vec::with_capacity(links.len() + 1);
        ghost_offsets.push(0u32);
        let mut ghost_tiles = Vec::new();
        let mut shard_owned = vec![Vec::new(); tiles.tiles()];
        let mut shard_ghosts = vec![Vec::new(); tiles.tiles()];
        for (i, (own, ghosts)) in sites.into_iter().enumerate() {
            owner.push(own);
            shard_owned[own as usize].push(i as u32);
            for &t in &ghosts {
                shard_ghosts[t as usize].push(i as u32);
            }
            ghost_tiles.extend(ghosts);
            ghost_offsets.push(ghost_tiles.len() as u32);
        }
        PartitionLayout {
            tiles,
            radius,
            halo,
            owner,
            ghost_offsets,
            ghost_tiles,
            shard_owned,
            shard_ghosts,
        }
    }

    /// The underlying tile grid.
    pub fn tiles(&self) -> &TileLayout {
        &self.tiles
    }

    /// Number of shards (tiles). May be below the build target when the
    /// halo-derived minimum tile side caps the grid.
    pub fn shards(&self) -> usize {
        self.tiles.tiles()
    }

    /// The conflict radius `R` the decomposition was sized for.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The ghost margin `H = R + l_max / 2`.
    pub fn halo(&self) -> f64 {
        self.halo
    }

    /// The shard owning link `i`.
    pub fn owner(&self, i: usize) -> usize {
        self.owner[i] as usize
    }

    /// The shards holding a ghost copy of link `i` (ascending, owner
    /// excluded).
    pub fn ghost_shards(&self, i: usize) -> &[u32] {
        &self.ghost_tiles[self.ghost_offsets[i] as usize..self.ghost_offsets[i + 1] as usize]
    }

    /// Whether link `i` is a boundary link (ghosted into at least one other
    /// shard). Interior links provably have no cross-shard conflicts.
    pub fn is_boundary(&self, i: usize) -> bool {
        self.ghost_offsets[i + 1] > self.ghost_offsets[i]
    }

    /// The links owned by `shard`, ascending.
    pub fn owned(&self, shard: usize) -> &[u32] {
        &self.shard_owned[shard]
    }

    /// The links ghosted into `shard`, ascending.
    pub fn ghosts(&self, shard: usize) -> &[u32] {
        &self.shard_ghosts[shard]
    }

    /// The chessboard parity class of `shard` (see [`TileLayout::parity`]).
    pub fn parity(&self, shard: usize) -> usize {
        self.tiles.parity(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_geometry::Point;

    fn line_link(id: usize, s: f64, r: f64) -> Link {
        Link::new(id, Point::on_line(s), Point::on_line(r))
    }

    #[test]
    fn radius_bound_matches_the_exact_pair_radius_for_uniform_lengths() {
        // Equal unit lengths: exact pair radius is 1 · f(1).
        for relation in [
            ConflictRelation::unit_constant(),
            ConflictRelation::oblivious_default(),
            ConflictRelation::arbitrary_default(),
        ] {
            let links: Vec<Link> = (0..10)
                .map(|i| line_link(i, i as f64 * 3.0, i as f64 * 3.0 + 1.0))
                .collect();
            let r = max_conflict_radius(&links, relation);
            assert!((r - relation.f(1.0)).abs() < 1e-12, "{relation}: {r}");
        }
    }

    #[test]
    fn radius_is_sound_for_every_conflicting_pair() {
        // Length-diverse chain; check against the definition directly.
        let mut links = Vec::new();
        for i in 0..40 {
            let x = i as f64 * 2.5;
            let len = 1.0 + (i % 5) as f64 * 3.7;
            links.push(line_link(i, x, x + len));
        }
        for relation in [
            ConflictRelation::unit_constant(),
            ConflictRelation::oblivious_default(),
        ] {
            let r = max_conflict_radius(&links, relation);
            for i in 0..links.len() {
                for j in (i + 1)..links.len() {
                    if relation.conflicting(&links[i], &links[j]) {
                        let d = links[i].distance_to(&links[j]);
                        assert!(d <= r + 1e-9, "{relation}: pair ({i},{j}) at {d} > R={r}");
                    }
                }
            }
        }
    }

    #[test]
    fn class_pair_radius_is_tighter_than_the_global_bound() {
        // Lengths 1 and 1024: the naive bound l_max · f(Δ) is far above the
        // class-pair maximum for the constant relation.
        let links = vec![line_link(0, 0.0, 1.0), line_link(1, 100.0, 1124.0)];
        let relation = ConflictRelation::unit_constant();
        let r = max_conflict_radius(&links, relation);
        // Constant relation: every pair radius is min(l_i, l_j) · γ ≤ 1024 γ,
        // and the cross-class bound is min(1, 1024) · γ = γ.
        assert!(r <= 1024.0);
        assert!((r - 1024.0 * relation.f(1.0)).abs() < 1e-9 || r < 1024.0);
    }

    #[test]
    fn ownership_and_ghosts_are_deterministic_and_consistent() {
        let links: Vec<Link> = (0..200)
            .map(|i| {
                let x = (i % 20) as f64 * 5.0;
                let y = (i / 20) as f64 * 5.0;
                Link::new(i, Point::new(x, y), Point::new(x + 1.0, y))
            })
            .collect();
        let relation = ConflictRelation::unit_constant();
        let a = PartitionLayout::build(&links, relation, 16);
        let b = PartitionLayout::build(&links, relation, 16);
        assert_eq!(a, b);
        assert!(a.shards() >= 2);
        // Every link is owned exactly once; shard lists invert the maps.
        let total_owned: usize = (0..a.shards()).map(|s| a.owned(s).len()).sum();
        assert_eq!(total_owned, links.len());
        for (i, _) in links.iter().enumerate() {
            assert!(a.owned(a.owner(i)).contains(&(i as u32)));
            for &g in a.ghost_shards(i) {
                assert_ne!(g as usize, a.owner(i));
                assert!(a.ghosts(g as usize).contains(&(i as u32)));
            }
        }
    }

    #[test]
    fn cross_shard_conflicts_are_mutually_ghosted() {
        // A dense random-ish field with mixed lengths.
        let links: Vec<Link> = (0..300)
            .map(|i| {
                let x = ((i * 37) % 100) as f64;
                let y = ((i * 61) % 100) as f64;
                let len = 0.5 + (i % 4) as f64;
                Link::new(i, Point::new(x, y), Point::new(x + len, y))
            })
            .collect();
        for relation in [
            ConflictRelation::unit_constant(),
            ConflictRelation::oblivious_default(),
        ] {
            let layout = PartitionLayout::build(&links, relation, 9);
            for i in 0..links.len() {
                for j in (i + 1)..links.len() {
                    if layout.owner(i) == layout.owner(j) {
                        continue;
                    }
                    if relation.conflicting(&links[i], &links[j]) {
                        assert!(
                            layout.ghost_shards(i).contains(&(layout.owner(j) as u32)),
                            "{relation}: {i} not ghosted into owner({j})"
                        );
                        assert!(
                            layout.ghost_shards(j).contains(&(layout.owner(i) as u32)),
                            "{relation}: {j} not ghosted into owner({i})"
                        );
                        assert!(layout.is_boundary(i) && layout.is_boundary(j));
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "degenerate links")]
    fn degenerate_links_are_rejected() {
        let links = vec![line_link(0, 1.0, 1.0)];
        let _ = PartitionLayout::build(&links, ConflictRelation::unit_constant(), 4);
    }
}
