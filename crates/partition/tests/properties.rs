//! Shard-invariance properties of the sharded scheduler:
//!
//! * the stitched schedule is a partition of the link set and every slot is
//!   SINR-feasible (`is_feasible_by_affectance` for fixed power assignments,
//!   `Schedule::verify` for every mode) — for **every** shard count;
//! * link ownership and halo (ghost) membership are deterministic: two
//!   builds over the same inputs agree exactly (the per-link computation is
//!   pure and assembled in input order, so serial and parallel feature
//!   builds agree as well — `ci.sh` runs this suite in both configurations);
//! * at one shard with verification off, the sharded path reproduces the
//!   unsharded `solve_static` coloring slot for slot.

use proptest::prelude::*;
use wagg_geometry::Point;
use wagg_partition::{solve_sharded, PartitionLayout, VerifierStrategy};
use wagg_schedule::{solve_static, PowerMode, SchedulerConfig};
use wagg_sinr::affectance::is_feasible_by_affectance;
use wagg_sinr::Link;

/// Decodes proptest scalars into a link set with mixed lengths.
fn decode_links(raw: &[(f64, f64, f64, f64)]) -> Vec<Link> {
    raw.iter()
        .enumerate()
        .map(|(i, &(x, y, angle, len))| {
            Link::new(
                i,
                Point::new(x, y),
                Point::new(x + len * angle.cos(), y + len * angle.sin()),
            )
        })
        .collect()
}

fn assert_sharded_invariants(links: &[Link], config: SchedulerConfig, shards: usize) {
    let sharded = solve_sharded(links, config, shards, VerifierStrategy::default());
    let schedule = &sharded.report.schedule;
    assert!(
        schedule.is_partition(links.len()),
        "{} shards: schedule is not a partition",
        shards
    );
    assert!(
        schedule.verify(links, &config.model, config.mode),
        "{} shards: schedule failed mode verification",
        shards
    );
    if let Some(assignment) = config.mode.assignment() {
        if config.model.noise() == 0.0 {
            for slot in schedule.slots() {
                let slot_links: Vec<Link> = slot.iter().map(|&i| links[i]).collect();
                assert!(
                    is_feasible_by_affectance(&config.model, &slot_links, &assignment),
                    "{} shards: slot {slot:?} fails the affectance check",
                    shards
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Stitched schedules are partitions and SINR-feasible across shard
    /// counts, for the oblivious (fixed-assignment) mode.
    #[test]
    fn stitched_schedules_are_feasible_across_shard_counts(
        raw in proptest::collection::vec(
            (0.0f64..200.0, 0.0f64..200.0, 0.0f64..std::f64::consts::TAU, 0.5f64..6.0),
            40..160,
        ),
    ) {
        let links = decode_links(&raw);
        let config = SchedulerConfig::new(PowerMode::mean_oblivious());
        for shards in [1usize, 2, 4, 9, 25] {
            assert_sharded_invariants(&links, config, shards);
        }
    }

    /// The same invariants under global power control (per-slot witness
    /// powers, no shared cache — the split path).
    #[test]
    fn global_control_schedules_verify_across_shard_counts(
        raw in proptest::collection::vec(
            (0.0f64..120.0, 0.0f64..120.0, 0.0f64..std::f64::consts::TAU, 0.5f64..4.0),
            30..80,
        ),
    ) {
        let links = decode_links(&raw);
        let config = SchedulerConfig::new(PowerMode::GlobalControl);
        for shards in [1usize, 4, 9] {
            assert_sharded_invariants(&links, config, shards);
        }
    }

    /// Ownership and ghost membership are a pure function of the inputs.
    #[test]
    fn ownership_and_halo_membership_are_deterministic(
        raw in proptest::collection::vec(
            (0.0f64..150.0, 0.0f64..150.0, 0.0f64..std::f64::consts::TAU, 0.5f64..5.0),
            20..100,
        ),
        shards in 1usize..20,
    ) {
        let links = decode_links(&raw);
        let relation = PowerMode::mean_oblivious().conflict_relation(3.0);
        let a = PartitionLayout::build(&links, relation, shards);
        let b = PartitionLayout::build(&links, relation, shards);
        prop_assert_eq!(&a, &b);
        // Scheduling twice gives the identical report.
        let config = SchedulerConfig::new(PowerMode::mean_oblivious());
        let r1 = solve_sharded(&links, config, shards, VerifierStrategy::default());
        let r2 = solve_sharded(&links, config, shards, VerifierStrategy::default());
        prop_assert_eq!(r1, r2);
    }

    /// One shard with verification off reproduces the unsharded coloring.
    #[test]
    fn single_shard_matches_the_unsharded_coloring(
        raw in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..std::f64::consts::TAU, 0.5f64..4.0),
            20..80,
        ),
    ) {
        let links = decode_links(&raw);
        for mode in [PowerMode::Uniform, PowerMode::mean_oblivious(), PowerMode::GlobalControl] {
            let config = SchedulerConfig::new(mode).with_verification(false);
            let sharded = solve_sharded(&links, config, 1, VerifierStrategy::default());
            let direct = solve_static(&links, config);
            prop_assert_eq!(
                &sharded.report.schedule, &direct.schedule,
                "mode {} diverged at one shard", mode
            );
            prop_assert_eq!(sharded.report.coloring_slots, direct.coloring_slots);
        }
    }
}

/// Degenerate (zero-length) links cannot share any slot; the sharded path
/// splits them off and appends singletons.
#[test]
fn degenerate_links_get_singleton_slots() {
    let mut links = decode_links(&[
        (0.0, 0.0, 0.0, 1.0),
        (30.0, 0.0, 0.0, 1.0),
        (60.0, 0.0, 0.0, 1.0),
    ]);
    links.push(Link::new(3, Point::new(10.0, 10.0), Point::new(10.0, 10.0)));
    let config = SchedulerConfig::new(PowerMode::mean_oblivious());
    let sharded = solve_sharded(&links, config, 4, VerifierStrategy::default());
    let schedule = &sharded.report.schedule;
    assert!(schedule.is_partition(links.len()));
    let degenerate_slot = schedule
        .slots()
        .iter()
        .find(|s| s.contains(&3))
        .expect("degenerate link is scheduled");
    assert_eq!(degenerate_slot, &vec![3]);
}

/// A worked boundary case: a dense strip crossing many tiles, where most
/// links are boundary links and the repair sweep must fire.
#[test]
fn dense_boundary_strips_still_schedule_feasibly() {
    let links: Vec<Link> = (0..240)
        .map(|i| {
            let x = i as f64 * 1.1;
            Link::new(i, Point::new(x, 0.0), Point::new(x + 1.0, 0.0))
        })
        .collect();
    let config = SchedulerConfig::new(PowerMode::mean_oblivious());
    for shards in [4usize, 16, 64] {
        let sharded = solve_sharded(&links, config, shards, VerifierStrategy::default());
        assert!(sharded.report.schedule.is_partition(links.len()));
        assert!(sharded
            .report
            .schedule
            .verify(&links, &config.model, config.mode));
        if sharded.shards > 1 {
            assert!(sharded.boundary_links > 0, "{shards}: no boundary links?");
        }
    }
}
