//! `PartitionedEngine` churn coverage: arbitrary churn-then-`schedule()`
//! traces routed through the (hierarchical) certified verifier stay
//! `is_feasible_by_affectance`-clean, including traces that force ghost
//! re-ownership at tile boundaries — and the flat and hierarchical verifier
//! strategies produce the identical stitched schedule at every point of a
//! trace.

use proptest::prelude::*;
use wagg_geometry::{BoundingBox, Point};
use wagg_partition::{PartitionedEngine, PartitionedEngineConfig, VerifierStrategy};
use wagg_schedule::{PowerMode, SchedulerConfig};
use wagg_sinr::affectance::is_feasible_by_affectance;
use wagg_sinr::Link;

const SIDE: f64 = 120.0;
const LEN_BOUNDS: (f64, f64) = (1.0, 1.5);

fn engine(shards: usize, strategy: VerifierStrategy) -> PartitionedEngine {
    PartitionedEngine::new(
        PartitionedEngineConfig::new(
            SchedulerConfig::new(PowerMode::mean_oblivious()),
            BoundingBox::new(0.0, 0.0, SIDE, SIDE),
            LEN_BOUNDS,
            shards,
        )
        .with_verifier(strategy),
    )
}

/// Clamps a proptest-generated geometry into the declared length bounds and
/// the deployment extent.
fn geometry(x: f64, y: f64, angle: f64, len: f64) -> (Point, Point) {
    let len = LEN_BOUNDS.0 + (LEN_BOUNDS.1 - LEN_BOUNDS.0) * len.fract().abs();
    let sender = Point::new(x, y);
    let receiver = Point::new(x + len * angle.cos(), y + len * angle.sin());
    (sender, receiver)
}

/// Asserts the engine's stitched schedule is a partition whose every slot
/// passes the exact affectance check.
fn assert_schedule_clean(e: &PartitionedEngine, context: &str) {
    let links: Vec<Link> = e.links();
    let sharded = e.schedule();
    assert!(
        sharded.report.schedule.is_partition(links.len()),
        "{context}: schedule is not a partition"
    );
    let config = e.config().scheduler;
    let assignment = config.mode.assignment().expect("fixed mode");
    for slot in sharded.report.schedule.slots() {
        let slot_links: Vec<Link> = slot.iter().map(|&i| links[i]).collect();
        assert!(
            is_feasible_by_affectance(&config.model, &slot_links, &assignment),
            "{context}: slot {slot:?} fails the affectance check"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary interleavings of inserts, removals and relocations — with
    /// periodic reschedules — keep every emitted slot affectance-clean, and
    /// the flat-verifier engine replays the identical schedule.
    #[test]
    fn churn_traces_stay_affectance_clean(
        ops in proptest::collection::vec(
            (0u8..4, 0.2f64..110.0, 0.2f64..110.0, 0.0f64..std::f64::consts::TAU, 0.0f64..1.0),
            30..90,
        ),
        shards in prop_oneof![Just(4usize), Just(9usize), Just(16usize)],
    ) {
        let mut hier = engine(shards, VerifierStrategy::default());
        let mut flat = engine(shards, VerifierStrategy::Flat);
        let mut keys: Vec<u64> = Vec::new();
        for (step, &(op, x, y, angle, len)) in ops.iter().enumerate() {
            let (sender, receiver) = geometry(x, y, angle, len);
            match op {
                // Removal (when possible), cycling through live keys.
                0 if !keys.is_empty() => {
                    let key = keys.remove(step % keys.len());
                    hier.remove_link(key).expect("live key");
                    flat.remove_link(key).expect("live key");
                }
                // Relocation: re-derives ownership and ghost sites.
                1 if !keys.is_empty() => {
                    let key = keys[step % keys.len()];
                    hier.relocate_link(key, sender, receiver).expect("live key");
                    flat.relocate_link(key, sender, receiver).expect("live key");
                }
                // Insert (also the fallback when no key is live).
                _ => {
                    let k1 = hier.insert_link(sender, receiver);
                    let k2 = flat.insert_link(sender, receiver);
                    prop_assert_eq!(k1, k2, "engines assigned different keys");
                    keys.push(k1);
                }
            }
            if step % 17 == 16 {
                assert_schedule_clean(&hier, &format!("mid-trace step {step}"));
            }
        }
        assert_schedule_clean(&hier, "end of trace");
        // Differential: the flat-verifier engine stitches the identical
        // schedule from the identical trace.
        prop_assert_eq!(hier.schedule(), flat.schedule());
    }
}

/// Finds an x coordinate whose unit link straddles a tile boundary (the
/// insert would be ghosted into a neighbouring shard), probed through the
/// engine's own placement rule.
fn boundary_x(e: &PartitionedEngine, y: f64) -> f64 {
    let mut x = 2.0;
    while x < SIDE - 2.0 {
        if e.shards_touched(Point::new(x, y), Point::new(x + 1.0, y)) > 1 {
            return x;
        }
        x += 0.25;
    }
    panic!("no tile boundary found along y={y}");
}

/// Finds an x coordinate whose unit link is interior (owner shard only).
fn interior_x(e: &PartitionedEngine, y: f64) -> f64 {
    let mut x = 2.0;
    while x < SIDE - 2.0 {
        if e.shards_touched(Point::new(x, y), Point::new(x + 1.0, y)) == 1 {
            return x;
        }
        x += 0.25;
    }
    panic!("no interior position found along y={y}");
}

/// A trace that repeatedly drags links across a tile boundary — each
/// relocation re-derives the owner and re-creates ghost copies — and
/// reschedules after every hop. Every intermediate schedule must stay
/// affectance-clean, and ghost bookkeeping must drain to zero when the
/// boundary links leave.
#[test]
fn ghost_reownership_at_tile_boundaries_stays_clean() {
    let mut e = engine(16, VerifierStrategy::default());
    assert!(e.shard_count() >= 4, "need a real decomposition");

    // A backdrop of links in several tiles (some straddle halos — that's
    // fine; their ghost copies are a constant baseline below).
    let mut backdrop = Vec::new();
    for i in 0..24u64 {
        let x = 4.0 + (i % 6) as f64 * 18.0;
        let y = 4.0 + (i / 6) as f64 * 24.0;
        backdrop.push(e.insert_link(Point::new(x, y), Point::new(x + 1.0, y)));
    }
    let base_ghosts = e.stats().ghost_copies;

    // Movers that hop between an interior and a boundary-straddling
    // geometry: every hop flips ghost membership, and hops across the
    // border flip ownership between the adjacent shards.
    let rows = [10.0, 40.0, 70.0];
    let mut movers = Vec::new();
    for &y in &rows {
        let bx = boundary_x(&e, y);
        let ix = interior_x(&e, y);
        let key = e.insert_link(Point::new(ix, y), Point::new(ix + 1.0, y));
        movers.push((key, ix, bx, y));
    }
    assert_eq!(e.stats().ghost_copies, base_ghosts, "movers start interior");

    for round in 0..4 {
        for &(key, _ix, bx, y) in &movers {
            // Onto the boundary: ghosted into the neighbour shard(s).
            e.relocate_link(key, Point::new(bx, y), Point::new(bx + 1.0, y))
                .expect("live mover");
        }
        assert!(
            e.stats().ghost_copies >= base_ghosts + movers.len(),
            "round {round}: boundary movers must be ghosted"
        );
        assert_schedule_clean(&e, &format!("round {round}, movers on the boundary"));
        for &(key, ix, bx, y) in &movers {
            // Across to the far side of the border: ownership flips.
            e.relocate_link(key, Point::new(bx + 1.2, y), Point::new(bx + 2.2, y))
                .expect("live mover");
            // And back to the interior: ghosts are dropped again.
            e.relocate_link(key, Point::new(ix, y), Point::new(ix + 1.0, y))
                .expect("live mover");
        }
        assert_eq!(
            e.stats().ghost_copies,
            base_ghosts,
            "round {round}: interior movers must shed every ghost copy"
        );
        assert_schedule_clean(&e, &format!("round {round}, movers back inside"));
    }

    // Tear the backdrop down; the movers alone still schedule cleanly.
    for key in backdrop {
        e.remove_link(key).unwrap();
    }
    assert_schedule_clean(&e, "backdrop removed");
    assert_eq!(e.len(), movers.len());
}
