//! The hierarchical-verifier certification battery:
//!
//! * **Soundness of the aggregate** — on arbitrary seeded instances, the
//!   hierarchical per-target bound at *every* pyramid depth upper-bounds the
//!   exact affectance sum (`ci.sh` runs this suite serial and parallel, so
//!   both configurations are certified);
//! * **Differential scheduling** — full sharded scheduling with the
//!   hierarchical verifier vs the flat verifier produces schedules that are
//!   both partitions and slot-for-slot SINR-feasible, across shard counts
//!   and pyramid depths. Stronger still: because a bound-certified target is
//!   also exact-feasible and a failed bound falls back to the exact kernel,
//!   accept/evict decisions are *identical* under every strategy — the
//!   reports are asserted equal, and depth 1 must equal the flat path's
//!   decisions exactly (it is the same code path, pinned here).

use proptest::prelude::*;
use wagg_geometry::Point;
use wagg_partition::{solve_sharded, AffectanceVerifier, VerifierStrategy};
use wagg_schedule::{PowerMode, SchedulerConfig};
use wagg_sinr::affectance::is_feasible_by_affectance;
use wagg_sinr::{Link, PathLossCache, SinrModel};

/// Decodes proptest scalars into a link set with mixed lengths.
fn decode_links(raw: &[(f64, f64, f64, f64)]) -> Vec<Link> {
    raw.iter()
        .enumerate()
        .map(|(i, &(x, y, angle, len))| {
            Link::new(
                i,
                Point::new(x, y),
                Point::new(x + len * angle.cos(), y + len * angle.sin()),
            )
        })
        .collect()
}

/// The strategy matrix the differential battery sweeps: the flat baseline
/// plus pyramid depths 1 (must collapse to flat), shallow, and natural.
fn strategy_matrix() -> Vec<VerifierStrategy> {
    vec![
        VerifierStrategy::Flat,
        VerifierStrategy::Hierarchical { depth: Some(1) },
        VerifierStrategy::Hierarchical { depth: Some(2) },
        VerifierStrategy::Hierarchical { depth: Some(3) },
        VerifierStrategy::Hierarchical { depth: None },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// At every pyramid depth the certified bound upper-bounds the exact
    /// affectance sum on every target of an arbitrary instance.
    #[test]
    fn hierarchical_bound_is_sound_at_every_depth(
        raw in proptest::collection::vec(
            (0.0f64..160.0, 0.0f64..160.0, 0.0f64..std::f64::consts::TAU, 0.5f64..5.0),
            30..120,
        ),
    ) {
        let links = decode_links(&raw);
        let model = SinrModel::default();
        let assignment = PowerMode::mean_oblivious().assignment().expect("fixed mode");
        let cache = PathLossCache::new(&model, &links, &assignment);
        let (powers, weights) = cache.into_parts();
        let verifier = AffectanceVerifier::new(&model, &links, &powers, &weights);
        let members: Vec<usize> = (0..links.len()).collect();
        for depth in 1..=7usize {
            for k in 0..members.len() {
                let Some(bound) = verifier.hierarchical_bound(&members, k, depth) else {
                    // The grid path declined (collocated geometry / unknown
                    // quantities); the verifier resolves these exactly.
                    continue;
                };
                let exact = verifier
                    .exact_affectance(&members, k)
                    .expect("bound exists, so powers and weight are known");
                prop_assert!(
                    bound >= exact - 1e-12 * exact.abs() - 1e-300,
                    "depth {} target {}: bound {} < exact {}",
                    depth, k, bound, exact
                );
            }
        }
    }

    /// Deeper pyramids only ever coarsen the far field, so every depth's
    /// bound certifies whenever the slot is truly feasible-with-margin; and
    /// regardless of how tight each bound is, the *schedules* the verifier
    /// strategies produce are identical: partitions, slot-for-slot
    /// SINR-feasible, and equal across the whole matrix.
    #[test]
    fn sharded_schedules_agree_across_strategies_and_depths(
        raw in proptest::collection::vec(
            (0.0f64..180.0, 0.0f64..180.0, 0.0f64..std::f64::consts::TAU, 0.5f64..5.0),
            40..140,
        ),
    ) {
        let links = decode_links(&raw);
        let config = SchedulerConfig::new(PowerMode::mean_oblivious());
        let assignment = config.mode.assignment().expect("fixed mode");
        for shards in [1usize, 4, 9] {
            let flat = solve_sharded(&links, config, shards, VerifierStrategy::Flat);
            prop_assert!(flat.report.schedule.is_partition(links.len()));
            for slot in flat.report.schedule.slots() {
                let slot_links: Vec<Link> = slot.iter().map(|&i| links[i]).collect();
                prop_assert!(
                    is_feasible_by_affectance(&config.model, &slot_links, &assignment),
                    "flat/{} shards: slot {:?} fails affectance", shards, slot
                );
            }
            for strategy in strategy_matrix() {
                let sharded = solve_sharded(&links, config, shards, strategy);
                prop_assert_eq!(
                    &sharded, &flat,
                    "strategy {:?} diverged from flat at {} shards", strategy, shards
                );
            }
        }
    }
}

/// A deterministic worked instance, dense enough that the certified grid
/// path (slot > exact cutoff) carries the verification: the full strategy /
/// depth / shard matrix must produce the identical verified schedule.
#[test]
fn dense_grid_instance_schedules_identically_across_the_matrix() {
    let links: Vec<Link> = (0..700)
        .map(|i| {
            let x = (i % 28) as f64 * 2.3;
            let y = (i / 28) as f64 * 2.3;
            Link::new(i, Point::new(x, y), Point::new(x + 1.0, y))
        })
        .collect();
    let config = SchedulerConfig::new(PowerMode::mean_oblivious());
    let assignment = config.mode.assignment().expect("fixed mode");
    for shards in [1usize, 4, 16] {
        let flat = solve_sharded(&links, config, shards, VerifierStrategy::Flat);
        assert!(flat.report.schedule.is_partition(links.len()));
        for slot in flat.report.schedule.slots() {
            let slot_links: Vec<Link> = slot.iter().map(|&i| links[i]).collect();
            assert!(is_feasible_by_affectance(
                &config.model,
                &slot_links,
                &assignment
            ));
        }
        for strategy in strategy_matrix() {
            let sharded = solve_sharded(&links, config, shards, strategy);
            assert_eq!(
                sharded, flat,
                "{strategy:?} diverged from flat at {shards} shards"
            );
        }
    }
}

/// Depth-1 bounds are the flat grid's bounds term for term (same cells, same
/// order), on a slot big enough to exercise the certified path. (The
/// `verify.rs` unit suite pins the same equality across a spacing sweep;
/// this copy covers the *public* `hierarchical_bound` surface on a
/// non-square field.)
#[test]
fn depth_one_bound_equals_the_flat_bound() {
    let links: Vec<Link> = (0..500)
        .map(|i| {
            let x = (i % 25) as f64 * 3.1;
            let y = (i / 25) as f64 * 2.9;
            Link::new(i, Point::new(x, y), Point::new(x + 1.0, y))
        })
        .collect();
    let model = SinrModel::default();
    let assignment = PowerMode::mean_oblivious()
        .assignment()
        .expect("fixed mode");
    let cache = PathLossCache::new(&model, &links, &assignment);
    let (powers, weights) = cache.into_parts();
    let flat = AffectanceVerifier::new(&model, &links, &powers, &weights)
        .with_strategy(VerifierStrategy::Flat);
    let hier = AffectanceVerifier::new(&model, &links, &powers, &weights)
        .with_strategy(VerifierStrategy::Hierarchical { depth: Some(1) });
    let members: Vec<usize> = (0..links.len()).collect();
    for k in 0..members.len() {
        assert_eq!(
            flat.hierarchical_bound(&members, k, 1),
            hier.hierarchical_bound(&members, k, 1),
            "flat vs depth-1 bound diverged at target {k}"
        );
    }
    assert_eq!(
        flat.evict_infeasible(&members),
        hier.evict_infeasible(&members)
    );
}
