//! Discrete-time convergecast simulation.
//!
//! This crate replays a periodic aggregation schedule over a convergecast tree in
//! the frame-by-frame style of the paper's Fig. 1: every `frame_period` slots each
//! node takes a new measurement; measurements of the same frame are aggregated (the
//! aggregation function is fully compressible, so a node forwards a single packet
//! per frame once its whole subtree has contributed); the sink completes a frame
//! when every node's contribution has arrived.
//!
//! The simulator measures what the paper's rate/latency discussion predicts:
//!
//! * a schedule of length `T` sustains a frame period of `T` (rate `1/T`) with
//!   bounded buffers,
//! * pushing frames faster than the schedule length makes buffers grow without
//!   bound,
//! * the latency of each frame is roughly `depth × T`.
//!
//! # Examples
//!
//! ```
//! use wagg_instances::fig1::{fig1_links, fig1_schedule_slots};
//! use wagg_schedule::Schedule;
//! use wagg_sim::{ConvergecastSim, SimConfig};
//!
//! let links = fig1_links();
//! let schedule = Schedule::new(fig1_schedule_slots().to_vec());
//! let sim = ConvergecastSim::new(&links, &schedule).unwrap();
//! let report = sim.run(SimConfig { frame_period: 2, num_frames: 10, max_slots: 200 });
//! assert_eq!(report.completed_frames, 10);
//! // The paper's walkthrough: the first frame is aggregated with latency 3.
//! assert_eq!(report.latencies[0], 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use wagg_schedule::Schedule;
use wagg_sinr::Link;

/// Errors raised when assembling a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A link does not carry sender/receiver node identifiers, so the tree topology
    /// cannot be reconstructed.
    MissingNodeIds {
        /// Identifier of the offending link.
        link: usize,
    },
    /// A node is the sender of more than one link; the convergecast tree must give
    /// every non-sink node exactly one outgoing link.
    MultipleParents {
        /// The offending node index.
        node: usize,
    },
    /// The links do not form a tree directed towards a single sink (a cycle, or
    /// several roots).
    NotAConvergecastTree,
    /// The schedule references a link index that does not exist.
    ScheduleOutOfRange {
        /// The offending index.
        index: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingNodeIds { link } => {
                write!(f, "link {link} carries no sender/receiver node identifiers")
            }
            SimError::MultipleParents { node } => {
                write!(f, "node {node} is the sender of more than one link")
            }
            SimError::NotAConvergecastTree => {
                write!(f, "links do not form a tree directed towards a single sink")
            }
            SimError::ScheduleOutOfRange { index } => {
                write!(f, "schedule references non-existent link index {index}")
            }
        }
    }
}

impl Error for SimError {}

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of slots between consecutive measurement frames.
    pub frame_period: usize,
    /// Number of frames to generate.
    pub num_frames: usize,
    /// Hard cap on simulated slots (prevents infinite runs when the rate is
    /// unsustainable).
    pub max_slots: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            frame_period: 1,
            num_frames: 50,
            max_slots: 100_000,
        }
    }
}

/// The outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Number of frames fully aggregated at the sink within the slot budget.
    pub completed_frames: usize,
    /// Latency (in slots, completion minus generation) of each completed frame.
    pub latencies: Vec<usize>,
    /// The largest number of pending frames held by any node at any time.
    pub max_buffer_occupancy: usize,
    /// Number of slots simulated.
    pub slots_simulated: usize,
    /// Sustained throughput: completed frames divided by slots simulated.
    pub throughput: f64,
    /// Whether every generated frame completed within the slot budget.
    pub all_frames_completed: bool,
}

impl SimReport {
    /// Mean latency over completed frames (0 when none completed).
    pub fn mean_latency(&self) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        self.latencies.iter().sum::<usize>() as f64 / self.latencies.len() as f64
    }

    /// Maximum latency over completed frames (0 when none completed).
    pub fn max_latency(&self) -> usize {
        self.latencies.iter().copied().max().unwrap_or(0)
    }
}

/// A convergecast simulator bound to a tree (given by its links) and a periodic
/// schedule over those links.
#[derive(Debug, Clone)]
pub struct ConvergecastSim {
    /// parent[v] = (parent node, link index) for every non-sink node.
    parent: HashMap<usize, (usize, usize)>,
    /// All node indices appearing in the tree.
    nodes: Vec<usize>,
    /// The sink (unique node with no outgoing link).
    sink: usize,
    /// subtree_size[v] = number of nodes in v's subtree (including v).
    subtree_size: HashMap<usize, usize>,
    schedule: Schedule,
}

impl ConvergecastSim {
    /// Builds a simulator from convergecast links (each non-sink node sends to its
    /// parent) and a periodic schedule over them.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the links lack node identifiers, a node has several
    /// parents, the digraph is not a tree towards a single sink, or the schedule
    /// references missing links.
    pub fn new(links: &[Link], schedule: &Schedule) -> Result<Self, SimError> {
        Self::build(links, schedule)
    }

    /// Builds a simulator straight from a session facade's unified
    /// [`wagg_schedule::SolveReport`] — the schedule it replays is the
    /// report's, whatever backend produced it.
    ///
    /// # Errors
    ///
    /// Same contract as [`ConvergecastSim::new`].
    pub fn from_solve(
        links: &[Link],
        report: &wagg_schedule::SolveReport,
    ) -> Result<Self, SimError> {
        Self::build(links, report.schedule())
    }

    fn build(links: &[Link], schedule: &Schedule) -> Result<Self, SimError> {
        // Validate schedule indices.
        for slot in schedule.slots() {
            for &idx in slot {
                if idx >= links.len() {
                    return Err(SimError::ScheduleOutOfRange { index: idx });
                }
            }
        }
        let mut parent: HashMap<usize, (usize, usize)> = HashMap::new();
        let mut nodes: Vec<usize> = Vec::new();
        for (idx, link) in links.iter().enumerate() {
            let (s, r) = match (link.sender_node, link.receiver_node) {
                (Some(s), Some(r)) => (s.index(), r.index()),
                _ => {
                    return Err(SimError::MissingNodeIds {
                        link: link.id.index(),
                    })
                }
            };
            if parent.insert(s, (r, idx)).is_some() {
                return Err(SimError::MultipleParents { node: s });
            }
            for v in [s, r] {
                if !nodes.contains(&v) {
                    nodes.push(v);
                }
            }
        }
        // The sink is the unique node with no outgoing link.
        let sinks: Vec<usize> = nodes
            .iter()
            .copied()
            .filter(|v| !parent.contains_key(v))
            .collect();
        if sinks.len() != 1 {
            return Err(SimError::NotAConvergecastTree);
        }
        let sink = sinks[0];
        // Check acyclicity / reachability: walking up from any node reaches the sink
        // within |nodes| steps.
        for &v in &nodes {
            let mut cur = v;
            let mut steps = 0;
            while cur != sink {
                match parent.get(&cur) {
                    Some(&(p, _)) => cur = p,
                    None => return Err(SimError::NotAConvergecastTree),
                }
                steps += 1;
                if steps > nodes.len() {
                    return Err(SimError::NotAConvergecastTree);
                }
            }
        }
        // Subtree sizes: count, for every node, how many nodes' root-paths pass
        // through it (including itself).
        let mut subtree_size: HashMap<usize, usize> = nodes.iter().map(|&v| (v, 0)).collect();
        for &v in &nodes {
            let mut cur = v;
            loop {
                *subtree_size.get_mut(&cur).expect("node present") += 1;
                if cur == sink {
                    break;
                }
                cur = parent[&cur].0;
            }
        }
        Ok(ConvergecastSim {
            parent,
            nodes,
            sink,
            subtree_size,
            schedule: schedule.clone(),
        })
    }

    /// The sink node index.
    pub fn sink(&self) -> usize {
        self.sink
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Runs the simulation.
    ///
    /// Frames `0, 1, …, num_frames − 1` are generated at slots
    /// `0, frame_period, 2·frame_period, …`; the run ends when every frame has been
    /// aggregated at the sink or `max_slots` slots have elapsed.
    pub fn run(&self, config: SimConfig) -> SimReport {
        let num_nodes = self.nodes.len();
        // contributions[node][frame] = number of distinct nodes aggregated so far.
        let mut contributions: HashMap<usize, HashMap<usize, usize>> =
            self.nodes.iter().map(|&v| (v, HashMap::new())).collect();
        // Which frames each node has already forwarded.
        let mut forwarded: HashMap<usize, Vec<bool>> = self
            .nodes
            .iter()
            .map(|&v| (v, vec![false; config.num_frames]))
            .collect();
        let mut completion_slot: Vec<Option<usize>> = vec![None; config.num_frames];
        let mut max_buffer = 0usize;

        let schedule_len = self.schedule.len().max(1);
        let mut slot = 0usize;
        while slot < config.max_slots {
            // Frame generation at the start of the slot.
            if config.frame_period > 0 && slot.is_multiple_of(config.frame_period) {
                let frame = slot / config.frame_period;
                if frame < config.num_frames {
                    for &v in &self.nodes {
                        *contributions
                            .get_mut(&v)
                            .expect("node present")
                            .entry(frame)
                            .or_insert(0) += 1;
                        if v == self.sink && num_nodes == 1 {
                            completion_slot[frame] = Some(slot);
                        }
                    }
                }
            }

            // Transmissions of this slot (simultaneous: compute sends first).
            let active = if self.schedule.is_empty() {
                &[][..]
            } else {
                self.schedule.slot(slot % schedule_len)
            };
            let mut deliveries: Vec<(usize, usize, usize)> = Vec::new(); // (receiver, frame, amount)
            for &link_idx in active {
                // Identify the sender of this link.
                let (&sender, &(receiver, _)) =
                    match self.parent.iter().find(|(_, &(_, idx))| idx == link_idx) {
                        Some(entry) => entry,
                        None => continue,
                    };
                let sender_contribs = contributions.get(&sender).expect("node present");
                let sent = forwarded.get(&sender).expect("node present");
                // The oldest complete, not-yet-forwarded frame at the sender.
                let ready: Option<usize> =
                    (0..config.num_frames).filter(|&f| !sent[f]).find(|&f| {
                        sender_contribs.get(&f).copied().unwrap_or(0) == self.subtree_size[&sender]
                    });
                if let Some(frame) = ready {
                    let amount = self.subtree_size[&sender];
                    deliveries.push((receiver, frame, amount));
                    forwarded.get_mut(&sender).expect("node present")[frame] = true;
                    contributions
                        .get_mut(&sender)
                        .expect("node present")
                        .remove(&frame);
                }
            }
            for (receiver, frame, amount) in deliveries {
                let buffer = contributions.get_mut(&receiver).expect("node present");
                let entry = buffer.entry(frame).or_insert(0);
                *entry += amount;
                if receiver == self.sink && *entry == num_nodes {
                    // The frame is fully aggregated at the sink by the end of this
                    // slot; it leaves the sink's buffer (it has been "delivered").
                    if completion_slot[frame].is_none() {
                        completion_slot[frame] = Some(slot + 1);
                    }
                    buffer.remove(&frame);
                }
            }

            // Buffer occupancy after this slot.
            for &v in &self.nodes {
                let pending = contributions[&v].len();
                max_buffer = max_buffer.max(pending);
            }

            slot += 1;
            if completion_slot.iter().all(Option::is_some) {
                break;
            }
        }

        let latencies: Vec<usize> = completion_slot
            .iter()
            .enumerate()
            .filter_map(|(frame, &done)| {
                done.map(|s| s.saturating_sub(frame * config.frame_period))
            })
            .collect();
        let completed = latencies.len();
        SimReport {
            completed_frames: completed,
            all_frames_completed: completed == config.num_frames,
            latencies,
            max_buffer_occupancy: max_buffer,
            slots_simulated: slot,
            throughput: if slot > 0 {
                completed as f64 / slot as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_geometry::Point;
    use wagg_instances::fig1::{fig1_links, fig1_schedule_slots};
    use wagg_instances::random::uniform_square;
    use wagg_schedule::{solve_static, PowerMode, SchedulerConfig};
    use wagg_sinr::NodeId;

    fn path_links(n: usize) -> Vec<Link> {
        // Path 0 <- 1 <- 2 <- ... <- n-1 with sink 0, unit spacing.
        (1..n)
            .map(|v| {
                Link::with_nodes(
                    v - 1,
                    Point::on_line(v as f64),
                    Point::on_line((v - 1) as f64),
                    NodeId(v),
                    NodeId(v - 1),
                )
            })
            .collect()
    }

    #[test]
    fn fig1_walkthrough_matches_paper() {
        let links = fig1_links();
        let schedule = Schedule::new(fig1_schedule_slots().to_vec());
        let sim = ConvergecastSim::new(&links, &schedule).unwrap();
        assert_eq!(sim.node_count(), 5);
        let report = sim.run(SimConfig {
            frame_period: 2,
            num_frames: 8,
            max_slots: 1000,
        });
        assert!(report.all_frames_completed);
        // Rate 1/2 sustained, first frame latency 3, bounded buffers.
        assert_eq!(report.latencies[0], 3);
        assert!(report.max_buffer_occupancy <= 3);
        assert!((report.throughput - 0.5).abs() < 0.2);
    }

    #[test]
    fn fig1_cannot_sustain_rate_one() {
        let links = fig1_links();
        let schedule = Schedule::new(fig1_schedule_slots().to_vec());
        let sim = ConvergecastSim::new(&links, &schedule).unwrap();
        let fast = sim.run(SimConfig {
            frame_period: 1,
            num_frames: 40,
            max_slots: 120,
        });
        let sustainable = sim.run(SimConfig {
            frame_period: 2,
            num_frames: 40,
            max_slots: 400,
        });
        // Overdriving the schedule grows the buffers beyond the sustainable case's.
        assert!(fast.max_buffer_occupancy > sustainable.max_buffer_occupancy);
    }

    #[test]
    fn single_link_tree() {
        let links = path_links(2);
        let schedule = Schedule::round_robin(1);
        let sim = ConvergecastSim::new(&links, &schedule).unwrap();
        let report = sim.run(SimConfig {
            frame_period: 1,
            num_frames: 5,
            max_slots: 100,
        });
        assert!(report.all_frames_completed);
        assert_eq!(report.completed_frames, 5);
        assert!(report.mean_latency() >= 1.0);
    }

    #[test]
    fn path_latency_grows_with_depth() {
        let short = path_links(4);
        let long = path_links(10);
        for (links, expected_depth) in [(short, 3), (long, 9)] {
            let schedule = Schedule::round_robin(links.len());
            let sim = ConvergecastSim::new(&links, &schedule).unwrap();
            let report = sim.run(SimConfig {
                frame_period: links.len(),
                num_frames: 3,
                max_slots: 10_000,
            });
            assert!(report.all_frames_completed);
            // Latency is at least the hop depth of the farthest node.
            assert!(report.max_latency() >= expected_depth);
        }
    }

    #[test]
    fn sustained_rate_matches_schedule_length_on_random_mst() {
        let inst = uniform_square(24, 50.0, 3);
        let links = inst.mst_links().unwrap();
        let solve: wagg_schedule::SolveReport =
            solve_static(&links, SchedulerConfig::new(PowerMode::GlobalControl)).into();
        let t = solve.slots();
        let sim = ConvergecastSim::from_solve(&links, &solve).unwrap();
        let run = sim.run(SimConfig {
            frame_period: t,
            num_frames: 20,
            max_slots: 50_000,
        });
        assert!(run.all_frames_completed);
        // Throughput approaches 1/T as the run length grows (within a factor of 2
        // because of the draining tail).
        assert!(run.throughput >= 1.0 / (2.0 * t as f64));
        assert!(run.max_buffer_occupancy <= sim.node_count());
    }

    #[test]
    fn errors_are_reported() {
        // Missing node ids.
        let anonymous = vec![Link::new(0, Point::on_line(1.0), Point::on_line(0.0))];
        assert!(matches!(
            ConvergecastSim::new(&anonymous, &Schedule::round_robin(1)),
            Err(SimError::MissingNodeIds { .. })
        ));
        // Two outgoing links from one node.
        let double = vec![
            Link::with_nodes(
                0,
                Point::on_line(1.0),
                Point::on_line(0.0),
                NodeId(1),
                NodeId(0),
            ),
            Link::with_nodes(
                1,
                Point::on_line(1.0),
                Point::on_line(2.0),
                NodeId(1),
                NodeId(2),
            ),
        ];
        assert!(matches!(
            ConvergecastSim::new(&double, &Schedule::round_robin(2)),
            Err(SimError::MultipleParents { node: 1 })
        ));
        // Cycle.
        let cycle = vec![
            Link::with_nodes(
                0,
                Point::on_line(0.0),
                Point::on_line(1.0),
                NodeId(0),
                NodeId(1),
            ),
            Link::with_nodes(
                1,
                Point::on_line(1.0),
                Point::on_line(0.0),
                NodeId(1),
                NodeId(0),
            ),
        ];
        assert!(matches!(
            ConvergecastSim::new(&cycle, &Schedule::round_robin(2)),
            Err(SimError::NotAConvergecastTree)
        ));
        // Schedule out of range.
        let links = path_links(3);
        let bad_schedule = Schedule::new(vec![vec![5]]);
        assert!(matches!(
            ConvergecastSim::new(&links, &bad_schedule),
            Err(SimError::ScheduleOutOfRange { index: 5 })
        ));
    }

    #[test]
    fn empty_schedule_completes_nothing_on_multi_node_trees() {
        let links = path_links(3);
        let sim = ConvergecastSim::new(&links, &Schedule::new(vec![])).unwrap();
        let report = sim.run(SimConfig {
            frame_period: 1,
            num_frames: 3,
            max_slots: 50,
        });
        assert_eq!(report.completed_frames, 0);
        assert!(!report.all_frames_completed);
        assert_eq!(report.slots_simulated, 50);
    }

    #[test]
    fn error_display_strings() {
        assert!(SimError::NotAConvergecastTree.to_string().contains("tree"));
        assert!(SimError::MissingNodeIds { link: 2 }
            .to_string()
            .contains("link 2"));
        assert!(SimError::MultipleParents { node: 1 }
            .to_string()
            .contains("node 1"));
        assert!(SimError::ScheduleOutOfRange { index: 9 }
            .to_string()
            .contains('9'));
    }
}
