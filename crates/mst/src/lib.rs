//! Euclidean minimum spanning trees and the aggregation trees built from them.
//!
//! The paper's aggregation protocol uses the *minimum spanning tree* of the sensor
//! pointset, oriented towards the sink, as its convergecast tree (Theorem 1).
//! This crate provides:
//!
//! * [`euclidean`] — MST construction over planar pointsets (Prim `O(n²)`,
//!   Kruskal, and a specialised linear-time routine for points on a line),
//! * [`tree`] — the [`SpanningTree`](tree::SpanningTree) type, orientation towards
//!   a sink into a set of convergecast [`Link`](wagg_sinr::Link)s, and structural
//!   statistics (depth, degrees),
//! * [`sparsity`] — the MST sparsity measure `I(i, T_i^+)` of the paper's Lemma 1,
//!   which drives the constant chromatic number of `G1` (Theorem 2),
//! * [`kconnect`] — `k`-edge-connected spanners built from unions of edge-disjoint
//!   MSTs (Remark 2 of the paper).
//!
//! # Examples
//!
//! ```
//! use wagg_geometry::Point;
//! use wagg_mst::euclidean::euclidean_mst;
//! use wagg_mst::tree::SpanningTree;
//!
//! let points = vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(1.0, 0.0),
//!     Point::new(0.0, 1.0),
//!     Point::new(5.0, 5.0),
//! ];
//! let tree = euclidean_mst(&points).unwrap();
//! assert_eq!(tree.edges().len(), 3);
//! let links = tree.orient_towards(0);
//! assert_eq!(links.len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod approx;
pub mod error;
pub mod euclidean;
pub mod kconnect;
pub mod sparsity;
pub mod tree;

pub use error::MstError;
pub use euclidean::{euclidean_mst, kruskal_mst, line_mst};
pub use tree::{Edge, SpanningTree};
