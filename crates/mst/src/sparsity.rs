//! The MST sparsity measure of the paper's Lemma 1.
//!
//! For a set `S` of links and a link `i`, define `I(i, S_i^+)` — the total additive
//! influence of `i` on the links of `S` that are at least as long as `i` (see
//! [`wagg_sinr::affectance`]). Lemma 1 (from Halldórsson–Mitra, SODA'12, quoted by
//! the paper) states that when `S` is the link set of an MST of a planar pointset,
//! `I(i, S_i^+) = O(1)` for every link `i`.
//!
//! This module measures that quantity, which the experiment harness uses to verify
//! the constant empirically (it drives the constant chromatic number of `G1` in
//! Theorem 2), and provides the first-fit refinement into classes with
//! `I(i, S_i^+) < 1` used in the proof of Theorem 2.

use wagg_sinr::affectance::influence_on_longer;
use wagg_sinr::link::indices_by_decreasing_length;
use wagg_sinr::Link;

/// Per-link sparsity report: the influence of each link on the set of longer links.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityReport {
    /// `I(i, S_i^+)` for each link, indexed like the input slice.
    pub per_link: Vec<f64>,
}

impl SparsityReport {
    /// The maximum `I(i, S_i^+)` over all links — the constant Lemma 1 bounds.
    pub fn max(&self) -> f64 {
        self.per_link.iter().copied().fold(0.0, f64::max)
    }

    /// The mean `I(i, S_i^+)` over all links.
    pub fn mean(&self) -> f64 {
        if self.per_link.is_empty() {
            return 0.0;
        }
        self.per_link.iter().sum::<f64>() / self.per_link.len() as f64
    }
}

/// Measures `I(i, S_i^+)` for every link of `links` under path-loss exponent `alpha`.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_mst::euclidean_mst;
/// use wagg_mst::sparsity::measure_sparsity;
///
/// let points: Vec<Point> = (0..20).map(|i| Point::new(i as f64, (i % 3) as f64)).collect();
/// let links = euclidean_mst(&points).unwrap().orient_arbitrarily();
/// let report = measure_sparsity(&links, 3.0);
/// // Lemma 1: bounded by a constant, independent of the instance size.
/// assert!(report.max() < 20.0);
/// ```
pub fn measure_sparsity(links: &[Link], alpha: f64) -> SparsityReport {
    let per_link = links
        .iter()
        .map(|l| influence_on_longer(l, links, alpha))
        .collect();
    SparsityReport { per_link }
}

/// The first-fit refinement used in the proof of Theorem 2: partitions the links into
/// classes such that within each class `S`, every link `i` satisfies `I(i, S_i^+) < 1`.
///
/// Links are processed in non-increasing order of length; each link is assigned to
/// the first class whose current influence on it (equivalently, its influence on the
/// class, since the class currently holds only longer-or-equal links) stays below one.
/// Lemma 1 guarantees the number of classes is `O(1)` for MST link sets.
///
/// Returns a vector of classes, each a vector of indices into `links`.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_mst::euclidean_mst;
/// use wagg_mst::sparsity::refine_into_sparse_classes;
///
/// let points: Vec<Point> = (0..30).map(|i| Point::new(i as f64, 0.3 * (i % 5) as f64)).collect();
/// let links = euclidean_mst(&points).unwrap().orient_arbitrarily();
/// let classes = refine_into_sparse_classes(&links, 3.0);
/// let total: usize = classes.iter().map(|c| c.len()).sum();
/// assert_eq!(total, links.len());
/// // Theorem 2: constantly many classes.
/// assert!(classes.len() <= 8);
/// ```
pub fn refine_into_sparse_classes(links: &[Link], alpha: f64) -> Vec<Vec<usize>> {
    let order = indices_by_decreasing_length(links);
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for &idx in &order {
        let link = &links[idx];
        let mut placed = false;
        for class in classes.iter_mut() {
            let members: Vec<Link> = class.iter().map(|&k| links[k]).collect();
            let influence = wagg_sinr::affectance::additive_influence_of(link, &members, alpha);
            if influence < 1.0 {
                class.push(idx);
                placed = true;
                break;
            }
        }
        if !placed {
            classes.push(vec![idx]);
        }
    }
    classes
}

/// Verifies the defining property of the refinement: within each class, every link's
/// influence on the longer links of the same class is below one.
///
/// Exposed for tests and for the experiment harness, which reports the property
/// alongside the class count.
pub fn classes_satisfy_sparsity(links: &[Link], classes: &[Vec<usize>], alpha: f64) -> bool {
    classes.iter().all(|class| {
        let members: Vec<Link> = class.iter().map(|&k| links[k]).collect();
        members
            .iter()
            .all(|l| influence_on_longer(l, &members, alpha) < 1.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_geometry::Point;
    use wagg_mst_test_helpers::*;

    /// Local helpers shared by the tests in this module.
    mod wagg_mst_test_helpers {
        use super::*;
        use crate::euclidean::euclidean_mst;

        pub fn grid_links(side: usize) -> Vec<Link> {
            let mut pts = Vec::new();
            for i in 0..side {
                for j in 0..side {
                    pts.push(Point::new(i as f64, j as f64));
                }
            }
            euclidean_mst(&pts).unwrap().orient_arbitrarily()
        }

        pub fn exponential_chain_links(n: usize) -> Vec<Link> {
            let mut pts = vec![Point::on_line(0.0)];
            let mut x = 0.0;
            let mut gap = 1.0;
            for _ in 1..n {
                x += gap;
                pts.push(Point::on_line(x));
                gap *= 2.0;
            }
            crate::euclidean::line_mst(&pts)
                .unwrap()
                .orient_arbitrarily()
        }
    }

    #[test]
    fn sparsity_of_empty_and_single() {
        let r = measure_sparsity(&[], 3.0);
        assert_eq!(r.max(), 0.0);
        assert_eq!(r.mean(), 0.0);
        let one = vec![Link::new(0, Point::on_line(0.0), Point::on_line(1.0))];
        let r1 = measure_sparsity(&one, 3.0);
        assert_eq!(r1.max(), 0.0);
    }

    #[test]
    fn grid_mst_sparsity_is_small_constant() {
        // Lemma 1 promises O(1). The unit grid is the worst of our test instances
        // because every MST edge has length exactly 1, so many equal-length links
        // sit at small distances; the constant is around 14 and, crucially, does
        // not grow with the grid size (checked below).
        let report_small = measure_sparsity(&grid_links(4), 3.0);
        let report_large = measure_sparsity(&grid_links(8), 3.0);
        assert!(
            report_large.max() < 20.0,
            "max sparsity {}",
            report_large.max()
        );
        assert!(report_large.max() < report_small.max() + 6.0);
        assert!(report_large.mean() <= report_large.max());
    }

    #[test]
    fn exponential_chain_sparsity_is_small() {
        let links = exponential_chain_links(16);
        let report = measure_sparsity(&links, 3.0);
        assert!(report.max() < 3.0, "max sparsity {}", report.max());
    }

    #[test]
    fn refinement_covers_all_links_exactly_once() {
        let links = grid_links(5);
        let classes = refine_into_sparse_classes(&links, 3.0);
        let mut seen = vec![false; links.len()];
        for class in &classes {
            for &idx in class {
                assert!(!seen[idx], "link {idx} appears twice");
                seen[idx] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn refinement_classes_satisfy_sparsity_property() {
        for links in [grid_links(5), exponential_chain_links(12)] {
            let classes = refine_into_sparse_classes(&links, 3.0);
            assert!(classes_satisfy_sparsity(&links, &classes, 3.0));
        }
    }

    #[test]
    fn refinement_of_mst_uses_constantly_many_classes() {
        for side in [3, 5, 7] {
            let links = grid_links(side);
            let classes = refine_into_sparse_classes(&links, 3.0);
            assert!(
                classes.len() <= 8,
                "grid {side}x{side} used {} classes",
                classes.len()
            );
        }
    }

    #[test]
    fn refinement_of_single_link_is_one_class() {
        let links = vec![Link::new(0, Point::on_line(0.0), Point::on_line(1.0))];
        let classes = refine_into_sparse_classes(&links, 3.0);
        assert_eq!(classes, vec![vec![0]]);
    }
}
