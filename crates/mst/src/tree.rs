//! Spanning trees over pointsets and their convergecast orientation.

use crate::MstError;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use wagg_geometry::Point;
use wagg_sinr::{Link, NodeId};

/// An undirected edge of a spanning tree, identified by the indices of its endpoints.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_mst::Edge;
///
/// let e = Edge::new(0, 1);
/// assert_eq!(e.length(&[Point::new(0.0, 0.0), Point::new(3.0, 4.0)]), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Index of one endpoint in the pointset.
    pub a: usize,
    /// Index of the other endpoint in the pointset.
    pub b: usize,
}

impl Edge {
    /// Creates an edge between node indices `a` and `b` (stored with `a < b`).
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loops are never part of a tree).
    pub fn new(a: usize, b: usize) -> Self {
        assert_ne!(a, b, "tree edges cannot be self-loops");
        if a < b {
            Edge { a, b }
        } else {
            Edge { a: b, b: a }
        }
    }

    /// Length of the edge with respect to a pointset.
    pub fn length(&self, points: &[Point]) -> f64 {
        points[self.a].distance(points[self.b])
    }

    /// The endpoint other than `node`, or `None` if `node` is not an endpoint.
    pub fn other(&self, node: usize) -> Option<usize> {
        if node == self.a {
            Some(self.b)
        } else if node == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// A spanning tree of a planar pointset.
///
/// The tree owns a copy of the pointset, so edge lengths and orientations can be
/// computed without carrying the points separately.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_mst::{Edge, SpanningTree};
///
/// let points = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
/// let tree = SpanningTree::new(points, vec![Edge::new(0, 1), Edge::new(1, 2)]).unwrap();
/// assert_eq!(tree.total_length(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanningTree {
    points: Vec<Point>,
    edges: Vec<Edge>,
}

impl SpanningTree {
    /// Creates a spanning tree from a pointset and an edge list, validating that the
    /// edges really form a spanning tree (n − 1 edges, all indices valid, connected).
    ///
    /// # Errors
    ///
    /// Returns [`MstError`] if the pointset has fewer than two points, an edge refers
    /// to a node out of range, the edge count is not `n − 1`, or the edges do not
    /// connect all nodes.
    pub fn new(points: Vec<Point>, edges: Vec<Edge>) -> Result<Self, MstError> {
        if points.len() < 2 {
            return Err(MstError::TooFewPoints {
                found: points.len(),
            });
        }
        for e in &edges {
            for idx in [e.a, e.b] {
                if idx >= points.len() {
                    return Err(MstError::NodeOutOfRange {
                        index: idx,
                        nodes: points.len(),
                    });
                }
            }
        }
        if edges.len() != points.len() - 1 {
            return Err(MstError::NotASpanningTree {
                reason: "edge count is not n - 1",
            });
        }
        let tree = SpanningTree { points, edges };
        if !tree.is_connected() {
            return Err(MstError::NotASpanningTree {
                reason: "edges do not connect all nodes",
            });
        }
        Ok(tree)
    }

    /// The pointset spanned by the tree.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The undirected edges of the tree.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.points.len()
    }

    /// The lengths of all edges.
    pub fn edge_lengths(&self) -> Vec<f64> {
        self.edges.iter().map(|e| e.length(&self.points)).collect()
    }

    /// Sum of all edge lengths.
    pub fn total_length(&self) -> f64 {
        self.edge_lengths().iter().sum()
    }

    /// Length of the longest edge.
    pub fn max_edge_length(&self) -> f64 {
        self.edge_lengths().into_iter().fold(0.0, f64::max)
    }

    /// Length of the shortest edge.
    pub fn min_edge_length(&self) -> f64 {
        self.edge_lengths()
            .into_iter()
            .fold(f64::INFINITY, f64::min)
    }

    /// Length diversity `Δ` of the tree's edges (longest over shortest edge length).
    pub fn edge_diversity(&self) -> f64 {
        let min = self.min_edge_length();
        if min <= 0.0 {
            return f64::INFINITY;
        }
        self.max_edge_length() / min
    }

    /// Adjacency lists of the tree.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.points.len()];
        for e in &self.edges {
            adj[e.a].push(e.b);
            adj[e.b].push(e.a);
        }
        adj
    }

    /// Degree of each node.
    pub fn degrees(&self) -> Vec<usize> {
        self.adjacency().iter().map(|n| n.len()).collect()
    }

    /// Maximum node degree.
    pub fn max_degree(&self) -> usize {
        self.degrees().into_iter().max().unwrap_or(0)
    }

    /// Whether the edge set connects every node (assuming edge indices are valid).
    fn is_connected(&self) -> bool {
        let n = self.points.len();
        if n == 0 {
            return true;
        }
        let adj = self.adjacency();
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        queue.push_back(0);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == n
    }

    /// Parent of each node in the tree rooted at `sink` (`None` for the sink itself).
    ///
    /// # Errors
    ///
    /// Returns [`MstError::NodeOutOfRange`] if `sink` is not a valid node index.
    pub fn parents(&self, sink: usize) -> Result<Vec<Option<usize>>, MstError> {
        if sink >= self.points.len() {
            return Err(MstError::NodeOutOfRange {
                index: sink,
                nodes: self.points.len(),
            });
        }
        let adj = self.adjacency();
        let mut parent: Vec<Option<usize>> = vec![None; self.points.len()];
        let mut seen = vec![false; self.points.len()];
        let mut queue = VecDeque::new();
        queue.push_back(sink);
        seen[sink] = true;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        Ok(parent)
    }

    /// Hop depth of each node below `sink` (the sink has depth 0).
    ///
    /// # Errors
    ///
    /// Returns [`MstError::NodeOutOfRange`] if `sink` is not a valid node index.
    pub fn depths(&self, sink: usize) -> Result<Vec<usize>, MstError> {
        let parent = self.parents(sink)?;
        let mut depth = vec![0usize; self.points.len()];
        // Nodes are processed in BFS order in `parents`, but we recompute here by
        // walking up; the tree is small enough that the O(n · depth) walk is fine.
        for (v, slot) in depth.iter_mut().enumerate() {
            let mut d = 0;
            let mut cur = v;
            while let Some(p) = parent[cur] {
                d += 1;
                cur = p;
            }
            *slot = d;
        }
        Ok(depth)
    }

    /// Maximum hop depth below `sink`.
    ///
    /// # Errors
    ///
    /// Returns [`MstError::NodeOutOfRange`] if `sink` is not a valid node index.
    pub fn height(&self, sink: usize) -> Result<usize, MstError> {
        Ok(self.depths(sink)?.into_iter().max().unwrap_or(0))
    }

    /// Orients every edge towards `sink`, producing the convergecast link set
    /// (each non-sink node sends to its parent).
    ///
    /// Link `k` is the link whose sender is node `k` shifted to skip the sink, so
    /// link identifiers are consecutive starting from zero; each link records the
    /// sender and receiver node indices.
    ///
    /// # Panics
    ///
    /// Panics if `sink` is out of range; use [`SpanningTree::try_orient_towards`]
    /// for a fallible version.
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::Point;
    /// use wagg_mst::{Edge, SpanningTree};
    ///
    /// let points = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
    /// let tree = SpanningTree::new(points, vec![Edge::new(0, 1), Edge::new(1, 2)]).unwrap();
    /// let links = tree.orient_towards(0);
    /// assert_eq!(links.len(), 2);
    /// // Every link points "down" the tree towards the sink.
    /// assert!(links.iter().any(|l| l.receiver_node.unwrap().index() == 0));
    /// ```
    pub fn orient_towards(&self, sink: usize) -> Vec<Link> {
        self.try_orient_towards(sink)
            .expect("sink index out of range")
    }

    /// Fallible version of [`SpanningTree::orient_towards`].
    ///
    /// # Errors
    ///
    /// Returns [`MstError::NodeOutOfRange`] if `sink` is not a valid node index.
    pub fn try_orient_towards(&self, sink: usize) -> Result<Vec<Link>, MstError> {
        let parent = self.parents(sink)?;
        let mut links = Vec::with_capacity(self.points.len().saturating_sub(1));
        let mut next_id = 0usize;
        for (v, p) in parent.iter().enumerate() {
            if let Some(p) = *p {
                links.push(Link::with_nodes(
                    next_id,
                    self.points[v],
                    self.points[p],
                    NodeId(v),
                    NodeId(p),
                ));
                next_id += 1;
            }
        }
        Ok(links)
    }

    /// Orients edges arbitrarily (from the lower to the higher node index).
    ///
    /// Theorem 1 of the paper allows the MST edges to be "directed arbitrarily";
    /// this orientation is the simplest deterministic choice and is used by tests
    /// that only care about the undirected structure.
    pub fn orient_arbitrarily(&self) -> Vec<Link> {
        self.edges
            .iter()
            .enumerate()
            .map(|(k, e)| {
                Link::with_nodes(
                    k,
                    self.points[e.a],
                    self.points[e.b],
                    NodeId(e.a),
                    NodeId(e.b),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_tree(n: usize) -> SpanningTree {
        let points: Vec<Point> = (0..n).map(|i| Point::on_line(i as f64)).collect();
        let edges: Vec<Edge> = (0..n - 1).map(|i| Edge::new(i, i + 1)).collect();
        SpanningTree::new(points, edges).unwrap()
    }

    fn star_tree(n: usize) -> SpanningTree {
        let mut points = vec![Point::origin()];
        for i in 1..n {
            let angle = i as f64;
            points.push(Point::new(angle.cos() * 2.0, angle.sin() * 2.0));
        }
        let edges: Vec<Edge> = (1..n).map(|i| Edge::new(0, i)).collect();
        SpanningTree::new(points, edges).unwrap()
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(3, 3);
    }

    #[test]
    fn edge_normalises_order_and_other() {
        let e = Edge::new(5, 2);
        assert_eq!((e.a, e.b), (2, 5));
        assert_eq!(e.other(2), Some(5));
        assert_eq!(e.other(5), Some(2));
        assert_eq!(e.other(7), None);
    }

    #[test]
    fn new_rejects_too_few_points() {
        let err = SpanningTree::new(vec![Point::origin()], vec![]).unwrap_err();
        assert_eq!(err, MstError::TooFewPoints { found: 1 });
    }

    #[test]
    fn new_rejects_wrong_edge_count() {
        let points = vec![
            Point::on_line(0.0),
            Point::on_line(1.0),
            Point::on_line(2.0),
        ];
        let err = SpanningTree::new(points, vec![Edge::new(0, 1)]).unwrap_err();
        assert!(matches!(err, MstError::NotASpanningTree { .. }));
    }

    #[test]
    fn new_rejects_out_of_range_edge() {
        let points = vec![Point::on_line(0.0), Point::on_line(1.0)];
        let err = SpanningTree::new(points, vec![Edge::new(0, 5)]).unwrap_err();
        assert!(matches!(err, MstError::NodeOutOfRange { index: 5, .. }));
    }

    #[test]
    fn new_rejects_disconnected_edges() {
        let points = vec![
            Point::on_line(0.0),
            Point::on_line(1.0),
            Point::on_line(2.0),
            Point::on_line(3.0),
        ];
        // Three edges but node 3 is isolated (multi-edge between 0-1 pair).
        let err = SpanningTree::new(
            points,
            vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)],
        )
        .unwrap_err();
        assert!(matches!(err, MstError::NotASpanningTree { .. }));
    }

    #[test]
    fn path_tree_statistics() {
        let t = path_tree(5);
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.total_length(), 4.0);
        assert_eq!(t.max_degree(), 2);
        assert_eq!(t.edge_diversity(), 1.0);
        assert_eq!(t.height(0).unwrap(), 4);
        assert_eq!(t.height(2).unwrap(), 2);
    }

    #[test]
    fn star_tree_statistics() {
        let t = star_tree(6);
        assert_eq!(t.max_degree(), 5);
        assert_eq!(t.height(0).unwrap(), 1);
        assert_eq!(t.height(1).unwrap(), 2);
    }

    #[test]
    fn parents_of_path_rooted_at_end() {
        let t = path_tree(4);
        let p = t.parents(0).unwrap();
        assert_eq!(p, vec![None, Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn parents_rejects_bad_sink() {
        let t = path_tree(3);
        assert!(t.parents(7).is_err());
        assert!(t.try_orient_towards(7).is_err());
    }

    #[test]
    fn orientation_points_to_sink() {
        let t = path_tree(4);
        let links = t.orient_towards(3);
        assert_eq!(links.len(), 3);
        for l in &links {
            // Every sender is further from the sink (node 3 at x=3) than its receiver.
            let sink = Point::on_line(3.0);
            assert!(l.sender.distance(sink) > l.receiver.distance(sink));
        }
        // Link ids are consecutive from zero.
        let mut ids: Vec<usize> = links.iter().map(|l| l.id.index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn orientation_preserves_edge_multiset() {
        let t = star_tree(5);
        let links = t.orient_towards(0);
        let mut lengths: Vec<f64> = links.iter().map(|l| l.length()).collect();
        let mut edge_lengths = t.edge_lengths();
        lengths.sort_by(f64::total_cmp);
        edge_lengths.sort_by(f64::total_cmp);
        for (a, b) in lengths.iter().zip(edge_lengths.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn arbitrary_orientation_has_all_edges() {
        let t = path_tree(6);
        let links = t.orient_arbitrarily();
        assert_eq!(links.len(), 5);
        for (k, l) in links.iter().enumerate() {
            assert_eq!(l.id.index(), k);
        }
    }

    #[test]
    fn depths_sum_to_expected_for_path() {
        let t = path_tree(4);
        assert_eq!(t.depths(0).unwrap(), vec![0, 1, 2, 3]);
    }
}
