//! Error types for tree construction.

use std::error::Error;
use std::fmt;

/// Errors produced while building or orienting spanning trees.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MstError {
    /// The input pointset has fewer than two points, so there is no tree to build.
    TooFewPoints {
        /// Number of points supplied.
        found: usize,
    },
    /// Two input points coincide; the MST and the length diversity are then degenerate.
    DuplicatePoints {
        /// Index of the first copy.
        first: usize,
        /// Index of the second copy.
        second: usize,
    },
    /// A node index referenced by an edge or sink is out of range.
    NodeOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of nodes available.
        nodes: usize,
    },
    /// The supplied edge set is not a spanning tree of the pointset
    /// (wrong edge count or disconnected).
    NotASpanningTree {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for MstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MstError::TooFewPoints { found } => {
                write!(f, "need at least 2 points to build a tree, found {found}")
            }
            MstError::DuplicatePoints { first, second } => {
                write!(f, "points {first} and {second} coincide")
            }
            MstError::NodeOutOfRange { index, nodes } => {
                write!(f, "node index {index} out of range for {nodes} nodes")
            }
            MstError::NotASpanningTree { reason } => {
                write!(f, "edge set is not a spanning tree: {reason}")
            }
        }
    }
}

impl Error for MstError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MstError::TooFewPoints { found: 1 }
            .to_string()
            .contains("at least 2"));
        assert!(MstError::DuplicatePoints {
            first: 0,
            second: 3
        }
        .to_string()
        .contains("coincide"));
        assert!(MstError::NodeOutOfRange { index: 9, nodes: 4 }
            .to_string()
            .contains("out of range"));
        assert!(MstError::NotASpanningTree {
            reason: "disconnected"
        }
        .to_string()
        .contains("disconnected"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(MstError::TooFewPoints { found: 0 });
        assert!(e.source().is_none());
    }
}
