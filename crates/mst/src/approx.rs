//! Alternative aggregation trees and the Lemma 1 criterion (Remark 1).
//!
//! Remark 1 of the paper observes that the scheduling argument never uses the
//! MST itself — only the sparsity property of Lemma 1 (`I(i, T_i^+) = O(1)`
//! for every link `i`). Any spanning tree satisfying that bound therefore
//! schedules in the same `O(log* Δ)` / `O(log log Δ)` number of slots, which
//! opens the door to *approximate* MSTs that are cheaper to maintain.
//!
//! This module provides the criterion itself plus two alternative tree
//! constructions used by the experiments:
//!
//! * [`nearest_neighbor_tree`] — every node attaches to its nearest neighbour
//!   among the nodes strictly closer to the sink. Cheap, local, and in
//!   practice nearly as sparse as the MST (a natural "approximate MST").
//! * [`star_tree`] — every node transmits directly to the sink. The extreme
//!   counterexample: its links all share a receiver, Lemma 1 fails by a
//!   factor `Θ(n)`, and so does the schedule length.

use crate::error::MstError;
use crate::sparsity::measure_sparsity;
use crate::tree::{Edge, SpanningTree};
use wagg_geometry::Point;
use wagg_sinr::Link;

/// Whether a link set satisfies the Lemma 1 sparsity criterion with the given
/// bound: `I(i, S_i^+) <= bound` for every link `i`.
///
/// Per Remark 1, any spanning tree passing this check (for a constant bound)
/// admits the paper's schedule-length guarantees.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_mst::approx::satisfies_lemma1;
/// use wagg_mst::euclidean_mst;
///
/// let points: Vec<Point> = (0..30).map(|i| Point::new(i as f64, (i % 4) as f64)).collect();
/// let links = euclidean_mst(&points).unwrap().orient_arbitrarily();
/// assert!(satisfies_lemma1(&links, 3.0, 20.0));
/// ```
pub fn satisfies_lemma1(links: &[Link], alpha: f64, bound: f64) -> bool {
    measure_sparsity(links, alpha).max() <= bound
}

fn validate(points: &[Point], sink: usize) -> Result<(), MstError> {
    if points.len() < 2 {
        return Err(MstError::TooFewPoints {
            found: points.len(),
        });
    }
    if sink >= points.len() {
        return Err(MstError::NodeOutOfRange {
            index: sink,
            nodes: points.len(),
        });
    }
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            if points[i].distance(points[j]) == 0.0 {
                return Err(MstError::DuplicatePoints {
                    first: i,
                    second: j,
                });
            }
        }
    }
    Ok(())
}

/// The nearest-neighbour-towards-the-sink tree: every non-sink node connects
/// to its nearest neighbour among the nodes strictly closer to the sink (ties
/// on sink distance broken by index, so the construction is always acyclic).
///
/// # Errors
///
/// Returns the usual construction errors for degenerate pointsets or a bad
/// sink index.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_mst::approx::nearest_neighbor_tree;
///
/// let points: Vec<Point> = (0..10).map(|i| Point::new(i as f64, 0.0)).collect();
/// let tree = nearest_neighbor_tree(&points, 0).unwrap();
/// // On a line this coincides with the MST: each node attaches to its left neighbour.
/// assert_eq!(tree.edges().len(), 9);
/// assert_eq!(tree.total_length(), 9.0);
/// ```
pub fn nearest_neighbor_tree(points: &[Point], sink: usize) -> Result<SpanningTree, MstError> {
    validate(points, sink)?;
    // Rank nodes by (distance to sink, index); each node attaches to its
    // nearest strictly lower-ranked node. The sink has the lowest rank.
    let rank = |v: usize| (points[v].distance(points[sink]), v);
    let mut edges = Vec::with_capacity(points.len() - 1);
    for v in 0..points.len() {
        if v == sink {
            continue;
        }
        let parent = (0..points.len())
            .filter(|&u| u != v && rank(u) < rank(v))
            .min_by(|&a, &b| {
                points[a]
                    .distance(points[v])
                    .partial_cmp(&points[b].distance(points[v]))
                    .expect("finite distances")
            })
            .expect("the sink is always lower-ranked");
        edges.push(Edge::new(v, parent));
    }
    SpanningTree::new(points.to_vec(), edges)
}

/// The star tree: every non-sink node transmits directly to the sink.
///
/// This is the natural "no topology control" baseline; its links all share
/// the sink as receiver, so no two of them can ever be scheduled together and
/// Lemma 1 fails by a linear factor.
///
/// # Errors
///
/// Returns the usual construction errors for degenerate pointsets or a bad
/// sink index.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_mst::approx::star_tree;
///
/// let points: Vec<Point> = (0..6).map(|i| Point::new(1.0 + i as f64, 0.0)).collect();
/// let tree = star_tree(&points, 0).unwrap();
/// assert_eq!(tree.edges().len(), 5);
/// assert_eq!(tree.max_edge_length(), 5.0);
/// ```
pub fn star_tree(points: &[Point], sink: usize) -> Result<SpanningTree, MstError> {
    validate(points, sink)?;
    let edges = (0..points.len())
        .filter(|&v| v != sink)
        .map(|v| Edge::new(v, sink))
        .collect();
    SpanningTree::new(points.to_vec(), edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean::euclidean_mst;
    use wagg_geometry::rng::{seeded_rng, uniform_in};

    fn random_points(n: usize, side: f64, seed: u64) -> Vec<Point> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|_| {
                Point::new(
                    uniform_in(&mut rng, 0.0, side),
                    uniform_in(&mut rng, 0.0, side),
                )
            })
            .collect()
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(nearest_neighbor_tree(&[Point::origin()], 0).is_err());
        let points = vec![Point::origin(), Point::new(1.0, 0.0)];
        assert!(matches!(
            nearest_neighbor_tree(&points, 5),
            Err(MstError::NodeOutOfRange { index: 5, nodes: 2 })
        ));
        let dup = vec![Point::origin(), Point::origin(), Point::new(1.0, 0.0)];
        assert!(matches!(
            star_tree(&dup, 2),
            Err(MstError::DuplicatePoints {
                first: 0,
                second: 1
            })
        ));
    }

    #[test]
    fn nearest_neighbor_tree_spans_and_points_towards_the_sink() {
        let points = random_points(50, 120.0, 3);
        let sink = 7;
        let tree = nearest_neighbor_tree(&points, sink).unwrap();
        assert_eq!(tree.edges().len(), 49);
        let links = tree.try_orient_towards(sink).unwrap();
        // Every sender is strictly further from the sink than its receiver
        // (or equally far with a larger index), which is what makes the
        // construction acyclic.
        for link in &links {
            let s = link.sender_node.unwrap().index();
            let r = link.receiver_node.unwrap().index();
            let ds = points[s].distance(points[sink]);
            let dr = points[r].distance(points[sink]);
            assert!(dr < ds || (dr == ds && r < s));
        }
    }

    #[test]
    fn nearest_neighbor_tree_is_nearly_as_sparse_as_the_mst() {
        let points = random_points(80, 200.0, 11);
        let sink = 0;
        let mst_links = euclidean_mst(&points).unwrap().orient_arbitrarily();
        let nn_links = nearest_neighbor_tree(&points, sink)
            .unwrap()
            .try_orient_towards(sink)
            .unwrap();
        let mst_sparsity = measure_sparsity(&mst_links, 3.0).max();
        let nn_sparsity = measure_sparsity(&nn_links, 3.0).max();
        assert!(satisfies_lemma1(&mst_links, 3.0, 20.0));
        // The NN tree is a constant factor denser at worst on uniform deployments.
        assert!(
            nn_sparsity <= 6.0 * mst_sparsity.max(1.0),
            "nn sparsity {nn_sparsity} vs mst {mst_sparsity}"
        );
        // Its total length is also within a modest factor of the MST's.
        let mst_total = euclidean_mst(&points).unwrap().total_length();
        let nn_total = nearest_neighbor_tree(&points, sink).unwrap().total_length();
        assert!(nn_total >= mst_total - 1e-9);
        assert!(
            nn_total <= 4.0 * mst_total,
            "nn length {nn_total} vs mst {mst_total}"
        );
    }

    #[test]
    fn star_tree_violates_lemma1_linearly() {
        // A uniform chain aggregated by a star: the short links pile linear
        // influence onto the long ones.
        let points: Vec<Point> = (0..40).map(|i| Point::new(i as f64, 0.0)).collect();
        let star_links = star_tree(&points, 0)
            .unwrap()
            .try_orient_towards(0)
            .unwrap();
        let star_sparsity = measure_sparsity(&star_links, 3.0).max();
        assert!(!satisfies_lemma1(&star_links, 3.0, 5.0));
        assert!(star_sparsity > 10.0, "star sparsity {star_sparsity}");
        // The chain's MST, by contrast, satisfies the criterion comfortably.
        let mst_links = euclidean_mst(&points).unwrap().orient_arbitrarily();
        assert!(satisfies_lemma1(&mst_links, 3.0, 5.0));
    }

    #[test]
    fn line_nearest_neighbor_tree_equals_the_line_mst() {
        let points: Vec<Point> = (0..25).map(|i| Point::new(1.5 * i as f64, 0.0)).collect();
        let nn = nearest_neighbor_tree(&points, 0).unwrap();
        let mst = euclidean_mst(&points).unwrap();
        assert!((nn.total_length() - mst.total_length()).abs() < 1e-9);
    }
}
