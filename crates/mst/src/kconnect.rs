//! k-edge-connected spanners (Remark 2 of the paper).
//!
//! The paper notes that its scheduling results extend from spanning trees to
//! `k`-edge-connected spanning subgraphs, with the sparsity constant growing to
//! `O(k⁴)`. This module builds such spanners with the greedy augmentation that
//! generalises Kruskal's algorithm: scan the candidate edges in non-decreasing
//! order of length and keep an edge iff its endpoints are not yet `k`-edge-connected
//! in the subgraph built so far. The result is `k`-edge-connected (whenever the
//! complete geometric graph is, i.e. `k < n`) and uses at most `k·(n − 1)` edges.

use crate::tree::Edge;
use crate::MstError;
use wagg_geometry::Point;
use wagg_sinr::{Link, NodeId};

/// A `k`-edge-connected spanning subgraph of a planar pointset.
#[derive(Debug, Clone, PartialEq)]
pub struct KConnectedSpanner {
    points: Vec<Point>,
    k: usize,
    edges: Vec<Edge>,
}

impl KConnectedSpanner {
    /// Builds a `k`-edge-connected spanner by greedy augmentation over edges sorted
    /// by length.
    ///
    /// For `k = 1` this is exactly Kruskal's MST.
    ///
    /// # Errors
    ///
    /// Returns [`MstError::TooFewPoints`]/[`MstError::DuplicatePoints`] for invalid
    /// pointsets, and [`MstError::NotASpanningTree`] if the complete graph itself is
    /// not `k`-edge-connected (i.e. `k >= n`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::Point;
    /// use wagg_mst::kconnect::KConnectedSpanner;
    ///
    /// let points: Vec<Point> = (0..6).map(|i| Point::new(i as f64, (i * i % 5) as f64)).collect();
    /// let spanner = KConnectedSpanner::build(&points, 2).unwrap();
    /// assert!(spanner.is_k_edge_connected(2));
    /// assert!(spanner.edges().len() <= 2 * (points.len() - 1));
    /// ```
    pub fn build(points: &[Point], k: usize) -> Result<Self, MstError> {
        assert!(k >= 1, "k must be at least 1");
        if points.len() < 2 {
            return Err(MstError::TooFewPoints {
                found: points.len(),
            });
        }
        if k >= points.len() {
            return Err(MstError::NotASpanningTree {
                reason: "the complete graph on n nodes is only (n-1)-edge-connected",
            });
        }
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                if points[i].distance_squared(points[j]) == 0.0 {
                    return Err(MstError::DuplicatePoints {
                        first: i,
                        second: j,
                    });
                }
            }
        }

        let n = points.len();
        let mut candidates: Vec<(f64, Edge)> = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                candidates.push((points[i].distance(points[j]), Edge::new(i, j)));
            }
        }
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut edges: Vec<Edge> = Vec::new();
        for (_, e) in candidates {
            if edge_connectivity_between(&edges, n, e.a, e.b) < k {
                edges.push(e);
            }
        }
        Ok(KConnectedSpanner {
            points: points.to_vec(),
            k,
            edges,
        })
    }

    /// The pointset spanned.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The connectivity target `k` the spanner was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The edges of the spanner, in the order they were accepted (non-decreasing length).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Orients all edges arbitrarily (lower to higher node index) into links with
    /// consecutive identifiers, ready for conflict-graph colouring.
    pub fn orient_arbitrarily(&self) -> Vec<Link> {
        self.edges
            .iter()
            .enumerate()
            .map(|(id, e)| {
                Link::with_nodes(
                    id,
                    self.points[e.a],
                    self.points[e.b],
                    NodeId(e.a),
                    NodeId(e.b),
                )
            })
            .collect()
    }

    /// Checks global `k`-edge-connectivity: the minimum over all node pairs of the
    /// pairwise edge connectivity is at least `k`.
    pub fn is_k_edge_connected(&self, k: usize) -> bool {
        if k == 0 {
            return true;
        }
        let n = self.points.len();
        // Global edge connectivity equals the minimum over pairs (0, v); checking
        // all pairs from a fixed source suffices.
        (1..n).all(|v| edge_connectivity_between(&self.edges, n, 0, v) >= k)
    }
}

/// Pairwise edge connectivity between `s` and `t` in the multigraph given by `edges`,
/// computed as unit-capacity max flow (Ford–Fulkerson with BFS augmenting paths).
///
/// Exposed for tests of the spanner construction; the graphs involved are small
/// (at most a few hundred edges), so the `O(k·E)` cost is negligible.
pub fn edge_connectivity_between(edges: &[Edge], n: usize, s: usize, t: usize) -> usize {
    if s == t {
        return usize::MAX;
    }
    // Residual capacities per undirected edge, one unit in each direction.
    let mut cap: Vec<[usize; 2]> = vec![[1, 1]; edges.len()];
    let adj: Vec<Vec<(usize, usize)>> = {
        let mut adj = vec![Vec::new(); n];
        for (idx, e) in edges.iter().enumerate() {
            adj[e.a].push((e.b, idx));
            adj[e.b].push((e.a, idx));
        }
        adj
    };
    let mut flow = 0;
    loop {
        // BFS for an augmenting path in the residual graph.
        let mut pred: Vec<Option<(usize, usize, usize)>> = vec![None; n]; // (from, edge, dir)
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        let mut reached = vec![false; n];
        reached[s] = true;
        while let Some(u) = queue.pop_front() {
            if u == t {
                break;
            }
            for &(v, idx) in &adj[u] {
                let dir = if edges[idx].a == u { 0 } else { 1 };
                if !reached[v] && cap[idx][dir] > 0 {
                    reached[v] = true;
                    pred[v] = Some((u, idx, dir));
                    queue.push_back(v);
                }
            }
        }
        if !reached[t] {
            return flow;
        }
        // Augment along the path (all capacities are 1).
        let mut v = t;
        while v != s {
            let (u, idx, dir) = pred[v].expect("path must be complete");
            cap[idx][dir] -= 1;
            cap[idx][1 - dir] += 1;
            v = u;
        }
        flow += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean::kruskal_mst;

    fn sample_points(n: usize) -> Vec<Point> {
        // Points in "general position": no duplicates, irregular spacing.
        (0..n)
            .map(|i| {
                let x = i as f64;
                let y = ((i * 7 + 3) % 11) as f64 * 0.37;
                Point::new(x, y)
            })
            .collect()
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn build_rejects_k_zero() {
        let _ = KConnectedSpanner::build(&sample_points(4), 0);
    }

    #[test]
    fn k1_spanner_is_just_the_mst() {
        let pts = sample_points(8);
        let spanner = KConnectedSpanner::build(&pts, 1).unwrap();
        assert_eq!(spanner.k(), 1);
        assert_eq!(spanner.edges().len(), pts.len() - 1);
        assert!(spanner.is_k_edge_connected(1));
        // Same total weight as Kruskal's MST.
        let mst = kruskal_mst(&pts, &[]).unwrap();
        let spanner_len: f64 = spanner.edges().iter().map(|e| e.length(&pts)).sum();
        assert!((spanner_len - mst.total_length()).abs() < 1e-9);
    }

    #[test]
    fn k2_spanner_is_2_connected_and_not_too_large() {
        let pts = sample_points(7);
        let spanner = KConnectedSpanner::build(&pts, 2).unwrap();
        assert!(spanner.edges().len() <= 2 * (pts.len() - 1));
        assert!(spanner.is_k_edge_connected(2));
    }

    #[test]
    fn k3_spanner_is_3_connected() {
        let pts = sample_points(6);
        let spanner = KConnectedSpanner::build(&pts, 3).unwrap();
        assert!(spanner.is_k_edge_connected(3));
        assert!(spanner.edges().len() <= 3 * (pts.len() - 1));
    }

    #[test]
    fn mst_alone_is_not_2_edge_connected() {
        let pts = sample_points(6);
        let spanner = KConnectedSpanner::build(&pts, 1).unwrap();
        assert!(!spanner.is_k_edge_connected(2));
    }

    #[test]
    fn too_large_k_fails() {
        let pts = sample_points(3);
        assert!(KConnectedSpanner::build(&pts, 3).is_err());
        assert!(KConnectedSpanner::build(&pts, 2).is_ok());
    }

    #[test]
    fn duplicate_points_are_rejected() {
        let pts = vec![Point::origin(), Point::origin(), Point::on_line(1.0)];
        assert!(matches!(
            KConnectedSpanner::build(&pts, 1),
            Err(MstError::DuplicatePoints { .. })
        ));
    }

    #[test]
    fn orientation_produces_consecutive_ids() {
        let pts = sample_points(5);
        let spanner = KConnectedSpanner::build(&pts, 2).unwrap();
        let links = spanner.orient_arbitrarily();
        assert_eq!(links.len(), spanner.edges().len());
        for (i, l) in links.iter().enumerate() {
            assert_eq!(l.id.index(), i);
            assert!(l.length() > 0.0);
        }
    }

    #[test]
    fn edge_connectivity_of_path_and_cycle() {
        // Path 0-1-2-3: connectivity 1 between ends.
        let path = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)];
        assert_eq!(edge_connectivity_between(&path, 4, 0, 3), 1);
        // Cycle adds one more disjoint route.
        let mut cycle = path.clone();
        cycle.push(Edge::new(0, 3));
        assert_eq!(edge_connectivity_between(&cycle, 4, 0, 3), 2);
        // Disconnected nodes have zero connectivity.
        assert_eq!(edge_connectivity_between(&path, 5, 0, 4), 0);
        // Self connectivity is "infinite".
        assert_eq!(edge_connectivity_between(&path, 4, 2, 2), usize::MAX);
    }
}
