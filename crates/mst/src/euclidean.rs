//! Euclidean MST construction.
//!
//! Three constructions are provided:
//!
//! * [`euclidean_mst`] — Prim's algorithm in `O(n²)` time and `O(n)` memory, the
//!   workhorse for planar pointsets up to a few thousand nodes,
//! * [`kruskal_mst`] — Kruskal's algorithm over all `O(n²)` candidate edges, used
//!   as an independent cross-check in tests and by the k-connectivity spanner
//!   (which needs edge filtering),
//! * [`line_mst`] — the specialised construction for points on a line, where the
//!   unique MST simply connects each point to its neighbours in sorted order
//!   (used by the paper's lower-bound constructions, which all live on the line).

use crate::tree::{Edge, SpanningTree};
use crate::MstError;
use wagg_geometry::Point;

/// Checks a pointset for validity: at least two points, no duplicates.
fn validate_points(points: &[Point]) -> Result<(), MstError> {
    if points.len() < 2 {
        return Err(MstError::TooFewPoints {
            found: points.len(),
        });
    }
    // O(n²) duplicate check; construction is O(n²) anyway.
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            if points[i].distance_squared(points[j]) == 0.0 {
                return Err(MstError::DuplicatePoints {
                    first: i,
                    second: j,
                });
            }
        }
    }
    Ok(())
}

/// Builds the Euclidean minimum spanning tree of a planar pointset with Prim's
/// algorithm (`O(n²)` time).
///
/// # Errors
///
/// Returns [`MstError::TooFewPoints`] for fewer than two points and
/// [`MstError::DuplicatePoints`] if two points coincide.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_mst::euclidean_mst;
///
/// let points = vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(10.0, 0.0),
/// ];
/// let tree = euclidean_mst(&points).unwrap();
/// assert_eq!(tree.total_length(), 10.0);
/// ```
pub fn euclidean_mst(points: &[Point]) -> Result<SpanningTree, MstError> {
    validate_points(points)?;
    let n = points.len();
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    let mut edges = Vec::with_capacity(n - 1);

    in_tree[0] = true;
    for v in 1..n {
        best_dist[v] = points[0].distance(points[v]);
        best_from[v] = 0;
    }

    for _ in 1..n {
        // Pick the non-tree node closest to the tree.
        let mut u = usize::MAX;
        let mut u_dist = f64::INFINITY;
        for v in 0..n {
            if !in_tree[v] && best_dist[v] < u_dist {
                u = v;
                u_dist = best_dist[v];
            }
        }
        debug_assert_ne!(u, usize::MAX, "pointset should be connected");
        in_tree[u] = true;
        edges.push(Edge::new(best_from[u], u));
        for v in 0..n {
            if !in_tree[v] {
                let d = points[u].distance(points[v]);
                if d < best_dist[v] {
                    best_dist[v] = d;
                    best_from[v] = u;
                }
            }
        }
    }

    SpanningTree::new(points.to_vec(), edges)
}

/// Builds the Euclidean MST with Kruskal's algorithm, optionally excluding a set of
/// forbidden edges (used by the k-edge-connected spanner construction).
///
/// # Errors
///
/// Returns the same validation errors as [`euclidean_mst`], and
/// [`MstError::NotASpanningTree`] if the allowed edges cannot connect the pointset
/// (possible only when `forbidden` is non-empty).
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_mst::{euclidean_mst, kruskal_mst};
///
/// let points = vec![
///     Point::new(0.0, 0.0),
///     Point::new(2.0, 1.0),
///     Point::new(4.0, 0.0),
///     Point::new(1.0, 5.0),
/// ];
/// let prim = euclidean_mst(&points).unwrap();
/// let kruskal = kruskal_mst(&points, &[]).unwrap();
/// assert!((prim.total_length() - kruskal.total_length()).abs() < 1e-9);
/// ```
pub fn kruskal_mst(points: &[Point], forbidden: &[Edge]) -> Result<SpanningTree, MstError> {
    validate_points(points)?;
    let n = points.len();
    let mut candidates: Vec<(f64, Edge)> = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            let e = Edge::new(i, j);
            if forbidden.contains(&e) {
                continue;
            }
            candidates.push((points[i].distance(points[j]), e));
        }
    }
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut dsu = DisjointSets::new(n);
    let mut edges = Vec::with_capacity(n - 1);
    for (_, e) in candidates {
        if dsu.union(e.a, e.b) {
            edges.push(e);
            if edges.len() == n - 1 {
                break;
            }
        }
    }
    if edges.len() != n - 1 {
        return Err(MstError::NotASpanningTree {
            reason: "allowed edges cannot connect the pointset",
        });
    }
    SpanningTree::new(points.to_vec(), edges)
}

/// Builds the MST of a set of points on the real line: each point is connected to
/// its successor in sorted order. This is the unique MST of a line pointset (up to
/// ties) and is the tree used by all of the paper's lower-bound constructions.
///
/// The input points need not be sorted, and need not actually have `y = 0`: only
/// the `x` coordinates are used for sorting, so the caller is responsible for
/// passing a genuinely one-dimensional instance.
///
/// # Errors
///
/// Same validation as [`euclidean_mst`].
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_mst::line_mst;
///
/// let points = vec![Point::on_line(5.0), Point::on_line(0.0), Point::on_line(1.0)];
/// let tree = line_mst(&points).unwrap();
/// assert_eq!(tree.total_length(), 5.0);
/// assert_eq!(tree.edges().len(), 2);
/// ```
pub fn line_mst(points: &[Point]) -> Result<SpanningTree, MstError> {
    validate_points(points)?;
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| points[a].x.total_cmp(&points[b].x));
    let edges: Vec<Edge> = order.windows(2).map(|w| Edge::new(w[0], w[1])).collect();
    SpanningTree::new(points.to_vec(), edges)
}

/// A small union–find structure used by Kruskal's algorithm.
#[derive(Debug)]
struct DisjointSets {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl DisjointSets {
    fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Unions the sets of `a` and `b`; returns `false` if they were already joined.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;

    #[test]
    fn mst_of_two_points_is_single_edge() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.0, 7.0)];
        let t = euclidean_mst(&pts).unwrap();
        assert_eq!(t.edges(), &[Edge::new(0, 1)]);
        assert_eq!(t.total_length(), 7.0);
    }

    #[test]
    fn mst_rejects_duplicates_and_small_inputs() {
        assert!(matches!(
            euclidean_mst(&[Point::origin()]),
            Err(MstError::TooFewPoints { found: 1 })
        ));
        assert!(matches!(
            euclidean_mst(&[Point::origin(), Point::origin()]),
            Err(MstError::DuplicatePoints { .. })
        ));
        assert!(kruskal_mst(&[Point::origin()], &[]).is_err());
        assert!(line_mst(&[Point::origin()],).is_err());
    }

    #[test]
    fn mst_of_square_uses_three_sides() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        let t = euclidean_mst(&pts).unwrap();
        assert_eq!(t.edges().len(), 3);
        assert!((t.total_length() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mst_of_cluster_pair_crosses_once() {
        // Two tight clusters far apart: exactly one long edge crosses between them.
        let mut pts = Vec::new();
        for i in 0..5 {
            pts.push(Point::new(i as f64 * 0.1, 0.0));
            pts.push(Point::new(100.0 + i as f64 * 0.1, 0.0));
        }
        let t = euclidean_mst(&pts).unwrap();
        let long_edges = t.edge_lengths().into_iter().filter(|&l| l > 50.0).count();
        assert_eq!(long_edges, 1);
    }

    #[test]
    fn prim_and_kruskal_agree_on_random_instances() {
        let mut rng = wagg_geometry::rng::seeded_rng(17);
        for _ in 0..10 {
            let n = rng.gen_range(3..40);
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect();
            let a = euclidean_mst(&pts).unwrap();
            let b = kruskal_mst(&pts, &[]).unwrap();
            assert!(
                (a.total_length() - b.total_length()).abs() < 1e-6,
                "MST weight mismatch: {} vs {}",
                a.total_length(),
                b.total_length()
            );
        }
    }

    #[test]
    fn line_mst_connects_consecutive_points() {
        let pts = vec![
            Point::on_line(3.0),
            Point::on_line(1.0),
            Point::on_line(0.0),
            Point::on_line(10.0),
        ];
        let t = line_mst(&pts).unwrap();
        // Edges should be (2,1), (1,0), (0,3) by original indices: 0<->1, 1<->2, 0<->3.
        assert!(t.edges().contains(&Edge::new(1, 2)));
        assert!(t.edges().contains(&Edge::new(0, 1)));
        assert!(t.edges().contains(&Edge::new(0, 3)));
        assert_eq!(t.total_length(), 10.0);
    }

    #[test]
    fn line_mst_matches_euclidean_mst_on_line() {
        let pts: Vec<Point> = [0.0, 1.0, 3.0, 7.0, 15.0, 31.0]
            .iter()
            .map(|&x| Point::on_line(x))
            .collect();
        let a = line_mst(&pts).unwrap();
        let b = euclidean_mst(&pts).unwrap();
        assert_eq!(a.total_length(), b.total_length());
    }

    #[test]
    fn kruskal_with_forbidden_edges_finds_alternative() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ];
        let base = kruskal_mst(&pts, &[]).unwrap();
        assert_eq!(base.total_length(), 2.0);
        // Forbid the (0,1) edge; the alternative must use the 2-length (0,2) edge.
        let alt = kruskal_mst(&pts, &[Edge::new(0, 1)]).unwrap();
        assert_eq!(alt.total_length(), 3.0);
    }

    #[test]
    fn kruskal_fails_when_too_many_edges_forbidden() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let err = kruskal_mst(&pts, &[Edge::new(0, 1)]).unwrap_err();
        assert!(matches!(err, MstError::NotASpanningTree { .. }));
    }

    #[test]
    fn disjoint_sets_union_find() {
        let mut dsu = DisjointSets::new(4);
        assert!(dsu.union(0, 1));
        assert!(!dsu.union(1, 0));
        assert!(dsu.union(2, 3));
        assert!(dsu.union(0, 3));
        assert_eq!(dsu.find(1), dsu.find(2));
    }

    proptest! {
        /// The MST never weighs more than the path visiting points in input order
        /// (any spanning structure upper-bounds the MST weight).
        #[test]
        fn prop_mst_no_heavier_than_input_path(xs in proptest::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 2..30)) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            // Skip degenerate inputs with duplicate points.
            prop_assume!(euclidean_mst(&pts).is_ok());
            let t = euclidean_mst(&pts).unwrap();
            let path_len: f64 = pts.windows(2).map(|w| w[0].distance(w[1])).sum();
            prop_assert!(t.total_length() <= path_len + 1e-9);
        }

        /// Prim and Kruskal agree on MST weight.
        #[test]
        fn prop_prim_kruskal_agree(xs in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 2..20)) {
            let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
            prop_assume!(euclidean_mst(&pts).is_ok());
            let a = euclidean_mst(&pts).unwrap();
            let b = kruskal_mst(&pts, &[]).unwrap();
            prop_assert!((a.total_length() - b.total_length()).abs() < 1e-6);
        }

        /// The MST of points on a line has total length max - min.
        #[test]
        fn prop_line_mst_total_length(xs in proptest::collection::hash_set(0u32..100000, 2..40)) {
            let pts: Vec<Point> = xs.iter().map(|&x| Point::on_line(x as f64)).collect();
            let t = line_mst(&pts).unwrap();
            let max = xs.iter().max().unwrap();
            let min = xs.iter().min().unwrap();
            prop_assert!((t.total_length() - (*max as f64 - *min as f64)).abs() < 1e-9);
        }
    }
}
