//! Rectangular tilings of the deployment region.
//!
//! [`TileLayout`] covers a bounding box with a grid of square tiles and
//! answers the two queries a spatial domain decomposition needs:
//!
//! * **ownership** — [`TileLayout::tile_of`] maps a point to the unique tile
//!   containing it (clamped at the borders, so every finite point owns a
//!   tile), and
//! * **halo overlap** — [`TileLayout::for_each_tile_overlapping`] visits
//!   every tile a bounding box *expanded by a halo radius* touches, which is
//!   how a sharded scheduler decides which neighbouring shards need a ghost
//!   copy of a link.
//!
//! The layout is fully determined by its inputs (extent, target tile count,
//! minimum tile side), so two builds over the same inputs are identical —
//! shard ownership must be reproducible across runs and across serial and
//! parallel builds.
//!
//! # Examples
//!
//! ```
//! use wagg_geometry::{tiling::TileLayout, BoundingBox, Point};
//!
//! let extent = BoundingBox::new(0.0, 0.0, 100.0, 100.0);
//! let layout = TileLayout::cover(&extent, 16, 5.0);
//! assert_eq!(layout.tiles(), 16);
//! let t = layout.tile_of(Point::new(1.0, 1.0));
//! assert!(layout.tile_box(t).contains(Point::new(1.0, 1.0)));
//! ```

use crate::{BoundingBox, Point};

/// A deterministic grid of square tiles covering a bounding box.
#[derive(Debug, Clone, PartialEq)]
pub struct TileLayout {
    /// Lower-left corner of tile `(0, 0)`.
    min_x: f64,
    /// Lower-left corner of tile `(0, 0)`.
    min_y: f64,
    /// Tile side length.
    tile: f64,
    /// Number of tile columns.
    cols: usize,
    /// Number of tile rows.
    rows: usize,
}

impl TileLayout {
    /// Covers `extent` with roughly `target_tiles` square tiles whose side is
    /// at least `min_tile`.
    ///
    /// The tile side is chosen as `max(min_tile, sqrt(area / target_tiles))`,
    /// then columns and rows are however many tiles of that side the extent
    /// needs — so the realised tile count is close to (and never above the
    /// order of) the target, and degenerate extents (collinear deployments,
    /// single points) collapse to a single row, column or tile instead of
    /// producing empty tiles.
    ///
    /// # Panics
    ///
    /// Panics when `target_tiles == 0`, when `min_tile` is not positive and
    /// finite, or when the extent has non-finite coordinates.
    pub fn cover(extent: &BoundingBox, target_tiles: usize, min_tile: f64) -> Self {
        assert!(target_tiles > 0, "need at least one tile");
        assert!(
            min_tile > 0.0 && min_tile.is_finite(),
            "minimum tile side must be positive and finite"
        );
        assert!(
            extent.min_x.is_finite()
                && extent.min_y.is_finite()
                && extent.max_x.is_finite()
                && extent.max_y.is_finite(),
            "tiling extent must be finite"
        );
        let width = extent.width().max(0.0);
        let height = extent.height().max(0.0);
        let area = width * height;
        let nominal = if area > 0.0 {
            (area / target_tiles as f64).sqrt()
        } else {
            // Degenerate extent (a line or a point): size tiles by the longer
            // side so the tile count still approaches the target.
            (width.max(height) / target_tiles as f64).max(min_tile)
        };
        let tile = nominal.max(min_tile);
        let cols = ((width / tile).ceil() as usize).max(1);
        let rows = ((height / tile).ceil() as usize).max(1);
        TileLayout {
            min_x: extent.min_x,
            min_y: extent.min_y,
            tile,
            cols,
            rows,
        }
    }

    /// Tile side length.
    pub fn tile_size(&self) -> f64 {
        self.tile
    }

    /// Number of tile columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of tile rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of tiles (`cols · rows`).
    pub fn tiles(&self) -> usize {
        self.cols * self.rows
    }

    /// Column of the tile containing `x`, clamped to the grid.
    #[inline]
    fn col_of(&self, x: f64) -> usize {
        (((x - self.min_x) / self.tile).floor().max(0.0) as usize).min(self.cols - 1)
    }

    /// Row of the tile containing `y`, clamped to the grid.
    #[inline]
    fn row_of(&self, y: f64) -> usize {
        (((y - self.min_y) / self.tile).floor().max(0.0) as usize).min(self.rows - 1)
    }

    /// The tile containing `p` (points outside the extent clamp to the
    /// nearest border tile, so ownership is total).
    #[inline]
    pub fn tile_of(&self, p: Point) -> usize {
        self.row_of(p.y) * self.cols + self.col_of(p.x)
    }

    /// The `(col, row)` coordinates of tile `t`.
    #[inline]
    pub fn col_row(&self, t: usize) -> (usize, usize) {
        (t % self.cols, t / self.cols)
    }

    /// The axis-aligned box of tile `t` (border tiles extend to infinity
    /// conceptually; the box returned is the nominal square).
    pub fn tile_box(&self, t: usize) -> BoundingBox {
        let (c, r) = self.col_row(t);
        BoundingBox::new(
            self.min_x + c as f64 * self.tile,
            self.min_y + r as f64 * self.tile,
            self.min_x + (c + 1) as f64 * self.tile,
            self.min_y + (r + 1) as f64 * self.tile,
        )
    }

    /// The 4-class chessboard parity of tile `t`: `(col mod 2) + 2 · (row mod
    /// 2)`. Two distinct tiles of the same parity are at least two tiles
    /// apart in some axis, so they are never edge- or corner-adjacent — the
    /// property the sharded stitcher's color offsetting leans on.
    #[inline]
    pub fn parity(&self, t: usize) -> usize {
        let (c, r) = self.col_row(t);
        (c % 2) + 2 * (r % 2)
    }

    /// Visits every tile overlapped by `bbox` expanded by `halo` on all
    /// sides, in ascending tile order. `halo` must be non-negative.
    pub fn for_each_tile_overlapping<F: FnMut(usize)>(
        &self,
        bbox: &BoundingBox,
        halo: f64,
        mut visit: F,
    ) {
        debug_assert!(halo >= 0.0, "halo must be non-negative");
        let c0 = self.col_of(bbox.min_x - halo);
        let c1 = self.col_of(bbox.max_x + halo);
        let r0 = self.row_of(bbox.min_y - halo);
        let r1 = self.row_of(bbox.max_y + halo);
        for r in r0..=r1 {
            for c in c0..=c1 {
                visit(r * self.cols + c);
            }
        }
    }

    /// The tiles overlapped by `bbox` expanded by `halo`, ascending.
    pub fn tiles_overlapping(&self, bbox: &BoundingBox, halo: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_tile_overlapping(bbox, halo, |t| out.push(t));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(side: f64) -> BoundingBox {
        BoundingBox::new(0.0, 0.0, side, side)
    }

    #[test]
    fn cover_hits_the_target_tile_count() {
        let layout = TileLayout::cover(&square(100.0), 16, 1.0);
        assert_eq!((layout.cols(), layout.rows()), (4, 4));
        assert_eq!(layout.tiles(), 16);
        assert_eq!(layout.tile_size(), 25.0);
    }

    #[test]
    fn min_tile_caps_the_tile_count() {
        // 64 tiles of a 100-unit square would need side 12.5 < min 40.
        let layout = TileLayout::cover(&square(100.0), 64, 40.0);
        assert_eq!(layout.tile_size(), 40.0);
        assert_eq!((layout.cols(), layout.rows()), (3, 3));
    }

    #[test]
    fn ownership_is_total_and_clamped() {
        let layout = TileLayout::cover(&square(10.0), 4, 1.0);
        assert_eq!(layout.tile_of(Point::new(-5.0, -5.0)), 0);
        assert_eq!(layout.tile_of(Point::new(50.0, 50.0)), layout.tiles() - 1);
        for t in 0..layout.tiles() {
            let b = layout.tile_box(t);
            assert_eq!(layout.tile_of(b.center()), t);
        }
    }

    #[test]
    fn degenerate_extents_collapse() {
        // Collinear deployment: one row of tiles.
        let line = BoundingBox::new(0.0, 5.0, 90.0, 5.0);
        let layout = TileLayout::cover(&line, 9, 10.0);
        assert_eq!(layout.rows(), 1);
        assert_eq!(layout.cols(), 9);
        // A single point: a single tile.
        let dot = BoundingBox::new(3.0, 3.0, 3.0, 3.0);
        let layout = TileLayout::cover(&dot, 8, 2.0);
        assert_eq!(layout.tiles(), 1);
    }

    #[test]
    fn halo_queries_visit_exactly_the_expanded_overlap() {
        let layout = TileLayout::cover(&square(40.0), 16, 1.0); // 4x4, tile 10
        let inner = BoundingBox::new(12.0, 12.0, 13.0, 13.0); // tile (1,1)
        assert_eq!(layout.tiles_overlapping(&inner, 0.0), vec![5]);
        // Expanded by 1 it still stays inside tile (1,1)'s 10-unit cell.
        assert_eq!(layout.tiles_overlapping(&inner, 1.0), vec![5]);
        // Expanded past the lower cell border it reaches the lower-left block.
        assert_eq!(layout.tiles_overlapping(&inner, 4.0), vec![0, 1, 4, 5]);
        // Expanded past both borders it reaches all 8 neighbours.
        let tiles = layout.tiles_overlapping(&inner, 8.0);
        assert_eq!(tiles, vec![0, 1, 2, 4, 5, 6, 8, 9, 10]);
    }

    #[test]
    fn parity_separates_adjacent_tiles() {
        let layout = TileLayout::cover(&square(60.0), 36, 1.0); // 6x6
        for t in 0..layout.tiles() {
            let (c, r) = layout.col_row(t);
            for (dc, dr) in [(1isize, 0isize), (0, 1), (1, 1), (1, -1)] {
                let (nc, nr) = (c as isize + dc, r as isize + dr);
                if nc < 0 || nr < 0 || nc >= 6 || nr >= 6 {
                    continue;
                }
                let n = nr as usize * layout.cols() + nc as usize;
                assert_ne!(layout.parity(t), layout.parity(n), "tiles {t} and {n}");
            }
        }
    }

    #[test]
    fn layouts_are_deterministic() {
        let a = TileLayout::cover(&square(77.0), 25, 2.5);
        let b = TileLayout::cover(&square(77.0), 25, 2.5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn zero_target_is_rejected() {
        let _ = TileLayout::cover(&square(1.0), 0, 1.0);
    }
}
