//! Slow-growing functions used to state the paper's bounds.
//!
//! The paper's main results are phrased in terms of `log* Δ` (the iterated
//! logarithm of the length diversity) and `log log Δ`. These helpers compute
//! those quantities for the experiment harness so measured schedule lengths can
//! be compared against the analytical shape.

/// The iterated (base-2) logarithm `log* x`: the number of times `log2` must be
/// applied to `x` before the result drops to at most 1.
///
/// By convention `log*(x) = 0` for `x <= 1`.
///
/// # Examples
///
/// ```
/// use wagg_geometry::logmath::log_star;
///
/// assert_eq!(log_star(1.0), 0);
/// assert_eq!(log_star(2.0), 1);
/// assert_eq!(log_star(4.0), 2);
/// assert_eq!(log_star(16.0), 3);
/// assert_eq!(log_star(65536.0), 4);
/// ```
pub fn log_star(x: f64) -> u32 {
    if !x.is_finite() {
        // The tower function grows so fast that any representable f64 has
        // log* at most 5; treat non-finite input as the maximum.
        return 6;
    }
    let mut v = x;
    let mut count = 0;
    while v > 1.0 {
        v = v.log2();
        count += 1;
        if count > 64 {
            break;
        }
    }
    count
}

/// `log2(log2(x))`, clamped below at zero. Returns `0` for `x <= 2`.
///
/// # Examples
///
/// ```
/// use wagg_geometry::logmath::log_log2;
///
/// assert_eq!(log_log2(2.0), 0.0);
/// assert_eq!(log_log2(16.0), 2.0);
/// ```
pub fn log_log2(x: f64) -> f64 {
    if x <= 2.0 {
        return 0.0;
    }
    x.log2().log2().max(0.0)
}

/// `ceil(log2(x))` for positive `x`, and `0` for `x <= 1`.
///
/// # Examples
///
/// ```
/// use wagg_geometry::logmath::ceil_log2;
///
/// assert_eq!(ceil_log2(1.0), 0);
/// assert_eq!(ceil_log2(2.0), 1);
/// assert_eq!(ceil_log2(5.0), 3);
/// ```
pub fn ceil_log2(x: f64) -> u32 {
    if x <= 1.0 {
        return 0;
    }
    x.log2().ceil() as u32
}

/// The power tower `2 ↑↑ h` = 2^(2^(...^2)) of height `h`, as `f64`.
///
/// Returns `f64::INFINITY` when the tower overflows the `f64` range
/// (which happens already for `h >= 6`). This is the inverse of [`log_star`]:
/// `log_star(tower(h)) == h` for all representable towers.
///
/// # Examples
///
/// ```
/// use wagg_geometry::logmath::{log_star, tower};
///
/// assert_eq!(tower(0), 1.0);
/// assert_eq!(tower(1), 2.0);
/// assert_eq!(tower(2), 4.0);
/// assert_eq!(tower(3), 16.0);
/// assert_eq!(tower(4), 65536.0);
/// assert_eq!(log_star(tower(4)), 4);
/// ```
pub fn tower(h: u32) -> f64 {
    let mut v = 1.0_f64;
    for _ in 0..h {
        v = 2.0_f64.powf(v);
        if !v.is_finite() {
            return f64::INFINITY;
        }
    }
    v
}

/// Number of doublings needed to go from `lo` to at least `hi`:
/// `ceil(log2(hi / lo))`, with a minimum of 1 when `hi > lo`, else 0.
///
/// Used to count length classes `[2^(t-1)·l_min, 2^t·l_min)` in the distributed
/// scheduler (Sec. 3.3 of the paper).
///
/// # Examples
///
/// ```
/// use wagg_geometry::logmath::doubling_classes;
///
/// assert_eq!(doubling_classes(1.0, 1.0), 1);
/// assert_eq!(doubling_classes(1.0, 2.0), 2);
/// assert_eq!(doubling_classes(1.0, 7.9), 3);
/// ```
pub fn doubling_classes(lo: f64, hi: f64) -> u32 {
    assert!(lo > 0.0, "lower bound must be positive");
    assert!(hi >= lo, "upper bound must be at least the lower bound");
    let ratio = hi / lo;
    // A length l with lo <= l <= hi belongs to class floor(log2(l / lo)) + 1.
    (ratio.log2().floor() as u32) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_star_small_values() {
        assert_eq!(log_star(0.0), 0);
        assert_eq!(log_star(0.5), 0);
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(1.5), 1);
    }

    #[test]
    fn log_star_tower_values() {
        for h in 0..=5 {
            let t = tower(h);
            if t.is_finite() {
                assert_eq!(log_star(t), h, "log*(tower({h}))");
            }
        }
    }

    #[test]
    fn log_star_between_towers() {
        assert_eq!(log_star(10.0), 3); // 4 < 10 <= 16
        assert_eq!(log_star(100.0), 4); // 16 < 100 <= 65536
        assert_eq!(log_star(1e30), 5);
    }

    #[test]
    fn log_star_infinite_input() {
        assert_eq!(log_star(f64::INFINITY), 6);
        assert_eq!(log_star(f64::NAN), 6);
    }

    #[test]
    fn log_log2_values() {
        assert_eq!(log_log2(1.0), 0.0);
        assert_eq!(log_log2(4.0), 1.0);
        assert_eq!(log_log2(256.0), 3.0);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0.5), 0);
        assert_eq!(ceil_log2(8.0), 3);
        assert_eq!(ceil_log2(9.0), 4);
    }

    #[test]
    fn tower_overflows_to_infinity() {
        assert_eq!(tower(6), f64::INFINITY);
    }

    #[test]
    fn doubling_classes_examples() {
        assert_eq!(doubling_classes(1.0, 1.0), 1);
        assert_eq!(doubling_classes(1.0, 1.99), 1);
        assert_eq!(doubling_classes(1.0, 2.0), 2);
        assert_eq!(doubling_classes(2.0, 16.0), 4);
    }

    #[test]
    #[should_panic(expected = "lower bound must be positive")]
    fn doubling_classes_rejects_zero_lo() {
        let _ = doubling_classes(0.0, 1.0);
    }

    #[test]
    fn log_star_is_monotone() {
        let mut prev = 0;
        for i in 1..200 {
            let x = 1.1_f64.powi(i);
            let v = log_star(x);
            assert!(v >= prev);
            prev = v;
        }
    }
}
