//! A uniform spatial hash over axis-aligned boxes.
//!
//! [`UniformGrid`] is the spatial index behind the workspace's
//! distance-bounded pairwise kernels (conflict-graph construction being the
//! main consumer): items — typically the bounding boxes of link segments — are
//! binned into square cells of a caller-chosen size, and
//! [`UniformGrid::for_each_candidate`] enumerates every item whose bounding
//! box could lie within a query radius of a query box, in `O(cells touched +
//! candidates)` instead of `O(n)`.
//!
//! Guarantees and non-guarantees:
//!
//! * **Superset property** — if the true (Euclidean, segment-to-segment)
//!   distance between a query item and a stored item is at most `radius`, the
//!   stored item *is* visited: Euclidean distance upper-bounds each axis gap,
//!   so the expanded query box intersects the item's box. Callers must still
//!   apply their exact predicate; the grid only prunes.
//! * **Duplicates** — an item spanning several cells is visited once per
//!   overlapped cell in the query window. Callers dedupe (the conflict-graph
//!   builder sorts its candidate rows anyway).
//! * **Bounded memory** — the constructor widens the cell size until the cell
//!   count is `O(n)`, so degenerate geometry (one far-away outlier, collinear
//!   chains) cannot blow up the table.
//!
//! # Examples
//!
//! ```
//! use wagg_geometry::{grid::UniformGrid, BoundingBox};
//!
//! // Three unit boxes on a line; query around the middle one.
//! let boxes = vec![
//!     BoundingBox::new(0.0, 0.0, 1.0, 1.0),
//!     BoundingBox::new(5.0, 0.0, 6.0, 1.0),
//!     BoundingBox::new(40.0, 0.0, 41.0, 1.0),
//! ];
//! let grid = UniformGrid::build(2.0, &boxes);
//! let near = grid.neighbors_within(&boxes[1], 6.0);
//! assert_eq!(near, vec![0, 1]); // the far box is pruned
//! ```

use crate::BoundingBox;

/// A uniform grid over axis-aligned bounding boxes, stored in a flat
/// counting-sorted layout (`offsets` into one `items` array — the same CSR
/// idea the conflict graph uses for adjacency).
#[derive(Debug, Clone, PartialEq)]
pub struct UniformGrid {
    /// Side length of a (square) cell.
    cell: f64,
    /// Lower-left corner of the grid.
    min_x: f64,
    /// Lower-left corner of the grid.
    min_y: f64,
    /// Number of columns.
    cols: usize,
    /// Number of rows.
    rows: usize,
    /// `offsets[c]..offsets[c + 1]` indexes the items overlapping cell `c`.
    offsets: Vec<u32>,
    /// Item ids, grouped by cell.
    items: Vec<u32>,
}

impl UniformGrid {
    /// Builds a grid with cells of (at least) `cell_hint` over the given boxes.
    ///
    /// The effective cell size may be larger: it is doubled until the total
    /// cell count is at most `max(64, 8 · n)`, which bounds memory on
    /// degenerate inputs. An empty slice yields an empty, queryable grid.
    ///
    /// # Panics
    ///
    /// Panics if `cell_hint` is not strictly positive and finite, if any box
    /// has a non-finite coordinate, or if there are more than `u32::MAX` items.
    pub fn build(cell_hint: f64, boxes: &[BoundingBox]) -> Self {
        assert!(
            cell_hint > 0.0 && cell_hint.is_finite(),
            "cell size must be positive and finite"
        );
        assert!(
            boxes.len() < u32::MAX as usize,
            "too many items for the grid"
        );
        let Some(extent) = bbox_union(boxes) else {
            return UniformGrid {
                cell: cell_hint,
                min_x: 0.0,
                min_y: 0.0,
                cols: 0,
                rows: 0,
                offsets: vec![0],
                items: Vec::new(),
            };
        };
        assert!(
            extent.min_x.is_finite()
                && extent.min_y.is_finite()
                && extent.max_x.is_finite()
                && extent.max_y.is_finite(),
            "grid items must have finite coordinates"
        );

        // Widen cells until the table is O(n). The candidate dimensions are
        // compared in f64 BEFORE any usize cast: an extent spanning more than
        // usize::MAX nominal cells (two tight clusters astronomically far
        // apart) must widen here, not overflow in the cast.
        let max_cells = (8 * boxes.len()).max(64);
        let mut cell = cell_hint;
        while fdims(&extent, cell).0 * fdims(&extent, cell).1 > max_cells as f64 {
            cell *= 2.0;
        }
        let (fcols, frows) = fdims(&extent, cell);
        let (cols, rows) = (fcols as usize, frows as usize);

        let n_cells = cols * rows;
        let mut counts = vec![0u32; n_cells + 1];
        let span = |b: &BoundingBox| cell_span(b, extent.min_x, extent.min_y, cell, cols, rows);
        for b in boxes {
            let (c0, c1, r0, r1) = span(b);
            for r in r0..=r1 {
                for c in c0..=c1 {
                    counts[r * cols + c + 1] += 1;
                }
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor: Vec<u32> = counts[..n_cells].to_vec();
        let mut items = vec![0u32; offsets[n_cells] as usize];
        for (id, b) in boxes.iter().enumerate() {
            let (c0, c1, r0, r1) = span(b);
            for r in r0..=r1 {
                for c in c0..=c1 {
                    let slot = &mut cursor[r * cols + c];
                    items[*slot as usize] = id as u32;
                    *slot += 1;
                }
            }
        }
        UniformGrid {
            cell,
            min_x: extent.min_x,
            min_y: extent.min_y,
            cols,
            rows,
            offsets,
            items,
        }
    }

    /// The effective cell side length (may exceed the hint passed to
    /// [`UniformGrid::build`]).
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of items stored (counting each item once per overlapped cell).
    pub fn stored_entries(&self) -> usize {
        self.items.len()
    }

    /// Visits the id of every stored item whose bounding box intersects
    /// `query` expanded by `radius` on every side. Items spanning several
    /// cells may be visited multiple times; callers dedupe.
    #[inline]
    pub fn for_each_candidate<F: FnMut(usize)>(
        &self,
        query: &BoundingBox,
        radius: f64,
        mut visit: F,
    ) {
        if self.cols == 0 || self.rows == 0 {
            return;
        }
        let expanded = BoundingBox {
            min_x: query.min_x - radius,
            min_y: query.min_y - radius,
            max_x: query.max_x + radius,
            max_y: query.max_y + radius,
        };
        let (c0, c1, r0, r1) = cell_span(
            &expanded, self.min_x, self.min_y, self.cell, self.cols, self.rows,
        );
        for r in r0..=r1 {
            let base = r * self.cols;
            let lo = self.offsets[base + c0] as usize;
            let hi = self.offsets[base + c1 + 1] as usize;
            // Cells in one row are contiguous in the flat layout, so a whole
            // row of the query window is a single slice scan.
            for &id in &self.items[lo..hi] {
                visit(id as usize);
            }
        }
    }

    /// Ids of stored items within `radius` of `query` by the *conservative*
    /// box metric, deduplicated and sorted. Convenience wrapper over
    /// [`UniformGrid::for_each_candidate`] for callers that want a plain list;
    /// hot paths should use the visitor and fold their exact predicate in.
    pub fn neighbors_within(&self, query: &BoundingBox, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_candidate(query, radius, |id| out.push(id));
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Union of a slice of boxes (`None` when empty).
fn bbox_union(boxes: &[BoundingBox]) -> Option<BoundingBox> {
    let first = *boxes.first()?;
    Some(boxes[1..].iter().fold(first, |acc, b| BoundingBox {
        min_x: acc.min_x.min(b.min_x),
        min_y: acc.min_y.min(b.min_y),
        max_x: acc.max_x.max(b.max_x),
        max_y: acc.max_y.max(b.max_y),
    }))
}

/// Grid dimensions covering `extent` with cells of size `cell`, in f64 so
/// callers can bound the product before casting to `usize`.
fn fdims(extent: &BoundingBox, cell: f64) -> (f64, f64) {
    let cols = (extent.width() / cell).floor() + 1.0;
    let rows = (extent.height() / cell).floor() + 1.0;
    (cols, rows)
}

/// The inclusive cell range `(c0, c1, r0, r1)` overlapped by `b`, clamped to
/// the grid.
#[inline]
fn cell_span(
    b: &BoundingBox,
    min_x: f64,
    min_y: f64,
    cell: f64,
    cols: usize,
    rows: usize,
) -> (usize, usize, usize, usize) {
    let clamp_col = |x: f64| (((x - min_x) / cell).floor().max(0.0) as usize).min(cols - 1);
    let clamp_row = |y: f64| (((y - min_y) / cell).floor().max(0.0) as usize).min(rows - 1);
    (
        clamp_col(b.min_x),
        clamp_col(b.max_x),
        clamp_row(b.min_y),
        clamp_row(b.max_y),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box(x: f64, y: f64) -> BoundingBox {
        BoundingBox::new(x, y, x + 1.0, y + 1.0)
    }

    #[test]
    fn empty_grid_is_queryable() {
        let grid = UniformGrid::build(1.0, &[]);
        assert_eq!(grid.neighbors_within(&unit_box(0.0, 0.0), 100.0), vec![]);
        assert_eq!(grid.stored_entries(), 0);
    }

    #[test]
    fn single_item_found_at_any_radius() {
        let boxes = vec![unit_box(10.0, 10.0)];
        let grid = UniformGrid::build(1.0, &boxes);
        assert_eq!(grid.neighbors_within(&boxes[0], 0.0), vec![0]);
    }

    #[test]
    fn superset_property_on_random_boxes() {
        // Deterministic pseudo-random boxes; compare grid candidates against
        // brute-force box-distance within radius.
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 100.0
        };
        let boxes: Vec<BoundingBox> = (0..200)
            .map(|_| {
                let x = next();
                let y = next();
                let w = next() * 0.05;
                let h = next() * 0.05;
                BoundingBox::new(x, y, x + w, y + h)
            })
            .collect();
        let grid = UniformGrid::build(2.5, &boxes);
        let radius = 7.0;
        for (i, q) in boxes.iter().enumerate() {
            let candidates = grid.neighbors_within(q, radius);
            for (j, b) in boxes.iter().enumerate() {
                let dx = (b.min_x - q.max_x).max(q.min_x - b.max_x).max(0.0);
                let dy = (b.min_y - q.max_y).max(q.min_y - b.max_y).max(0.0);
                let within = dx.hypot(dy) <= radius;
                if within {
                    assert!(
                        candidates.binary_search(&j).is_ok(),
                        "item {j} within {radius} of {i} but not visited"
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_extents_do_not_blow_up() {
        // A long collinear chain: rows = 1, cols bounded by 8n.
        let boxes: Vec<BoundingBox> = (0..100).map(|i| unit_box(i as f64 * 1000.0, 0.0)).collect();
        let grid = UniformGrid::build(0.001, &boxes);
        assert!(grid.cell_size() > 0.001); // widened to keep the table small
        let found = grid.neighbors_within(&boxes[0], 500.0);
        assert!(found.contains(&0));
        assert!(!found.contains(&99) || grid.cell_size() >= 1000.0);
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_size_rejected() {
        let _ = UniformGrid::build(0.0, &[unit_box(0.0, 0.0)]);
    }

    #[test]
    fn astronomically_spread_clusters_do_not_overflow() {
        // Two tight clusters 1e30 apart with cell hint 1: the nominal cell
        // count exceeds usize::MAX, so the builder must widen (in f64)
        // instead of overflowing the dimension cast.
        let mut boxes: Vec<BoundingBox> = (0..40).map(|i| unit_box(i as f64 * 2.0, 0.0)).collect();
        boxes.extend((0..40).map(|i| unit_box(1e30 + i as f64 * 2.0, 0.0)));
        let grid = UniformGrid::build(1.0, &boxes);
        assert!(grid.cell_size() >= 1.0);
        // Items within a cluster still find each other.
        let near = grid.neighbors_within(&boxes[0], 10.0);
        assert!(near.contains(&0));
        assert!(near.contains(&1));
    }

    #[test]
    fn items_spanning_cells_are_deduplicated_by_neighbors_within() {
        let boxes = vec![BoundingBox::new(0.0, 0.0, 5.0, 5.0)];
        let grid = UniformGrid::build(1.0, &boxes);
        assert_eq!(grid.neighbors_within(&boxes[0], 1.0), vec![0]);
        assert!(grid.stored_entries() > 1); // genuinely stored in many cells
    }
}
