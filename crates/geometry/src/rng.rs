//! Deterministic random number helpers.
//!
//! Every randomised instance generator and every experiment in the benchmark
//! harness takes an explicit seed, so results are reproducible run to run.
//! This module centralises the seeding convention: a ChaCha8 generator keyed
//! by a `u64` seed.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The deterministic RNG used throughout the workspace.
pub type DeterministicRng = ChaCha8Rng;

/// Creates a deterministic RNG from a `u64` seed.
///
/// The same seed always produces the same stream, across platforms.
///
/// # Examples
///
/// ```
/// use wagg_geometry::rng::seeded_rng;
/// use rand::Rng;
///
/// let mut a = seeded_rng(42);
/// let mut b = seeded_rng(42);
/// let xa: u64 = a.gen();
/// let xb: u64 = b.gen();
/// assert_eq!(xa, xb);
/// ```
pub fn seeded_rng(seed: u64) -> DeterministicRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index.
///
/// Useful when a single experiment needs several independent deterministic
/// streams (e.g. one per repetition of a sweep point).
///
/// # Examples
///
/// ```
/// use wagg_geometry::rng::derive_seed;
///
/// assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
/// assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
/// ```
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    // SplitMix64 finalizer over the combined value: cheap, well-mixed and
    // deterministic across platforms.
    let mut z = parent
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws a uniform `f64` in `[lo, hi)` from the given RNG.
///
/// # Panics
///
/// Panics if `lo >= hi`.
///
/// # Examples
///
/// ```
/// use wagg_geometry::rng::{seeded_rng, uniform_in};
///
/// let mut rng = seeded_rng(3);
/// let x = uniform_in(&mut rng, 1.0, 2.0);
/// assert!((1.0..2.0).contains(&x));
/// ```
pub fn uniform_in<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo < hi, "lo must be strictly less than hi");
    rng.gen_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(123);
        let mut b = seeded_rng(123);
        for _ in 0..32 {
            let xa: f64 = a.gen();
            let xb: f64 = b.gen();
            assert_eq!(xa, xb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
    }

    #[test]
    fn derive_seed_is_deterministic_and_spreads() {
        let s = derive_seed(99, 0);
        assert_eq!(s, derive_seed(99, 0));
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            seen.insert(derive_seed(99, i));
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn uniform_in_respects_bounds() {
        let mut rng = seeded_rng(7);
        for _ in 0..1000 {
            let x = uniform_in(&mut rng, -2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "lo must be strictly less than hi")]
    fn uniform_in_rejects_empty_range() {
        let mut rng = seeded_rng(7);
        let _ = uniform_in(&mut rng, 1.0, 1.0);
    }
}
