//! Length-diversity (`Δ`) computations.
//!
//! The paper's schedule-length bounds are stated in terms of the *length diversity*
//! `Δ`: for a pointset, the ratio between the largest and smallest pairwise distance;
//! for a set of links, the ratio between the longest and shortest link length.

use crate::Point;

/// Ratio between the largest and smallest pairwise distance of a pointset
/// (the paper's `Δ` for point sets).
///
/// Returns `None` if fewer than two points are given or if two points coincide
/// (which would make the minimum distance zero and the ratio undefined).
///
/// This is an exact `O(n²)` computation; the instance sizes used by the
/// experiments (up to a few thousand points) are well within its reach.
///
/// # Examples
///
/// ```
/// use wagg_geometry::{Point, diversity::length_diversity};
///
/// let pts = vec![Point::on_line(0.0), Point::on_line(1.0), Point::on_line(10.0)];
/// assert_eq!(length_diversity(&pts), Some(10.0));
/// assert_eq!(length_diversity(&pts[..1]), None);
/// ```
pub fn length_diversity(points: &[Point]) -> Option<f64> {
    let (min_d, max_d) = min_max_pairwise_distance(points)?;
    if min_d == 0.0 {
        return None;
    }
    Some(max_d / min_d)
}

/// The smallest and largest pairwise distances of a pointset, as `(min, max)`.
///
/// Returns `None` if fewer than two points are given.
///
/// # Examples
///
/// ```
/// use wagg_geometry::{Point, diversity::min_max_pairwise_distance};
///
/// let pts = vec![Point::on_line(0.0), Point::on_line(2.0), Point::on_line(3.0)];
/// let (min_d, max_d) = min_max_pairwise_distance(&pts).unwrap();
/// assert_eq!(min_d, 1.0);
/// assert_eq!(max_d, 3.0);
/// ```
pub fn min_max_pairwise_distance(points: &[Point]) -> Option<(f64, f64)> {
    if points.len() < 2 {
        return None;
    }
    let mut min_d = f64::INFINITY;
    let mut max_d: f64 = 0.0;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let d = points[i].distance(points[j]);
            min_d = min_d.min(d);
            max_d = max_d.max(d);
        }
    }
    Some((min_d, max_d))
}

/// Ratio between the largest and smallest value in a slice of positive lengths
/// (the paper's `Δ(L)` for link sets).
///
/// Returns `None` for an empty slice or when the minimum is not strictly positive.
///
/// # Examples
///
/// ```
/// use wagg_geometry::diversity::length_ratio;
///
/// assert_eq!(length_ratio(&[1.0, 4.0, 2.0]), Some(4.0));
/// assert_eq!(length_ratio(&[]), None);
/// assert_eq!(length_ratio(&[0.0, 1.0]), None);
/// ```
pub fn length_ratio(lengths: &[f64]) -> Option<f64> {
    if lengths.is_empty() {
        return None;
    }
    let mut min_l = f64::INFINITY;
    let mut max_l = f64::NEG_INFINITY;
    for &l in lengths {
        min_l = min_l.min(l);
        max_l = max_l.max(l);
    }
    if min_l <= 0.0 || !min_l.is_finite() || !max_l.is_finite() {
        return None;
    }
    Some(max_l / min_l)
}

/// The diameter (largest pairwise distance) of a pointset, `0` for fewer than two points.
///
/// # Examples
///
/// ```
/// use wagg_geometry::{Point, diversity::diameter};
///
/// let pts = vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)];
/// assert_eq!(diameter(&pts), 5.0);
/// assert_eq!(diameter(&pts[..1]), 0.0);
/// ```
pub fn diameter(points: &[Point]) -> f64 {
    min_max_pairwise_distance(points)
        .map(|(_, max)| max)
        .unwrap_or(0.0)
}

/// The smallest pairwise distance of a pointset, `+∞` for fewer than two points.
///
/// # Examples
///
/// ```
/// use wagg_geometry::{Point, diversity::min_distance};
///
/// let pts = vec![Point::on_line(0.0), Point::on_line(0.5), Point::on_line(2.0)];
/// assert_eq!(min_distance(&pts), 0.5);
/// ```
pub fn min_distance(points: &[Point]) -> f64 {
    min_max_pairwise_distance(points)
        .map(|(min, _)| min)
        .unwrap_or(f64::INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diversity_of_two_points_is_one() {
        let pts = vec![Point::on_line(0.0), Point::on_line(5.0)];
        assert_eq!(length_diversity(&pts), Some(1.0));
    }

    #[test]
    fn diversity_undefined_for_duplicates() {
        let pts = vec![
            Point::on_line(0.0),
            Point::on_line(0.0),
            Point::on_line(1.0),
        ];
        assert_eq!(length_diversity(&pts), None);
    }

    #[test]
    fn diversity_of_exponential_chain() {
        // Points at 0, 1, 3, 7: gaps 1, 2, 4; distances range from 1 to 7.
        let pts = vec![
            Point::on_line(0.0),
            Point::on_line(1.0),
            Point::on_line(3.0),
            Point::on_line(7.0),
        ];
        assert_eq!(length_diversity(&pts), Some(7.0));
    }

    #[test]
    fn min_max_for_triangle() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 2.0),
        ];
        let (min_d, max_d) = min_max_pairwise_distance(&pts).unwrap();
        assert_eq!(min_d, 1.0);
        assert!((max_d - 5.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn length_ratio_rejects_nonpositive() {
        assert_eq!(length_ratio(&[-1.0, 2.0]), None);
    }

    #[test]
    fn length_ratio_single_element() {
        assert_eq!(length_ratio(&[3.0]), Some(1.0));
    }

    #[test]
    fn diameter_and_min_distance_defaults() {
        assert_eq!(diameter(&[]), 0.0);
        assert_eq!(min_distance(&[]), f64::INFINITY);
    }
}
