//! Axis-aligned bounding boxes of pointsets.

use crate::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box.
///
/// Used by instance generators and by the experiment harness to report
/// deployment areas and to normalise instances.
///
/// # Examples
///
/// ```
/// use wagg_geometry::{BoundingBox, Point};
///
/// let pts = [Point::new(0.0, 1.0), Point::new(2.0, -1.0)];
/// let bb = BoundingBox::of_points(&pts).unwrap();
/// assert_eq!(bb.width(), 2.0);
/// assert_eq!(bb.height(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Minimum x coordinate.
    pub min_x: f64,
    /// Minimum y coordinate.
    pub min_y: f64,
    /// Maximum x coordinate.
    pub max_x: f64,
    /// Maximum y coordinate.
    pub max_y: f64,
}

impl BoundingBox {
    /// Creates a bounding box from explicit corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `min_x > max_x` or `min_y > max_y`.
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::BoundingBox;
    /// let bb = BoundingBox::new(0.0, 0.0, 1.0, 2.0);
    /// assert_eq!(bb.area(), 2.0);
    /// ```
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        assert!(min_x <= max_x, "min_x must not exceed max_x");
        assert!(min_y <= max_y, "min_y must not exceed max_y");
        BoundingBox {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// Computes the bounding box of a non-empty slice of points.
    ///
    /// Returns `None` for an empty slice.
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::{BoundingBox, Point};
    /// assert!(BoundingBox::of_points(&[]).is_none());
    /// let bb = BoundingBox::of_points(&[Point::new(1.0, 1.0)]).unwrap();
    /// assert_eq!(bb.area(), 0.0);
    /// ```
    pub fn of_points(points: &[Point]) -> Option<Self> {
        let first = points.first()?;
        let mut bb = BoundingBox {
            min_x: first.x,
            min_y: first.y,
            max_x: first.x,
            max_y: first.y,
        };
        for p in &points[1..] {
            bb.min_x = bb.min_x.min(p.x);
            bb.min_y = bb.min_y.min(p.y);
            bb.max_x = bb.max_x.max(p.x);
            bb.max_y = bb.max_y.max(p.y);
        }
        Some(bb)
    }

    /// Width of the box.
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height of the box.
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area of the box.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Length of the diagonal — an upper bound on the diameter of the contained pointset.
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::BoundingBox;
    /// let bb = BoundingBox::new(0.0, 0.0, 3.0, 4.0);
    /// assert_eq!(bb.diagonal(), 5.0);
    /// ```
    pub fn diagonal(&self) -> f64 {
        (self.width() * self.width() + self.height() * self.height()).sqrt()
    }

    /// The centre point of the box.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// The bounding box of the segment `[a, b]` (used to index link segments
    /// in the spatial grid).
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::{BoundingBox, Point};
    /// let bb = BoundingBox::of_segment(Point::new(2.0, 0.0), Point::new(0.0, 3.0));
    /// assert_eq!(bb, BoundingBox::new(0.0, 0.0, 2.0, 3.0));
    /// ```
    pub fn of_segment(a: Point, b: Point) -> Self {
        BoundingBox {
            min_x: a.x.min(b.x),
            min_y: a.y.min(b.y),
            max_x: a.x.max(b.x),
            max_y: a.y.max(b.y),
        }
    }

    /// Whether the box contains the point `p` (boundary inclusive).
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::{BoundingBox, Point};
    /// let bb = BoundingBox::new(0.0, 0.0, 1.0, 1.0);
    /// assert!(bb.contains(Point::new(0.5, 1.0)));
    /// assert!(!bb.contains(Point::new(1.5, 0.5)));
    /// ```
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Euclidean distance from `p` to the box (zero when the box contains
    /// `p`). This lower-bounds the distance from `p` to every point inside
    /// the box, which is what makes aggregated `power / distance^α` terms
    /// over a box of senders a certified upper bound.
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::{BoundingBox, Point};
    /// let bb = BoundingBox::new(0.0, 0.0, 2.0, 1.0);
    /// assert_eq!(bb.distance_to(Point::new(1.0, 0.5)), 0.0);
    /// assert_eq!(bb.distance_to(Point::new(5.0, 5.0)), 5.0);
    /// ```
    pub fn distance_to(&self, p: Point) -> f64 {
        let dx = (self.min_x - p.x).max(p.x - self.max_x).max(0.0);
        let dy = (self.min_y - p.y).max(p.y - self.max_y).max(0.0);
        dx.hypot(dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_points_empty_is_none() {
        assert!(BoundingBox::of_points(&[]).is_none());
    }

    #[test]
    fn of_points_single() {
        let bb = BoundingBox::of_points(&[Point::new(2.0, 3.0)]).unwrap();
        assert_eq!(bb.width(), 0.0);
        assert_eq!(bb.height(), 0.0);
        assert_eq!(bb.center(), Point::new(2.0, 3.0));
    }

    #[test]
    fn of_points_spans_all() {
        let pts = [
            Point::new(-1.0, 2.0),
            Point::new(3.0, 0.0),
            Point::new(1.0, 5.0),
        ];
        let bb = BoundingBox::of_points(&pts).unwrap();
        assert_eq!(bb.min_x, -1.0);
        assert_eq!(bb.max_x, 3.0);
        assert_eq!(bb.min_y, 0.0);
        assert_eq!(bb.max_y, 5.0);
        for p in pts {
            assert!(bb.contains(p));
        }
    }

    #[test]
    #[should_panic(expected = "min_x must not exceed max_x")]
    fn new_rejects_inverted_x() {
        let _ = BoundingBox::new(1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn diagonal_and_area() {
        let bb = BoundingBox::new(0.0, 0.0, 6.0, 8.0);
        assert_eq!(bb.diagonal(), 10.0);
        assert_eq!(bb.area(), 48.0);
    }

    #[test]
    fn contains_boundary() {
        let bb = BoundingBox::new(0.0, 0.0, 1.0, 1.0);
        assert!(bb.contains(Point::new(0.0, 0.0)));
        assert!(bb.contains(Point::new(1.0, 1.0)));
    }
}
