//! Points in the Euclidean plane.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A point in the Euclidean plane.
///
/// All node positions in the aggregation library are represented with this type.
/// Coordinates are `f64`; the library never relies on exact equality of derived
/// distances, only on comparisons with explicit tolerances.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a new point at `(x, y)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::Point;
    /// let p = Point::new(1.5, -2.0);
    /// assert_eq!(p.x, 1.5);
    /// assert_eq!(p.y, -2.0);
    /// ```
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::Point;
    /// assert_eq!(Point::origin(), Point::new(0.0, 0.0));
    /// ```
    pub fn origin() -> Self {
        Point { x: 0.0, y: 0.0 }
    }

    /// Creates a point on the real line (`y = 0`), the setting of the paper's
    /// lower-bound constructions (Sec. 4).
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::Point;
    /// let p = Point::on_line(7.0);
    /// assert_eq!(p, Point::new(7.0, 0.0));
    /// ```
    pub fn on_line(x: f64) -> Self {
        Point { x, y: 0.0 }
    }

    /// Euclidean distance to another point.
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::Point;
    /// let d = Point::new(0.0, 0.0).distance(Point::new(1.0, 1.0));
    /// assert!((d - std::f64::consts::SQRT_2).abs() < 1e-12);
    /// ```
    pub fn distance(&self, other: Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to another point.
    ///
    /// Useful to avoid the square root when only comparisons are needed
    /// (e.g. inside MST construction).
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::Point;
    /// assert_eq!(Point::new(0.0, 0.0).distance_squared(Point::new(3.0, 4.0)), 25.0);
    /// ```
    pub fn distance_squared(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// The midpoint between `self` and `other`.
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::Point;
    /// let m = Point::new(0.0, 0.0).midpoint(Point::new(2.0, 4.0));
    /// assert_eq!(m, Point::new(1.0, 2.0));
    /// ```
    pub fn midpoint(&self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Scales the point's coordinates by `factor` (about the origin).
    ///
    /// Used by the recursive lower-bound construction of the paper (Fig. 3),
    /// where copies of an instance are scaled before concatenation.
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::Point;
    /// assert_eq!(Point::new(1.0, 2.0).scaled(3.0), Point::new(3.0, 6.0));
    /// ```
    pub fn scaled(&self, factor: f64) -> Point {
        Point::new(self.x * factor, self.y * factor)
    }

    /// Translates the point by `(dx, dy)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::Point;
    /// assert_eq!(Point::new(1.0, 2.0).translated(1.0, -1.0), Point::new(2.0, 1.0));
    /// ```
    pub fn translated(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Distance from this point to the segment `[a, b]`.
    ///
    /// This is the building block for the link-to-link distance `d(i, j)` used by
    /// the conflict graphs of the paper (the minimum distance between any point of
    /// one link segment and any point of the other).
    ///
    /// # Examples
    ///
    /// ```
    /// use wagg_geometry::Point;
    /// let p = Point::new(1.0, 1.0);
    /// let d = p.distance_to_segment(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
    /// assert!((d - 1.0).abs() < 1e-12);
    /// ```
    pub fn distance_to_segment(&self, a: Point, b: Point) -> f64 {
        let len_sq = a.distance_squared(b);
        if len_sq == 0.0 {
            return self.distance(a);
        }
        // Project onto the segment, clamping to [0, 1].
        let t = ((self.x - a.x) * (b.x - a.x) + (self.y - a.y) * (b.y - a.y)) / len_sq;
        let t = t.clamp(0.0, 1.0);
        let proj = Point::new(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y));
        self.distance(proj)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from(value: (f64, f64)) -> Self {
        Point::new(value.0, value.1)
    }
}

/// Minimum distance between two closed segments `[a1, b1]` and `[a2, b2]`.
///
/// This is exactly the quantity `d(i, j)` from the paper: the smallest distance
/// between any point of link `i` (viewed as a segment between its sender and
/// receiver) and any point of link `j`. If the segments intersect the distance
/// is zero.
///
/// # Examples
///
/// ```
/// use wagg_geometry::{Point, point::segment_distance};
///
/// let d = segment_distance(
///     Point::new(0.0, 0.0), Point::new(1.0, 0.0),
///     Point::new(3.0, 0.0), Point::new(4.0, 0.0),
/// );
/// assert!((d - 2.0).abs() < 1e-12);
/// ```
pub fn segment_distance(a1: Point, b1: Point, a2: Point, b2: Point) -> f64 {
    if segments_intersect(a1, b1, a2, b2) {
        return 0.0;
    }
    let d1 = a1.distance_to_segment(a2, b2);
    let d2 = b1.distance_to_segment(a2, b2);
    let d3 = a2.distance_to_segment(a1, b1);
    let d4 = b2.distance_to_segment(a1, b1);
    d1.min(d2).min(d3).min(d4)
}

/// Orientation of the ordered triple `(p, q, r)`.
///
/// Returns a positive value for counter-clockwise, negative for clockwise and zero
/// for collinear points (within floating point accuracy).
fn orientation(p: Point, q: Point, r: Point) -> f64 {
    (q.x - p.x) * (r.y - p.y) - (q.y - p.y) * (r.x - p.x)
}

fn on_segment(p: Point, q: Point, r: Point) -> bool {
    q.x <= p.x.max(r.x) && q.x >= p.x.min(r.x) && q.y <= p.y.max(r.y) && q.y >= p.y.min(r.y)
}

/// Whether the closed segments `[p1, q1]` and `[p2, q2]` intersect.
///
/// # Examples
///
/// ```
/// use wagg_geometry::{Point, point::segments_intersect};
///
/// assert!(segments_intersect(
///     Point::new(0.0, 0.0), Point::new(2.0, 2.0),
///     Point::new(0.0, 2.0), Point::new(2.0, 0.0),
/// ));
/// assert!(!segments_intersect(
///     Point::new(0.0, 0.0), Point::new(1.0, 0.0),
///     Point::new(2.0, 0.0), Point::new(3.0, 0.0),
/// ));
/// ```
pub fn segments_intersect(p1: Point, q1: Point, p2: Point, q2: Point) -> bool {
    let o1 = orientation(p1, q1, p2);
    let o2 = orientation(p1, q1, q2);
    let o3 = orientation(p2, q2, p1);
    let o4 = orientation(p2, q2, q1);

    if (o1 > 0.0) != (o2 > 0.0)
        && (o3 > 0.0) != (o4 > 0.0)
        && o1 != 0.0
        && o2 != 0.0
        && o3 != 0.0
        && o4 != 0.0
    {
        return true;
    }
    // Collinear special cases.
    (o1 == 0.0 && on_segment(p1, p2, q1))
        || (o2 == 0.0 && on_segment(p1, q2, q1))
        || (o3 == 0.0 && on_segment(p2, p1, q2))
        || (o4 == 0.0 && on_segment(p2, q1, q2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 5.5);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn distance_345() {
        assert_eq!(Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(3.2, -1.1);
        assert_eq!(p.distance(p), 0.0);
    }

    #[test]
    fn midpoint_of_opposite_points_is_origin() {
        let a = Point::new(2.0, -4.0);
        let b = Point::new(-2.0, 4.0);
        assert_eq!(a.midpoint(b), Point::origin());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(0.5, -0.25);
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn scaled_and_translated() {
        let p = Point::new(1.0, -1.0);
        assert_eq!(p.scaled(2.0), Point::new(2.0, -2.0));
        assert_eq!(p.translated(1.0, 1.0), Point::new(2.0, 0.0));
    }

    #[test]
    fn point_from_tuple() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p, Point::new(1.0, 2.0));
    }

    #[test]
    fn display_format() {
        assert_eq!(Point::new(1.0, 2.5).to_string(), "(1, 2.5)");
    }

    #[test]
    fn distance_to_degenerate_segment() {
        let p = Point::new(1.0, 1.0);
        let a = Point::new(0.0, 0.0);
        assert_eq!(p.distance_to_segment(a, a), p.distance(a));
    }

    #[test]
    fn distance_to_segment_interior_projection() {
        let p = Point::new(5.0, 3.0);
        let d = p.distance_to_segment(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert!((d - 3.0).abs() < 1e-12);
    }

    #[test]
    fn distance_to_segment_clamps_to_endpoint() {
        let p = Point::new(-4.0, 3.0);
        let d = p.distance_to_segment(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn segment_distance_parallel() {
        let d = segment_distance(
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 2.0),
            Point::new(1.0, 2.0),
        );
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn segment_distance_crossing_is_zero() {
        let d = segment_distance(
            Point::new(0.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(2.0, 0.0),
        );
        assert_eq!(d, 0.0);
    }

    #[test]
    fn segment_distance_shared_endpoint_is_zero() {
        let d = segment_distance(
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 5.0),
        );
        assert_eq!(d, 0.0);
    }

    #[test]
    fn collinear_overlapping_segments_intersect() {
        assert!(segments_intersect(
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(3.0, 0.0),
        ));
    }

    #[test]
    fn collinear_disjoint_segments_do_not_intersect() {
        assert!(!segments_intersect(
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0),
        ));
    }

    #[test]
    fn segment_distance_on_line_adjacent_links() {
        // Two collinear line links separated by a gap, as in the paper's
        // line constructions.
        let d = segment_distance(
            Point::on_line(0.0),
            Point::on_line(1.0),
            Point::on_line(4.0),
            Point::on_line(9.0),
        );
        assert!((d - 3.0).abs() < 1e-12);
    }
}
