//! Level-stacked grid geometry: the cell → super-cell pyramid under
//! hierarchical far-field aggregation.
//!
//! A [`GridPyramid`] stacks coarsening levels on top of a finest `cols ×
//! rows` grid of square cells: every level halves the cell count per axis
//! (rounding up), so level `L` cells have side `2^L` times the finest side
//! and each covers up to four children of level `L - 1`. The pyramid owns
//! only the **geometry** — level shapes, flat cell indexing across levels,
//! child/parent traversal, nominal boxes and point-to-box distances at every
//! level; consumers attach their own per-cell aggregates (power sums, tight
//! bounding boxes) to the flat index space.
//!
//! This is the index structure behind the hierarchical
//! `wagg_partition::AffectanceVerifier`: a far-field query descends the
//! pyramid, pricing whole super-cells by one point-to-box distance each and
//! expanding only the cells too close for their aggregate bound to certify.
//! It lives here, next to [`TileLayout`](crate::tiling::TileLayout), so
//! engine and scheduler layers share one definition of the stacked box
//! geometry.
//!
//! # Examples
//!
//! ```
//! use wagg_geometry::pyramid::GridPyramid;
//! use wagg_geometry::Point;
//!
//! // An 8x6 finest grid of unit cells, fully coarsened (8x6 → 4x3 → 2x2 → 1x1).
//! let pyr = GridPyramid::build(0.0, 0.0, 1.0, 8, 6, usize::MAX);
//! assert_eq!(pyr.depth(), 4);
//! assert_eq!(pyr.shape(0), (8, 6));
//! assert_eq!(pyr.shape(3), (1, 1));
//! // A level-1 cell covers its four finest children.
//! let kids: Vec<_> = pyr.children(1, 1, 1).collect();
//! assert_eq!(kids, vec![(2, 2), (3, 2), (2, 3), (3, 3)]);
//! assert_eq!(pyr.parent(0, 3, 2), (1, 1));
//! ```

use crate::{BoundingBox, Point};

/// The shape of one pyramid level and where its cells live in the flat
/// cross-level index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PyramidLevel {
    /// Cell columns at this level.
    cols: usize,
    /// Cell rows at this level.
    rows: usize,
    /// Index of this level's cell `(0, 0)` in the flat index space.
    offset: usize,
}

/// A stack of coarsening square grids over one rectangular extent (see the
/// [module docs](self)).
///
/// Level 0 is the finest grid; every higher level halves the per-axis cell
/// count (rounding up) and doubles the cell side. The layout is a pure
/// function of its inputs, so serial and parallel consumers agree.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPyramid {
    /// Lower-left corner of finest cell `(0, 0)`.
    min_x: f64,
    /// Lower-left corner of finest cell `(0, 0)`.
    min_y: f64,
    /// Finest cell side length.
    cell: f64,
    /// Level shapes, finest first.
    levels: Vec<PyramidLevel>,
}

impl GridPyramid {
    /// Builds the pyramid over a finest grid of `cols × rows` cells of side
    /// `cell` anchored at `(min_x, min_y)`, stacking at most `depth` levels
    /// (clamped to [`GridPyramid::natural_depth`]; a `depth` of 1 keeps only
    /// the finest grid, `usize::MAX` coarsens all the way to a single cell).
    ///
    /// # Panics
    ///
    /// Panics when `cols == 0`, `rows == 0`, `depth == 0`, or `cell` is not
    /// positive and finite.
    pub fn build(
        min_x: f64,
        min_y: f64,
        cell: f64,
        cols: usize,
        rows: usize,
        depth: usize,
    ) -> Self {
        assert!(cols > 0 && rows > 0, "the finest grid must be non-empty");
        assert!(depth > 0, "a pyramid has at least its finest level");
        assert!(
            cell > 0.0 && cell.is_finite(),
            "cell side must be positive and finite"
        );
        let depth = depth.min(Self::natural_depth(cols, rows));
        let mut levels = Vec::with_capacity(depth);
        let (mut c, mut r, mut offset) = (cols, rows, 0usize);
        for _ in 0..depth {
            levels.push(PyramidLevel {
                cols: c,
                rows: r,
                offset,
            });
            offset += c * r;
            c = c.div_ceil(2);
            r = r.div_ceil(2);
        }
        GridPyramid {
            min_x,
            min_y,
            cell,
            levels,
        }
    }

    /// The number of levels a full coarsening of a `cols × rows` grid needs
    /// to reach a single cell: 1 + ⌈log₂ max(cols, rows)⌉.
    pub fn natural_depth(cols: usize, rows: usize) -> usize {
        let mut side = cols.max(rows).max(1);
        let mut depth = 1;
        while side > 1 {
            side = side.div_ceil(2);
            depth += 1;
        }
        depth
    }

    /// Number of levels (≥ 1; level 0 is the finest).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// `(cols, rows)` of `level`.
    pub fn shape(&self, level: usize) -> (usize, usize) {
        let l = &self.levels[level];
        (l.cols, l.rows)
    }

    /// Total number of cells across all levels (the flat index space).
    pub fn total_cells(&self) -> usize {
        let last = self.levels.last().expect("at least one level");
        last.offset + last.cols * last.rows
    }

    /// The flat cross-level index of cell `(c, r)` at `level` — stable across
    /// queries, dense in `0..total_cells()`.
    #[inline]
    pub fn index(&self, level: usize, c: usize, r: usize) -> usize {
        let l = &self.levels[level];
        debug_assert!(c < l.cols && r < l.rows, "cell out of range");
        l.offset + r * l.cols + c
    }

    /// Cell side length at `level` (`cell · 2^level`).
    #[inline]
    pub fn side(&self, level: usize) -> f64 {
        self.cell * (1u64 << level.min(63)) as f64
    }

    /// The finest-grid cell containing `p`, clamped to the grid so every
    /// finite point maps to a cell.
    #[inline]
    pub fn cell_of(&self, p: Point) -> (usize, usize) {
        let l = &self.levels[0];
        let c = (((p.x - self.min_x) / self.cell).floor().max(0.0) as usize).min(l.cols - 1);
        let r = (((p.y - self.min_y) / self.cell).floor().max(0.0) as usize).min(l.rows - 1);
        (c, r)
    }

    /// The parent coordinates (at `level + 1`) of cell `(c, r)` at `level`.
    ///
    /// # Panics
    ///
    /// Panics when `level` is the top level.
    #[inline]
    pub fn parent(&self, level: usize, c: usize, r: usize) -> (usize, usize) {
        assert!(level + 1 < self.levels.len(), "the top level has no parent");
        (c / 2, r / 2)
    }

    /// The children (at `level - 1`, row-major) of cell `(c, r)` at `level` —
    /// up to four, clipped at the grid border.
    ///
    /// # Panics
    ///
    /// Panics when `level == 0`.
    pub fn children(
        &self,
        level: usize,
        c: usize,
        r: usize,
    ) -> impl Iterator<Item = (usize, usize)> + '_ {
        assert!(level > 0, "the finest level has no children");
        let child = &self.levels[level - 1];
        let (cols, rows) = (child.cols, child.rows);
        (0..2usize).flat_map(move |dr| {
            (0..2usize).filter_map(move |dc| {
                let (cc, cr) = (2 * c + dc, 2 * r + dr);
                (cc < cols && cr < rows).then_some((cc, cr))
            })
        })
    }

    /// The nominal box of cell `(c, r)` at `level` (border cells may extend
    /// past the anchored extent; contained points may have been clamped in
    /// from outside).
    pub fn cell_box(&self, level: usize, c: usize, r: usize) -> BoundingBox {
        let side = self.side(level);
        BoundingBox::new(
            self.min_x + c as f64 * side,
            self.min_y + r as f64 * side,
            self.min_x + (c + 1) as f64 * side,
            self.min_y + (r + 1) as f64 * side,
        )
    }

    /// Euclidean distance from `p` to the nominal box of cell `(c, r)` at
    /// `level` (zero when the box contains `p`) — a sound per-level
    /// point-to-box bound for consumers that price by nominal cell geometry.
    /// (The partition verifier prices by the *tight* bounding box of each
    /// cell's actual senders via [`BoundingBox::distance_to`], which is
    /// strictly sharper; this nominal form needs no per-cell aggregates.)
    pub fn distance_to_cell(&self, level: usize, c: usize, r: usize, p: Point) -> f64 {
        self.cell_box(level, c, r).distance_to(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_depth_reaches_a_single_cell() {
        assert_eq!(GridPyramid::natural_depth(1, 1), 1);
        assert_eq!(GridPyramid::natural_depth(2, 1), 2);
        assert_eq!(GridPyramid::natural_depth(5, 3), 4);
        assert_eq!(GridPyramid::natural_depth(1024, 1024), 11);
        let pyr = GridPyramid::build(0.0, 0.0, 1.0, 5, 3, usize::MAX);
        assert_eq!(pyr.shape(pyr.depth() - 1), (1, 1));
    }

    #[test]
    fn depth_is_clamped_and_levels_halve() {
        let pyr = GridPyramid::build(0.0, 0.0, 2.0, 7, 4, 99);
        assert_eq!(pyr.depth(), GridPyramid::natural_depth(7, 4));
        assert_eq!(pyr.shape(0), (7, 4));
        assert_eq!(pyr.shape(1), (4, 2));
        assert_eq!(pyr.shape(2), (2, 1));
        assert_eq!(pyr.shape(3), (1, 1));
        assert_eq!(pyr.total_cells(), 7 * 4 + 4 * 2 + 2 + 1);
        assert_eq!(pyr.side(0), 2.0);
        assert_eq!(pyr.side(2), 8.0);
    }

    #[test]
    fn flat_indices_are_dense_and_unique() {
        let pyr = GridPyramid::build(-3.0, 1.0, 0.5, 6, 5, usize::MAX);
        let mut seen = vec![false; pyr.total_cells()];
        for level in 0..pyr.depth() {
            let (cols, rows) = pyr.shape(level);
            for r in 0..rows {
                for c in 0..cols {
                    let i = pyr.index(level, c, r);
                    assert!(!seen[i], "index {i} reused");
                    seen[i] = true;
                }
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn children_partition_their_parent() {
        let pyr = GridPyramid::build(0.0, 0.0, 1.0, 5, 5, usize::MAX);
        for level in 1..pyr.depth() {
            let (cols, rows) = pyr.shape(level);
            let (ccols, crows) = pyr.shape(level - 1);
            let mut covered = vec![false; ccols * crows];
            for r in 0..rows {
                for c in 0..cols {
                    for (cc, cr) in pyr.children(level, c, r) {
                        assert_eq!(pyr.parent(level - 1, cc, cr), (c, r));
                        let i = cr * ccols + cc;
                        assert!(!covered[i], "child ({cc},{cr}) claimed twice");
                        covered[i] = true;
                        // The child's box is inside the parent's box.
                        let pb = pyr.cell_box(level, c, r);
                        let cb = pyr.cell_box(level - 1, cc, cr);
                        assert!(pb.min_x <= cb.min_x + 1e-12 && cb.max_x <= pb.max_x + 1e-12);
                        assert!(pb.min_y <= cb.min_y + 1e-12 && cb.max_y <= pb.max_y + 1e-12);
                    }
                }
            }
            assert!(covered.into_iter().all(|s| s), "level {level} has orphans");
        }
    }

    #[test]
    fn cell_of_clamps_and_boxes_contain_interior_points() {
        let pyr = GridPyramid::build(0.0, 0.0, 1.0, 4, 4, 2);
        assert_eq!(pyr.cell_of(Point::new(-5.0, -5.0)), (0, 0));
        assert_eq!(pyr.cell_of(Point::new(9.0, 9.0)), (3, 3));
        let (c, r) = pyr.cell_of(Point::new(2.5, 1.5));
        assert_eq!((c, r), (2, 1));
        assert!(pyr.cell_box(0, c, r).contains(Point::new(2.5, 1.5)));
        assert_eq!(pyr.distance_to_cell(0, c, r, Point::new(2.5, 1.5)), 0.0);
    }

    #[test]
    fn point_to_cell_distance_lower_bounds_member_distances() {
        let pyr = GridPyramid::build(0.0, 0.0, 1.0, 8, 8, usize::MAX);
        let q = Point::new(-2.0, 3.5);
        for level in 0..pyr.depth() {
            let (cols, rows) = pyr.shape(level);
            for r in 0..rows {
                for c in 0..cols {
                    let b = pyr.cell_box(level, c, r);
                    let d = pyr.distance_to_cell(level, c, r, q);
                    // Corners of the box are at least d away.
                    for (x, y) in [
                        (b.min_x, b.min_y),
                        (b.max_x, b.min_y),
                        (b.min_x, b.max_y),
                        (b.max_x, b.max_y),
                    ] {
                        assert!(q.distance(Point::new(x, y)) >= d - 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least its finest level")]
    fn zero_depth_is_rejected() {
        let _ = GridPyramid::build(0.0, 0.0, 1.0, 2, 2, 0);
    }
}
