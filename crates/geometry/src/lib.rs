//! Planar geometry and numeric utilities underlying the wireless aggregation library.
//!
//! This crate is the bottom layer of the workspace reproducing
//! *"Wireless Aggregation at Nearly Constant Rate"* (Halldórsson & Tonoyan, ICDCS 2018).
//! It provides:
//!
//! * [`Point`] — points in the Euclidean plane with exact-enough `f64` arithmetic,
//! * [`BoundingBox`] — axis-aligned bounding boxes of pointsets,
//! * [`UniformGrid`] — a uniform spatial hash over bounding boxes with
//!   radius-bounded candidate queries, the index behind the fast conflict-graph
//!   construction in `wagg-conflict`,
//! * [`tiling::TileLayout`] — deterministic rectangular tilings with
//!   halo-overlap queries, the domain decomposition behind the sharded
//!   scheduler in `wagg-partition`,
//! * [`pyramid::GridPyramid`] — level-stacked cell → super-cell grids
//!   (child/parent indexing, per-level point-to-box distances), the geometry
//!   under hierarchical far-field aggregation in `wagg-partition`'s
//!   certified slot verifier,
//! * length-diversity computations ([`diversity::length_diversity`]) — the parameter `Δ`
//!   that all of the paper's bounds are phrased in,
//! * the slow-growing functions `log*` and `log log` ([`logmath`]) used to state the
//!   paper's schedule-length bounds, and
//! * deterministic random number helpers ([`rng`]) so that every experiment in the
//!   benchmark harness is reproducible.
//!
//! # Examples
//!
//! ```
//! use wagg_geometry::{Point, diversity::length_diversity, logmath::log_star};
//!
//! let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(5.0, 0.0)];
//! let delta = length_diversity(&pts).unwrap();
//! assert!((delta - 5.0).abs() < 1e-12);
//! assert_eq!(log_star(65536.0), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bbox;
pub mod diversity;
pub mod grid;
pub mod logmath;
pub mod point;
pub mod pyramid;
pub mod rng;
pub mod tiling;

pub use bbox::BoundingBox;
pub use grid::UniformGrid;
pub use point::Point;
