//! Protocol-model (graph-based) interference baselines.
//!
//! The paper's related work measures aggregation capacity in the *protocol model*:
//! a transmission succeeds iff no other sender transmits within an interference
//! range of the receiver. This crate provides that model and the schedulers built
//! on it, as the baselines the physical-model results are compared against:
//!
//! * [`ProtocolModel`] — conflict test between links with a configurable
//!   interference-range factor,
//! * [`schedule_protocol`] — greedy length-ordered coloring of the protocol conflict
//!   graph (the analogue of the paper's scheduling algorithm without power control),
//! * [`round_robin_slots`] — the trivial `1/n`-rate TDMA baseline.
//!
//! On exponential chains the protocol model needs `Θ(n)` slots, while the physical
//! model with power control needs only `O(log* Δ)` — the separation that motivates
//! the paper (experiment E9).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use serde::{Deserialize, Serialize};
use std::fmt;
use wagg_sinr::link::indices_by_decreasing_length;
use wagg_sinr::Link;

/// The protocol model of interference.
///
/// Link `j` interferes with link `i` if the sender of `j` lies within
/// `interference_factor × l_j` of the receiver of `i` (or the links share an
/// endpoint). Two links conflict when either interferes with the other; a feasible
/// slot is a set of pairwise non-conflicting links.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_sinr::Link;
/// use wagg_protocol::ProtocolModel;
///
/// let model = ProtocolModel::default();
/// let a = Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0));
/// let b = Link::new(1, Point::new(2.0, 0.0), Point::new(3.0, 0.0));
/// let far = Link::new(2, Point::new(50.0, 0.0), Point::new(51.0, 0.0));
/// assert!(model.conflict(&a, &b));
/// assert!(!model.conflict(&a, &far));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolModel {
    /// The interference range of a sender, as a multiple of its own link length.
    pub interference_factor: f64,
}

impl ProtocolModel {
    /// Creates a protocol model with the given interference-range factor.
    ///
    /// # Panics
    ///
    /// Panics unless `interference_factor >= 1` (an interference range below the
    /// communication range is physically meaningless).
    pub fn new(interference_factor: f64) -> Self {
        assert!(
            interference_factor >= 1.0,
            "interference factor must be at least 1"
        );
        ProtocolModel {
            interference_factor,
        }
    }

    /// Whether `source` interferes with (blocks) the reception of `target`.
    pub fn interferes(&self, source: &Link, target: &Link) -> bool {
        if source.id == target.id {
            return false;
        }
        let range = self.interference_factor * source.length();
        source.sender_to_receiver_distance(target) <= range
    }

    /// Whether two links conflict (cannot share a slot): either interferes with the
    /// other, or they share an endpoint.
    pub fn conflict(&self, a: &Link, b: &Link) -> bool {
        if a.id == b.id {
            return false;
        }
        a.shares_endpoint(b) || self.interferes(a, b) || self.interferes(b, a)
    }

    /// Whether a set of links forms a feasible protocol-model slot.
    pub fn slot_feasible(&self, links: &[Link]) -> bool {
        for (i, a) in links.iter().enumerate() {
            for b in &links[i + 1..] {
                if self.conflict(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

impl Default for ProtocolModel {
    /// Interference range twice the communication range, a standard choice.
    fn default() -> Self {
        ProtocolModel {
            interference_factor: 2.0,
        }
    }
}

impl fmt::Display for ProtocolModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "protocol model (interference factor {})",
            self.interference_factor
        )
    }
}

/// Greedy length-ordered coloring of the protocol-model conflict graph, returning the
/// slots (each a list of indices into `links`).
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_sinr::Link;
/// use wagg_protocol::{schedule_protocol, ProtocolModel};
///
/// let links = vec![
///     Link::new(0, Point::new(0.0, 0.0), Point::new(1.0, 0.0)),
///     Link::new(1, Point::new(100.0, 0.0), Point::new(101.0, 0.0)),
/// ];
/// let slots = schedule_protocol(&links, ProtocolModel::default());
/// assert_eq!(slots.len(), 1);
/// ```
pub fn schedule_protocol(links: &[Link], model: ProtocolModel) -> Vec<Vec<usize>> {
    let order = indices_by_decreasing_length(links);
    let mut slots: Vec<Vec<usize>> = Vec::new();
    for &idx in &order {
        let mut placed = false;
        for slot in slots.iter_mut() {
            let compatible = slot
                .iter()
                .all(|&other| !model.conflict(&links[idx], &links[other]));
            if compatible {
                slot.push(idx);
                placed = true;
                break;
            }
        }
        if !placed {
            slots.push(vec![idx]);
        }
    }
    slots
}

/// The trivial TDMA baseline: one link per slot.
pub fn round_robin_slots(links: &[Link]) -> Vec<Vec<usize>> {
    (0..links.len()).map(|i| vec![i]).collect()
}

/// Verifies that every slot is feasible in the protocol model and the slots partition
/// the link set.
pub fn verify_protocol_schedule(
    links: &[Link],
    slots: &[Vec<usize>],
    model: ProtocolModel,
) -> bool {
    let mut seen = vec![false; links.len()];
    for slot in slots {
        let slot_links: Vec<Link> = slot.iter().map(|&i| links[i]).collect();
        if !model.slot_feasible(&slot_links) {
            return false;
        }
        for &i in slot {
            if seen[i] {
                return false;
            }
            seen[i] = true;
        }
    }
    seen.into_iter().all(|s| s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_geometry::Point;
    use wagg_instances::chains::{exponential_chain, uniform_chain};
    use wagg_instances::random::grid;

    fn line_link(id: usize, s: f64, r: f64) -> Link {
        Link::new(id, Point::on_line(s), Point::on_line(r))
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_small_interference_factor() {
        let _ = ProtocolModel::new(0.5);
    }

    #[test]
    fn conflict_is_symmetric_and_irreflexive() {
        let model = ProtocolModel::default();
        let a = line_link(0, 0.0, 1.0);
        let b = line_link(1, 1.5, 2.5);
        assert!(!model.conflict(&a, &a));
        assert_eq!(model.conflict(&a, &b), model.conflict(&b, &a));
    }

    #[test]
    fn shared_endpoint_always_conflicts() {
        let model = ProtocolModel::new(1.0);
        let a = line_link(0, 0.0, 1.0);
        let b = line_link(1, 1.0, 2.0);
        assert!(model.conflict(&a, &b));
    }

    #[test]
    fn long_link_interferes_far_away() {
        let model = ProtocolModel::default();
        let long = line_link(0, 0.0, 100.0);
        let short = line_link(1, 150.0, 151.0);
        // The long link's sender (interference range 200) reaches the short receiver.
        assert!(model.interferes(&long, &short));
        // The short link's sender does not reach the long receiver.
        assert!(!model.interferes(&short, &long));
        assert!(model.conflict(&long, &short));
    }

    #[test]
    fn schedule_partitions_and_verifies() {
        let inst = grid(5, 5, 1.0);
        let links = inst.mst_links().unwrap();
        let model = ProtocolModel::default();
        let slots = schedule_protocol(&links, model);
        assert!(verify_protocol_schedule(&links, &slots, model));
        // A unit grid schedules in a constant number of protocol slots.
        assert!(slots.len() <= 12, "{} slots", slots.len());
    }

    #[test]
    fn uniform_chain_constant_slots_exponential_chain_linear_slots() {
        let model = ProtocolModel::default();
        let uniform = uniform_chain(16, 1.0).mst_links().unwrap();
        let uniform_slots = schedule_protocol(&uniform, model);
        assert!(uniform_slots.len() <= 6);

        let expo = exponential_chain(12, 2.0).unwrap().mst_links().unwrap();
        let expo_slots = schedule_protocol(&expo, model);
        // Every shorter link lies inside a longer link's interference range:
        // the protocol model degenerates to (almost) one link per slot.
        assert!(
            expo_slots.len() >= expo.len() / 2,
            "only {} slots for {} links",
            expo_slots.len(),
            expo.len()
        );
        assert!(verify_protocol_schedule(&expo, &expo_slots, model));
    }

    #[test]
    fn round_robin_is_always_valid() {
        let links = exponential_chain(10, 2.0).unwrap().mst_links().unwrap();
        let slots = round_robin_slots(&links);
        assert_eq!(slots.len(), links.len());
        assert!(verify_protocol_schedule(
            &links,
            &slots,
            ProtocolModel::default()
        ));
    }

    #[test]
    fn verify_detects_bad_schedules() {
        let model = ProtocolModel::default();
        let links = vec![line_link(0, 0.0, 1.0), line_link(1, 1.5, 2.5)];
        // Conflicting links in one slot.
        assert!(!verify_protocol_schedule(&links, &[vec![0, 1]], model));
        // Missing link.
        assert!(!verify_protocol_schedule(&links, &[vec![0]], model));
        // Duplicate link.
        assert!(!verify_protocol_schedule(
            &links,
            &[vec![0], vec![0], vec![1]],
            model
        ));
    }

    #[test]
    fn larger_interference_factor_never_shortens_schedules() {
        let links = grid(4, 4, 1.0).mst_links().unwrap();
        let small = schedule_protocol(&links, ProtocolModel::new(1.0)).len();
        let large = schedule_protocol(&links, ProtocolModel::new(3.0)).len();
        assert!(large >= small);
    }

    #[test]
    fn display_mentions_factor() {
        assert!(ProtocolModel::new(2.5).to_string().contains("2.5"));
    }
}
