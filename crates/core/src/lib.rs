//! # Wireless Aggregation at Nearly Constant Rate
//!
//! An implementation of the aggregation-scheduling system of
//! *"Wireless Aggregation at Nearly Constant Rate"* (Halldórsson & Tonoyan,
//! ICDCS 2018): given the positions of wireless sensor nodes and a sink, build the
//! minimum spanning tree, choose transmission powers, and compute a short TDMA
//! schedule of the tree's links under the physical (SINR) model of interference.
//!
//! The headline guarantees reproduced by this workspace:
//!
//! * with **global power control**, the MST schedules in `O(log* Δ)` slots
//!   (aggregation rate `Ω(1/log* Δ)`),
//! * with an **oblivious power scheme** `P_τ`, it schedules in `O(log log Δ)` slots,
//! * **without power control**, worst-case instances force `Θ(n)` slots,
//! * and both positive bounds are tight (Sec. 4 of the paper).
//!
//! # One scheduling surface
//!
//! Everything schedules through the [`session`] facade
//! ([`SessionBuilder`] → [`Session`] → [`SolveReport`]): one builder folds
//! the scheduler core (SINR model, power mode), the incremental engine's
//! tuning and the sharded pipeline's knobs into a layered [`SessionConfig`],
//! and [`Backend::Auto`] picks the execution strategy — from-scratch static
//! kernel, incrementally maintained interference engine, or spatially
//! sharded pipeline — from the instance itself (size, churn expectation,
//! partition hints). Every backend returns the same [`SolveReport`] and is
//! slot-for-slot identical to the legacy entry point it wraps (the
//! differential suite in `wagg-session` pins this).
//!
//! ```
//! use wagg_core::{Backend, Session};
//! use wagg_core::geometry::Point;
//! use wagg_core::sinr::Link;
//!
//! let links: Vec<Link> = (0..40)
//!     .map(|i| {
//!         let x = (i % 8) as f64 * 7.0;
//!         let y = (i / 8) as f64 * 7.0;
//!         Link::new(i, Point::new(x, y), Point::new(x + 1.0, y))
//!     })
//!     .collect();
//! // `Backend::Auto` resolves to the static kernel at this size; flip to
//! // `Backend::Engine` for churn workloads or `Backend::Sharded` at scale.
//! let mut session = Session::builder().backend(Backend::Auto).links(&links).build();
//! let report = session.solve();
//! assert!(report.schedule().is_partition(links.len()));
//! println!("{}", report.summary());
//! ```
//!
//! For the paper's end-to-end pipeline (points → MST → schedule), the
//! [`AggregationProblem`] one-stop API drives the same session under the
//! hood:
//!
//! ```
//! use wagg_core::{AggregationProblem, PowerMode};
//! use wagg_core::instances::random::uniform_square;
//!
//! // Deploy 100 sensors uniformly at random and aggregate at node 0.
//! let deployment = uniform_square(100, 500.0, 42);
//! let problem = AggregationProblem::from_instance(&deployment)
//!     .with_power_mode(PowerMode::GlobalControl);
//! let solution = problem.solve().unwrap();
//!
//! // The schedule is a genuine partition of the MST's links into SINR-feasible slots.
//! assert_eq!(solution.links.len(), 99);
//! assert!(solution.report.schedule().is_partition(99));
//! // Near-constant rate: a handful of slots despite 100 nodes.
//! assert!(solution.slots() <= 16);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use wagg_aggfn as aggfn;
pub use wagg_conflict as conflict;
pub use wagg_distributed as distributed;
pub use wagg_dynamic as dynamic;
pub use wagg_engine as engine;
pub use wagg_fading as fading;
pub use wagg_geometry as geometry;
pub use wagg_instances as instances;
pub use wagg_latency as latency;
pub use wagg_mst as mst;
pub use wagg_multihop as multihop;
pub use wagg_obs as obs;
pub use wagg_partition as partition;
pub use wagg_protocol as protocol;
pub use wagg_schedule as schedule;
pub use wagg_service as service;
pub use wagg_session as session;
pub use wagg_sim as sim;
pub use wagg_sinr as sinr;
pub use wagg_wire as wire;

pub use wagg_geometry::Point;
pub use wagg_instances::Instance;
pub use wagg_obs::{
    FlightRecorder, HealthConfig, HealthReport, HealthSignal, Metrics, Recorder, SeriesKind,
    SignalKind, SolveSample, TelemetryConfig,
};
pub use wagg_schedule::{
    BackendKind, PowerMode, RepairDecision, RepairStats, Schedule, ScheduleReport, SchedulerConfig,
    ShardingStats, SolveReport,
};
pub use wagg_service::{
    Request, Response, SchedulerService, ServiceConfig, ServiceError, ServiceHealth, SessionId,
};
pub use wagg_session::{
    Backend, PartitionHints, RepairPolicy, SchedulerBackend, Session, SessionBuilder,
    SessionConfig, SessionError, SessionStats,
};
pub use wagg_sinr::{Link, PowerAssignment, SinrModel};
pub use wagg_wire::{DecodeError, EncodeError, Frame, FrameKind};

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use wagg_sim::{ConvergecastSim, SimConfig, SimReport};

/// Errors returned by the umbrella API.
#[derive(Debug)]
#[non_exhaustive]
pub enum AggregationError {
    /// Building or orienting the MST failed (degenerate pointset, bad sink index).
    Tree(wagg_mst::MstError),
    /// The convergecast simulation could not be assembled.
    Simulation(wagg_sim::SimError),
}

impl fmt::Display for AggregationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregationError::Tree(e) => write!(f, "tree construction failed: {e}"),
            AggregationError::Simulation(e) => write!(f, "simulation setup failed: {e}"),
        }
    }
}

impl Error for AggregationError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AggregationError::Tree(e) => Some(e),
            AggregationError::Simulation(e) => Some(e),
        }
    }
}

impl From<wagg_mst::MstError> for AggregationError {
    fn from(e: wagg_mst::MstError) -> Self {
        AggregationError::Tree(e)
    }
}

impl From<wagg_sim::SimError> for AggregationError {
    fn from(e: wagg_sim::SimError) -> Self {
        AggregationError::Simulation(e)
    }
}

/// An aggregation problem: a pointset, a sink, and the scheduling configuration.
///
/// Construct with [`AggregationProblem::new`] or [`AggregationProblem::from_instance`],
/// adjust with the builder-style `with_*` methods, then call
/// [`AggregationProblem::solve`] — which schedules the oriented MST through
/// the [`session`] facade ([`Backend::Auto`] by default, overridable with
/// [`AggregationProblem::with_backend`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregationProblem {
    points: Vec<Point>,
    sink: usize,
    config: SchedulerConfig,
    backend: Backend,
}

impl AggregationProblem {
    /// Creates a problem from raw node positions and a sink index, with the default
    /// configuration (global power control, default SINR model, slot verification on,
    /// automatic backend selection).
    ///
    /// # Panics
    ///
    /// Panics if `sink` is out of range.
    pub fn new(points: Vec<Point>, sink: usize) -> Self {
        assert!(sink < points.len(), "sink index out of range");
        AggregationProblem {
            points,
            sink,
            config: SchedulerConfig::default(),
            backend: Backend::Auto,
        }
    }

    /// Creates a problem from a named [`Instance`].
    pub fn from_instance(instance: &Instance) -> Self {
        AggregationProblem::new(instance.points.clone(), instance.sink)
    }

    /// Sets the power-control mode (keeping the rest of the configuration).
    pub fn with_power_mode(mut self, mode: PowerMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Sets the SINR model parameters.
    pub fn with_model(mut self, model: SinrModel) -> Self {
        self.config.model = model;
        self
    }

    /// Replaces the whole scheduler configuration.
    pub fn with_config(mut self, config: SchedulerConfig) -> Self {
        self.config = config;
        self
    }

    /// Chooses the session backend the schedule is computed with (default:
    /// [`Backend::Auto`]).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The node positions.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The sink node index.
    pub fn sink(&self) -> usize {
        self.sink
    }

    /// The scheduler configuration.
    pub fn config(&self) -> SchedulerConfig {
        self.config
    }

    /// The configured session backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Solves the problem: builds the MST, orients it towards the sink, and
    /// schedules the oriented links through a [`Session`] with the
    /// configured backend.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::Tree`] for degenerate pointsets.
    pub fn solve(&self) -> Result<AggregationSolution, AggregationError> {
        let tree = wagg_mst::euclidean_mst(&self.points)?;
        let links = tree.try_orient_towards(self.sink)?;
        let mut session = Session::builder()
            .scheduler(self.config)
            .backend(self.backend)
            .links(&links)
            .build();
        let report = session.solve();
        Ok(AggregationSolution {
            tree,
            links,
            report,
            config: self.config,
        })
    }
}

/// A solved aggregation problem: the tree, its convergecast links, and the verified
/// schedule with its diagnostics.
#[derive(Debug, Clone)]
pub struct AggregationSolution {
    /// The Euclidean MST of the pointset.
    pub tree: wagg_mst::SpanningTree,
    /// The MST's links oriented towards the sink (the scheduled link set).
    pub links: Vec<Link>,
    /// The unified solve report: schedule, the diagnostics the paper's
    /// analysis is phrased in, and the backend that produced it.
    pub report: SolveReport,
    /// The configuration the schedule was computed with.
    pub config: SchedulerConfig,
}

impl AggregationSolution {
    /// The schedule length (number of slots).
    pub fn slots(&self) -> usize {
        self.report.slots()
    }

    /// The aggregation rate `1 / slots` of the periodic schedule.
    pub fn rate(&self) -> f64 {
        self.report.rate()
    }

    /// Verifies the schedule against the physical model once more (sanity check used
    /// by tests and the experiment harness).
    pub fn verify(&self) -> bool {
        self.report
            .schedule()
            .verify(&self.links, &self.config.model, self.config.mode)
    }

    /// Runs the convergecast simulation at the schedule's own rate for `frames`
    /// frames and returns the measured throughput/latency report.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::Simulation`] if the link set cannot be interpreted
    /// as a convergecast tree (never the case for solutions produced by
    /// [`AggregationProblem::solve`]).
    pub fn simulate(&self, frames: usize) -> Result<SimReport, AggregationError> {
        let sim = ConvergecastSim::from_solve(&self.links, &self.report)?;
        let period = self.slots().max(1);
        Ok(sim.run(SimConfig {
            frame_period: period,
            num_frames: frames,
            max_slots: (frames + self.links.len() + 2) * period * 4 + 64,
        }))
    }
}

/// Convenience one-liner: solve a pointset with the given power mode and default
/// model.
///
/// # Errors
///
/// Same as [`AggregationProblem::solve`].
///
/// # Examples
///
/// ```
/// use wagg_core::{solve_points, PowerMode, Point};
///
/// let points: Vec<Point> = (0..12).map(|i| Point::new(i as f64, 0.0)).collect();
/// let solution = solve_points(&points, 0, PowerMode::Oblivious { tau: 0.5 }).unwrap();
/// assert!(solution.slots() <= 6);
/// ```
pub fn solve_points(
    points: &[Point],
    sink: usize,
    mode: PowerMode,
) -> Result<AggregationSolution, AggregationError> {
    AggregationProblem::new(points.to_vec(), sink)
        .with_power_mode(mode)
        .solve()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_instances::chains::exponential_chain;
    use wagg_instances::random::{grid, uniform_square};

    #[test]
    #[should_panic(expected = "sink index out of range")]
    fn bad_sink_panics() {
        let _ = AggregationProblem::new(vec![Point::origin()], 1);
    }

    #[test]
    fn solve_uniform_square_all_modes() {
        let inst = uniform_square(40, 100.0, 5);
        for mode in [
            PowerMode::Uniform,
            PowerMode::Oblivious { tau: 0.5 },
            PowerMode::GlobalControl,
        ] {
            let solution = AggregationProblem::from_instance(&inst)
                .with_power_mode(mode)
                .solve()
                .unwrap();
            assert_eq!(solution.links.len(), 39);
            assert!(solution.verify(), "{mode} schedule failed verification");
            assert!(solution.rate() > 0.0);
        }
    }

    #[test]
    fn solve_propagates_tree_errors() {
        let problem = AggregationProblem::new(vec![Point::origin(), Point::origin()], 0);
        assert!(matches!(problem.solve(), Err(AggregationError::Tree(_))));
    }

    #[test]
    fn power_control_beats_uniform_power_on_exponential_chain() {
        let inst = exponential_chain(10, 2.0).unwrap();
        let uniform = AggregationProblem::from_instance(&inst)
            .with_power_mode(PowerMode::Uniform)
            .solve()
            .unwrap();
        let oblivious = AggregationProblem::from_instance(&inst)
            .with_power_mode(PowerMode::mean_oblivious())
            .solve()
            .unwrap();
        let global = AggregationProblem::from_instance(&inst)
            .with_power_mode(PowerMode::GlobalControl)
            .solve()
            .unwrap();
        // Both power-control modes beat the no-control baseline, which degenerates
        // towards one link per slot on exponential chains.
        assert!(oblivious.slots() < uniform.slots());
        assert!(global.slots() < uniform.slots());
    }

    #[test]
    fn global_control_beats_oblivious_power_on_doubly_exponential_chain() {
        // On the Fig. 2 chain every oblivious scheme is stuck at one link per slot,
        // while global power control can pack links together (the log* vs log log
        // separation shows up only at astronomically large diversity, which is
        // exactly what this instance provides).
        let inst = wagg_instances::chains::doubly_exponential_chain(6, 0.5, 3.0, 1.0).unwrap();
        let oblivious = AggregationProblem::from_instance(&inst)
            .with_power_mode(PowerMode::mean_oblivious())
            .solve()
            .unwrap();
        let global = AggregationProblem::from_instance(&inst)
            .with_power_mode(PowerMode::GlobalControl)
            .solve()
            .unwrap();
        assert_eq!(oblivious.slots(), inst.len() - 1);
        assert!(global.slots() < oblivious.slots());
    }

    #[test]
    fn simulation_sustains_the_schedule_rate() {
        let inst = grid(5, 5, 1.0);
        let solution = AggregationProblem::from_instance(&inst).solve().unwrap();
        let report = solution.simulate(10).unwrap();
        assert!(report.all_frames_completed);
        assert!(report.max_buffer_occupancy <= inst.len());
    }

    #[test]
    fn builder_methods_update_config() {
        let inst = uniform_square(10, 10.0, 1);
        let model = SinrModel::new(4.0, 2.0, 0.0).unwrap();
        let problem = AggregationProblem::from_instance(&inst)
            .with_model(model)
            .with_power_mode(PowerMode::Linear);
        assert_eq!(problem.config().model, model);
        assert_eq!(problem.config().mode, PowerMode::Linear);
        let custom = SchedulerConfig::new(PowerMode::Uniform).with_verification(false);
        let problem = problem.with_config(custom);
        assert_eq!(problem.config(), custom);
    }

    #[test]
    fn error_display_and_source() {
        let err: AggregationError = wagg_mst::MstError::TooFewPoints { found: 1 }.into();
        assert!(err.to_string().contains("tree construction failed"));
        assert!(err.source().is_some());
    }
}
