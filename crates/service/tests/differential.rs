//! The service differential suite: a session hosted behind
//! [`SchedulerService`] is *slot-for-slot identical* to a [`Session`]
//! driven directly — same configs, same event batches, equal
//! [`SolveReport`]s — across all three backends, under churn, through
//! snapshot/restore, and under a concurrent multi-client storm. Plus the
//! failure surface: a full queue is a typed [`ServiceError::Busy`] (never a
//! deadlock), and a panicking event poisons exactly one session while its
//! worker and every other session keep serving.
//!
//! `ci.sh` runs this suite in both the serial and the parallel build.

use wagg_engine::EngineEvent;
use wagg_geometry::{BoundingBox, Point};
use wagg_service::{SchedulerService, ServiceConfig, ServiceError, SessionId};
use wagg_session::{Backend, PartitionHints, RepairPolicy, Session, SessionConfig};
use wagg_sinr::Link;

/// A deterministic mixed-length link set inside `[0, 90)²`.
fn links(n: usize) -> Vec<Link> {
    (0..n)
        .map(|i| {
            let x = (i % 10) as f64 * 9.0;
            let y = (i / 10) as f64 * 9.0;
            let len = 1.0 + (i % 4) as f64 * 0.3;
            Link::new(i, Point::new(x, y), Point::new(x + len, y))
        })
        .collect()
}

/// One churn batch per round, in trace-key space — applied identically to
/// hosted and direct sessions. Lengths stay inside the hinted configs'
/// declared `(1.0, 2.0)` bounds and all positions inside the extent.
fn batch(round: u64) -> Vec<EngineEvent> {
    let r = round as f64;
    vec![
        EngineEvent::Insert {
            key: 100 + round,
            sender: Point::new(40.0 + r, 41.0),
            receiver: Point::new(41.2 + r, 41.0),
            sender_node: None,
            receiver_node: None,
        },
        EngineEvent::Insert {
            key: 300 + round,
            sender: Point::new(12.0, 70.0 + (round % 7) as f64),
            receiver: Point::new(13.1, 70.0 + (round % 7) as f64),
            sender_node: None,
            receiver_node: None,
        },
        EngineEvent::Remove { key: 100 + round },
    ]
}

/// Every backend flavour the service must reproduce exactly.
fn configs() -> Vec<SessionConfig> {
    let repair = RepairPolicy {
        enabled: true,
        max_drift: 0.25,
    };
    vec![
        SessionConfig {
            backend: Backend::Static,
            ..SessionConfig::default()
        },
        SessionConfig {
            backend: Backend::Engine,
            repair,
            ..SessionConfig::default()
        },
        SessionConfig {
            backend: Backend::Sharded,
            target_shards: 4,
            ..SessionConfig::default()
        },
        SessionConfig {
            backend: Backend::Sharded,
            target_shards: 4,
            partition: Some(PartitionHints {
                extent: BoundingBox::new(0.0, 0.0, 95.0, 95.0),
                length_bounds: (1.0, 2.0),
            }),
            repair,
            ..SessionConfig::default()
        },
    ]
}

/// Retries through transient `Busy` rejections (backpressure is typed, so
/// a client loop is exactly this).
fn with_retry<T>(mut f: impl FnMut() -> Result<T, ServiceError>) -> T {
    loop {
        match f() {
            Ok(v) => return v,
            Err(ServiceError::Busy { .. }) => std::thread::yield_now(),
            Err(e) => panic!("service request failed: {e}"),
        }
    }
}

/// Hosted == direct, slot for slot, across every backend and five churn
/// rounds.
#[test]
fn hosted_sessions_match_direct_sessions() {
    let service = SchedulerService::start(ServiceConfig::default());
    for config in configs() {
        let universe = links(40);
        let hosted = service.open_session(config, &universe).expect("opens");
        let mut direct = Session::builder().config(config).links(&universe).build();
        assert_eq!(
            service.solve(hosted).expect("hosted solves"),
            direct.solve(),
            "seed solve diverged for {:?}",
            config.backend
        );
        for round in 1..6 {
            let events = batch(round);
            let applied = service
                .submit_events(hosted, &events)
                .expect("hosted applies");
            assert_eq!(
                applied,
                direct.apply_events(&events).expect("direct applies")
            );
            assert_eq!(
                service.solve(hosted).expect("hosted solves"),
                direct.solve(),
                "round {round} diverged for {:?}",
                config.backend
            );
        }
        service.close_session(hosted).expect("closes");
    }
    service.shutdown();
}

/// Snapshot → wire → restore inside the service equals the uninterrupted
/// session, and both keep matching a direct session afterwards.
#[test]
fn snapshot_restore_matches_uninterrupted() {
    let service = SchedulerService::start(ServiceConfig::default());
    for config in configs() {
        let universe = links(40);
        let hosted = service.open_session(config, &universe).expect("opens");
        let mut direct = Session::builder().config(config).links(&universe).build();
        for round in 1..3 {
            let events = batch(round);
            service.submit_events(hosted, &events).expect("applies");
            direct.apply_events(&events).expect("applies");
            service.solve(hosted).expect("solves");
            direct.solve();
        }
        let frame = service.snapshot(hosted).expect("snapshots");
        let restored = service.restore(&frame).expect("restores");
        for round in 3..6 {
            let events = batch(round);
            service.submit_events(hosted, &events).expect("applies");
            service.submit_events(restored, &events).expect("applies");
            direct.apply_events(&events).expect("applies");
            let want = direct.solve();
            assert_eq!(
                service.solve(hosted).expect("hosted solves"),
                want,
                "uninterrupted diverged at round {round} for {:?}",
                config.backend
            );
            assert_eq!(
                service.solve(restored).expect("restored solves"),
                want,
                "restored diverged at round {round} for {:?}",
                config.backend
            );
        }
        service.close_session(hosted).expect("closes");
        service.close_session(restored).expect("closes");
    }
    service.shutdown();
}

/// A storm of concurrent clients sharing two workers: per-session request
/// streams stay linearizable — every client's solves equal a direct
/// session replaying the same ops sequentially.
#[test]
fn concurrent_clients_stay_linearizable_per_session() {
    let service = SchedulerService::start(ServiceConfig {
        workers: 2,
        queue_depth: 8,
        telemetry: None,
    });
    let all = configs();
    let clients: Vec<_> = (0..8)
        .map(|i| {
            let service = service.clone();
            let config = all[i % all.len()];
            std::thread::spawn(move || {
                let universe = links(30 + i);
                let hosted = with_retry(|| service.open_session(config, &universe));
                let mut reports = Vec::new();
                for round in 1..5 {
                    let events = batch(round + i as u64 * 10);
                    with_retry(|| service.submit_events(hosted, &events));
                    reports.push(with_retry(|| service.solve(hosted)));
                }
                with_retry(|| service.close_session(hosted));
                (i, config, reports)
            })
        })
        .collect();
    for client in clients {
        let (i, config, reports) = client.join().expect("client thread completes");
        let mut direct = Session::builder()
            .config(config)
            .links(&links(30 + i))
            .build();
        for (round, hosted_report) in (1..5).zip(reports) {
            direct
                .apply_events(&batch(round + i as u64 * 10))
                .expect("direct applies");
            assert_eq!(
                hosted_report,
                direct.solve(),
                "client {i} diverged at round {round}"
            );
        }
    }
    service.shutdown();
}

/// Flooding one worker with a depth-1 queue yields typed `Busy` rejections
/// — and nothing deadlocks: every client completes, and the service still
/// serves afterwards.
#[test]
fn overload_is_typed_busy_not_deadlock() {
    let service = SchedulerService::start(ServiceConfig {
        workers: 1,
        queue_depth: 1,
        telemetry: None,
    });
    let universe = links(60);
    let hosted = service
        .open_session(SessionConfig::default(), &universe)
        .expect("opens");
    let floods: Vec<_> = (0..12)
        .map(|_| {
            let service = service.clone();
            std::thread::spawn(move || {
                let mut busy = 0u64;
                for _ in 0..30 {
                    match service.solve(hosted) {
                        Ok(_) => {}
                        Err(ServiceError::Busy { queue_depth }) => {
                            assert_eq!(queue_depth, 1);
                            busy += 1;
                        }
                        Err(e) => panic!("unexpected error under flood: {e}"),
                    }
                }
                busy
            })
        })
        .collect();
    let total_busy: u64 = floods
        .into_iter()
        .map(|t| t.join().expect("flood thread completes"))
        .sum();
    assert_eq!(total_busy, service.busy_rejections());
    assert!(
        total_busy > 0,
        "12 clients against a depth-1 queue never saw Busy"
    );
    // The service is unharmed.
    let report = service.solve(hosted).expect("still serves");
    assert_eq!(report.report.num_links, 60);
    service.shutdown();
}

/// A panicking event (length outside the declared partition bounds trips
/// an engine assertion) poisons exactly its session: the worker survives,
/// a sibling session on the same worker keeps solving, and the poisoned
/// session stays addressable until closed.
#[test]
fn panic_poisons_one_session_only() {
    let service = SchedulerService::start(ServiceConfig {
        workers: 1,
        queue_depth: 16,
        telemetry: None,
    });
    let hinted = SessionConfig {
        backend: Backend::Sharded,
        target_shards: 4,
        partition: Some(PartitionHints {
            extent: BoundingBox::new(0.0, 0.0, 95.0, 95.0),
            length_bounds: (1.0, 2.0),
        }),
        ..SessionConfig::default()
    };
    let victim = service.open_session(hinted, &links(30)).expect("opens");
    let bystander = service
        .open_session(SessionConfig::default(), &links(20))
        .expect("opens");

    // Length 50 violates the declared (1.0, 2.0) bounds → engine assert.
    let poison = vec![EngineEvent::Insert {
        key: 999,
        sender: Point::new(10.0, 10.0),
        receiver: Point::new(60.0, 10.0),
        sender_node: None,
        receiver_node: None,
    }];
    assert_eq!(
        service.submit_events(victim, &poison),
        Err(ServiceError::SessionPoisoned { session: victim })
    );
    // The poisoned session keeps answering — with its poison.
    assert_eq!(
        service.solve(victim),
        Err(ServiceError::SessionPoisoned { session: victim })
    );
    // Its sibling on the same worker is untouched.
    let report = service.solve(bystander).expect("bystander solves");
    assert_eq!(report.report.num_links, 20);
    // Poisoned sessions can be closed; then they are unknown.
    service.close_session(victim).expect("poisoned closes");
    assert_eq!(
        service.solve(victim),
        Err(ServiceError::UnknownSession { session: victim })
    );
    service.shutdown();
}

/// With telemetry configured, `health` carries the session's accounting
/// and (in `obs` builds) longitudinal flight-recorder signals; the
/// service's own recorder sees per-request histograms.
#[test]
fn health_and_metrics_flow_through() {
    let service = SchedulerService::start(ServiceConfig {
        workers: 2,
        queue_depth: 16,
        telemetry: Some(wagg_session::TelemetryConfig::default()),
    });
    let hosted = service
        .open_session(SessionConfig::default(), &links(25))
        .expect("opens");
    for round in 1..4 {
        service
            .submit_events(hosted, &batch(round))
            .expect("applies");
        service.solve(hosted).expect("solves");
    }
    let health = service.health(hosted).expect("health answers");
    assert_eq!(health.stats.links, 25 + 3);
    assert_eq!(health.stats.inserts, 25 + 6);
    let metrics = service.metrics();
    if !metrics.is_empty() {
        // obs build: per-request latency histograms were recorded.
        let solves = metrics
            .hist("service.request.solve_ns")
            .expect("solve histogram exists");
        assert_eq!(solves.count(), 3);
        assert!(metrics.hist("service.request.events_ns").is_some());
        assert!(metrics.hist("service.request.health_ns").is_some());
    }
    service.shutdown();
}

/// `SessionId`s are service-scoped: fabricated ids are unknown, and
/// requests race-free across clones of the handle.
#[test]
fn ids_are_service_scoped() {
    let service = SchedulerService::start(ServiceConfig::default());
    let real = service
        .open_session(SessionConfig::default(), &links(10))
        .expect("opens");
    let clone = service.clone();
    assert_eq!(clone.solve(real).expect("clone serves"), {
        let mut direct = Session::builder()
            .config(SessionConfig::default())
            .links(&links(10))
            .build();
        direct.solve()
    });
    // An id the service never minted.
    let fake: SessionId = {
        // SessionIds are opaque; fabricate one by opening on a throwaway
        // service (ids are minted per service, so they collide only by
        // accident — pick one far past this service's counter).
        let throwaway = SchedulerService::start(ServiceConfig {
            workers: 1,
            queue_depth: 4,
            telemetry: None,
        });
        let mut last = throwaway
            .open_session(SessionConfig::default(), &links(2))
            .expect("opens");
        for _ in 0..20 {
            last = throwaway
                .open_session(SessionConfig::default(), &links(2))
                .expect("opens");
        }
        throwaway.shutdown();
        last
    };
    assert!(matches!(
        service.solve(fake),
        Err(ServiceError::UnknownSession { .. })
    ));
    service.shutdown();
}
