//! Scheduling as a service: many concurrent [`Session`]s behind one typed
//! request/response protocol.
//!
//! A [`SchedulerService`] hosts sessions on a pool of plain `std::thread`
//! workers (no async runtime — the whole workspace is dependency-free).
//! Each session lives inside exactly one worker, chosen by
//! `session id % workers`, so session state is never shared, locked or
//! moved across threads; clients talk to workers over bounded
//! [`std::sync::mpsc`] channels.
//!
//! The protocol is the [`Request`]/[`Response`] pair: open a session from a
//! [`SessionConfig`] and a link set, submit [`EngineEvent`] batches, solve,
//! snapshot the session into a `wagg-wire` frame, restore a new session
//! from such a frame, poll health, close. Every call returns
//! `Result<Response, ServiceError>` — the error enum is the service's whole
//! failure surface.
//!
//! # Backpressure, not deadlock
//!
//! Worker queues are bounded ([`ServiceConfig::queue_depth`]) and admission
//! uses `try_send`: when a queue is full the request is rejected
//! immediately with [`ServiceError::Busy`] instead of blocking the caller.
//! Workers never block sending replies (reply channels are unbounded and
//! per-request), so the system cannot deadlock: a flood of clients degrades
//! to typed `Busy` rejections while queued work keeps draining.
//!
//! # Panic isolation
//!
//! Every session operation runs under [`std::panic::catch_unwind`]. A panic
//! — say, an event that trips an engine assertion — poisons *that session
//! only*: the session is dropped, the slot is marked poisoned, the caller
//! gets [`ServiceError::SessionPoisoned`], and every other session (and the
//! worker itself) keeps serving. Poisoned sessions stay addressable (they
//! keep returning `SessionPoisoned`) until closed.
//!
//! # Snapshot / restore
//!
//! [`SchedulerService::snapshot`] captures a session
//! ([`Session::capture_state`]) and returns it wire-encoded
//! ([`wagg_wire::Frame::Snapshot`]); [`SchedulerService::restore`] decodes,
//! validates and rebuilds it as a *new* session. The round trip preserves
//! solve bytes exactly — the restored session's next solve equals the
//! original's (the `wagg-session` snapshot contract, carried through the
//! wire).
//!
//! # Observability
//!
//! The service records per-request latency histograms
//! (`service.request.*_ns`), queue-depth high-water marks and `Busy`
//! rejection counts into a [`Recorder`] ([`SchedulerService::metrics`]).
//! With [`ServiceConfig::telemetry`] set, every hosted session gets its own
//! [`FlightRecorder`], and [`SchedulerService::health`] returns the PR 8
//! longitudinal [`HealthReport`] (skew / drift / latency-regression
//! signals) next to the session's event accounting.
//!
//! Shutdown is graceful: [`SchedulerService::shutdown`] (or dropping the
//! last handle) stops admission, lets every queued request drain FIFO with
//! a real reply, then joins the workers.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use wagg_engine::EngineEvent;
use wagg_obs::telemetry::{FlightRecorder, HealthReport, TelemetryConfig};
use wagg_obs::{Metrics, Recorder};
use wagg_schedule::SolveReport;
use wagg_session::{RestoreError, Session, SessionConfig, SessionError, SessionStats};
use wagg_sinr::Link;
use wagg_wire::{DecodeError, EncodeError, Frame, FrameKind};

/// How a [`SchedulerService`] is sized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Worker threads (each owns its sessions exclusively). Clamped to at
    /// least 1.
    pub workers: usize,
    /// Bounded per-worker queue depth; a full queue rejects with
    /// [`ServiceError::Busy`]. Clamped to at least 1.
    pub queue_depth: usize,
    /// When set, every hosted session gets a [`FlightRecorder`] with this
    /// tuning, enabling [`SchedulerService::health`]'s longitudinal
    /// signals.
    pub telemetry: Option<TelemetryConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_depth: 64,
            telemetry: None,
        }
    }
}

/// Handle to a hosted session. Minted by the service; opaque to clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw id (stable for the lifetime of the service).
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// One request to the service. [`SchedulerService::request`] is the raw
/// entry point; the named methods are typed wrappers.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session over an initial link set.
    OpenSession {
        /// The session's layered configuration.
        config: SessionConfig,
        /// The initial universe (ids are relabeled by the session).
        links: Vec<Link>,
    },
    /// Apply an event batch to a session.
    SubmitEvents {
        /// The target session.
        session: SessionId,
        /// The events, in application order.
        events: Vec<EngineEvent>,
    },
    /// Compute (or warm-repair) the session's schedule.
    Solve {
        /// The target session.
        session: SessionId,
    },
    /// Capture the session as a wire-encoded snapshot frame.
    Snapshot {
        /// The target session.
        session: SessionId,
    },
    /// Open a *new* session from a wire-encoded snapshot frame.
    Restore {
        /// A [`Frame::Snapshot`] encoding.
        frame: Vec<u8>,
    },
    /// The session's event accounting and longitudinal health.
    Health {
        /// The target session.
        session: SessionId,
    },
    /// Drop a session (poisoned sessions may be closed too).
    CloseSession {
        /// The target session.
        session: SessionId,
    },
}

/// The success half of the protocol; errors travel as [`ServiceError`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A session was opened.
    Opened {
        /// Its handle.
        session: SessionId,
    },
    /// An event batch was applied.
    EventsApplied {
        /// The target session.
        session: SessionId,
        /// Events applied (the whole batch, on success).
        applied: usize,
    },
    /// A solve completed.
    Solved {
        /// The target session.
        session: SessionId,
        /// The full report (schedule, analysis quantities, repair and
        /// health accounting).
        report: Box<SolveReport>,
    },
    /// A snapshot was captured.
    Snapshot {
        /// The captured session.
        session: SessionId,
        /// The wire-encoded [`Frame::Snapshot`].
        frame: Vec<u8>,
    },
    /// A snapshot was restored into a new session.
    Restored {
        /// The new session's handle.
        session: SessionId,
    },
    /// A health poll.
    Health {
        /// The target session.
        session: SessionId,
        /// Accounting and longitudinal signals.
        health: Box<ServiceHealth>,
    },
    /// A session was closed.
    Closed {
        /// The closed session.
        session: SessionId,
    },
}

/// What [`SchedulerService::health`] returns per session.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceHealth {
    /// The session's backend and event accounting.
    pub stats: SessionStats,
    /// Longitudinal health signals from the session's flight recorder
    /// (empty when the service runs without [`ServiceConfig::telemetry`]).
    pub health: HealthReport,
}

/// The service's whole failure surface.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The target worker's queue is full — back off and retry. Typed
    /// backpressure, never a block.
    Busy {
        /// The configured per-worker queue bound that was hit.
        queue_depth: usize,
    },
    /// No session (live or poisoned) has this id.
    UnknownSession {
        /// The offending id.
        session: SessionId,
    },
    /// A previous operation panicked inside this session; it accepts
    /// nothing but [`Request::CloseSession`].
    SessionPoisoned {
        /// The poisoned session.
        session: SessionId,
    },
    /// The service is shutting down and admits no new requests.
    ShuttingDown,
    /// A snapshot frame failed to decode.
    Codec(DecodeError),
    /// A snapshot failed to encode.
    Encode(EncodeError),
    /// The frame decoded, but to the wrong kind (restore needs a
    /// [`Frame::Snapshot`]).
    UnexpectedFrame {
        /// The kind found.
        kind: FrameKind,
    },
    /// A decoded snapshot failed semantic validation.
    Restore(RestoreError),
    /// The session rejected an event (unknown key, engine refusal).
    Session(SessionError),
    /// The worker thread is gone (it should never be — workers survive
    /// session panics).
    WorkerLost,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Busy { queue_depth } => {
                write!(
                    f,
                    "worker queue full (depth {queue_depth}); back off and retry"
                )
            }
            ServiceError::UnknownSession { session } => write!(f, "{session} is not hosted here"),
            ServiceError::SessionPoisoned { session } => {
                write!(f, "{session} was poisoned by a panic; close it")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Codec(e) => write!(f, "snapshot frame does not decode: {e}"),
            ServiceError::Encode(e) => write!(f, "snapshot does not encode: {e}"),
            ServiceError::UnexpectedFrame { kind } => {
                write!(f, "expected a snapshot frame, found {kind:?}")
            }
            ServiceError::Restore(e) => write!(f, "snapshot does not restore: {e}"),
            ServiceError::Session(e) => write!(f, "session rejected the request: {e}"),
            ServiceError::WorkerLost => write!(f, "worker thread is gone"),
        }
    }
}

impl Error for ServiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServiceError::Codec(e) => Some(e),
            ServiceError::Encode(e) => Some(e),
            ServiceError::Restore(e) => Some(e),
            ServiceError::Session(e) => Some(e),
            _ => None,
        }
    }
}

/// A multi-session scheduling service. Cheap to clone — clones share the
/// same worker pool; the pool shuts down (gracefully) when the last handle
/// drops or [`SchedulerService::shutdown`] is called.
#[derive(Clone)]
pub struct SchedulerService {
    inner: Arc<Inner>,
}

struct Inner {
    queue_depth: usize,
    recorder: Recorder,
    next_session: AtomicU64,
    busy_rejections: AtomicU64,
    shutting_down: AtomicBool,
    workers: Vec<WorkerHandle>,
}

struct WorkerHandle {
    sender: Mutex<Option<SyncSender<Envelope>>>,
    thread: Mutex<Option<JoinHandle<()>>>,
    depth: Arc<AtomicUsize>,
}

/// A queued request: the routing id (minted for open/restore), the request
/// itself, and the caller's reply channel. Replies are unbounded so the
/// worker can never block sending one.
struct Envelope {
    session: SessionId,
    request: Request,
    reply: mpsc::Sender<Result<Response, ServiceError>>,
}

/// A worker's view of one hosted session.
enum Slot {
    Live(Box<Session>),
    Poisoned,
}

struct WorkerCtx {
    recorder: Recorder,
    telemetry: Option<TelemetryConfig>,
}

impl SchedulerService {
    /// Starts a service with the given sizing. Workers spin up immediately
    /// and idle on their queues.
    pub fn start(config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let queue_depth = config.queue_depth.max(1);
        let recorder = Recorder::new();
        let handles = (0..workers)
            .map(|_| {
                let (tx, rx) = mpsc::sync_channel::<Envelope>(queue_depth);
                let depth = Arc::new(AtomicUsize::new(0));
                let ctx = WorkerCtx {
                    recorder: recorder.clone(),
                    telemetry: config.telemetry,
                };
                let worker_depth = Arc::clone(&depth);
                let thread = std::thread::spawn(move || worker_loop(rx, worker_depth, ctx));
                WorkerHandle {
                    sender: Mutex::new(Some(tx)),
                    thread: Mutex::new(Some(thread)),
                    depth,
                }
            })
            .collect();
        SchedulerService {
            inner: Arc::new(Inner {
                queue_depth,
                recorder,
                next_session: AtomicU64::new(0),
                busy_rejections: AtomicU64::new(0),
                shutting_down: AtomicBool::new(false),
                workers: handles,
            }),
        }
    }

    /// The raw protocol entry point: routes the request to its session's
    /// worker (minting a fresh id for [`Request::OpenSession`] and
    /// [`Request::Restore`]) and blocks for the reply.
    pub fn request(&self, request: Request) -> Result<Response, ServiceError> {
        let session = match &request {
            Request::OpenSession { .. } | Request::Restore { .. } => self.mint(),
            Request::SubmitEvents { session, .. }
            | Request::Solve { session }
            | Request::Snapshot { session }
            | Request::Health { session }
            | Request::CloseSession { session } => *session,
        };
        self.dispatch(session, request)
    }

    /// Opens a session over an initial link set; returns its handle.
    pub fn open_session(
        &self,
        config: SessionConfig,
        links: &[Link],
    ) -> Result<SessionId, ServiceError> {
        match self.request(Request::OpenSession {
            config,
            links: links.to_vec(),
        })? {
            Response::Opened { session } => Ok(session),
            _ => Err(ServiceError::WorkerLost),
        }
    }

    /// Applies an event batch; returns how many events were applied.
    pub fn submit_events(
        &self,
        session: SessionId,
        events: &[EngineEvent],
    ) -> Result<usize, ServiceError> {
        match self.request(Request::SubmitEvents {
            session,
            events: events.to_vec(),
        })? {
            Response::EventsApplied { applied, .. } => Ok(applied),
            _ => Err(ServiceError::WorkerLost),
        }
    }

    /// Solves the session; returns the full report.
    pub fn solve(&self, session: SessionId) -> Result<SolveReport, ServiceError> {
        match self.request(Request::Solve { session })? {
            Response::Solved { report, .. } => Ok(*report),
            _ => Err(ServiceError::WorkerLost),
        }
    }

    /// Captures the session as a wire-encoded [`Frame::Snapshot`].
    pub fn snapshot(&self, session: SessionId) -> Result<Vec<u8>, ServiceError> {
        match self.request(Request::Snapshot { session })? {
            Response::Snapshot { frame, .. } => Ok(frame),
            _ => Err(ServiceError::WorkerLost),
        }
    }

    /// Opens a new session from a wire-encoded snapshot frame.
    pub fn restore(&self, frame: &[u8]) -> Result<SessionId, ServiceError> {
        match self.request(Request::Restore {
            frame: frame.to_vec(),
        })? {
            Response::Restored { session } => Ok(session),
            _ => Err(ServiceError::WorkerLost),
        }
    }

    /// The session's event accounting and longitudinal health signals.
    pub fn health(&self, session: SessionId) -> Result<ServiceHealth, ServiceError> {
        match self.request(Request::Health { session })? {
            Response::Health { health, .. } => Ok(*health),
            _ => Err(ServiceError::WorkerLost),
        }
    }

    /// Closes a session (live or poisoned).
    pub fn close_session(&self, session: SessionId) -> Result<(), ServiceError> {
        match self.request(Request::CloseSession { session })? {
            Response::Closed { .. } => Ok(()),
            _ => Err(ServiceError::WorkerLost),
        }
    }

    /// A snapshot of the service's own metrics: per-request latency
    /// histograms (`service.request.*_ns`), queue-depth high-water marks
    /// and busy-rejection counts. Empty in no-`obs` builds.
    pub fn metrics(&self) -> Metrics {
        self.inner.recorder.metrics()
    }

    /// Requests rejected with [`ServiceError::Busy`] since start (counted
    /// in every build, independent of the `obs` feature).
    pub fn busy_rejections(&self) -> u64 {
        self.inner.busy_rejections.load(Ordering::Relaxed)
    }

    /// Graceful drain-then-stop: admission closes immediately (new requests
    /// get [`ServiceError::ShuttingDown`]), every already-queued request is
    /// served FIFO with a real reply, then the workers are joined.
    /// Idempotent; also runs when the last handle drops.
    pub fn shutdown(&self) {
        self.inner.shutdown();
    }

    fn mint(&self) -> SessionId {
        SessionId(self.inner.next_session.fetch_add(1, Ordering::Relaxed))
    }

    fn dispatch(&self, session: SessionId, request: Request) -> Result<Response, ServiceError> {
        let inner = &*self.inner;
        if inner.shutting_down.load(Ordering::SeqCst) {
            return Err(ServiceError::ShuttingDown);
        }
        let worker = &inner.workers[(session.0 % inner.workers.len() as u64) as usize];
        let (reply_tx, reply_rx) = mpsc::channel();
        {
            let guard = worker
                .sender
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let Some(sender) = guard.as_ref() else {
                return Err(ServiceError::ShuttingDown);
            };
            // Count the slot before sending: the worker decrements after
            // receiving, so incrementing afterwards could underflow.
            let depth = worker.depth.fetch_add(1, Ordering::Relaxed) + 1;
            match sender.try_send(Envelope {
                session,
                request,
                reply: reply_tx,
            }) {
                Ok(()) => {
                    inner
                        .recorder
                        .record_max("service.queue_depth", depth as u64);
                }
                Err(TrySendError::Full(_)) => {
                    worker.depth.fetch_sub(1, Ordering::Relaxed);
                    inner.busy_rejections.fetch_add(1, Ordering::Relaxed);
                    inner.recorder.add("service.busy", 1);
                    return Err(ServiceError::Busy {
                        queue_depth: inner.queue_depth,
                    });
                }
                Err(TrySendError::Disconnected(_)) => {
                    worker.depth.fetch_sub(1, Ordering::Relaxed);
                    return Err(ServiceError::WorkerLost);
                }
            }
        }
        reply_rx.recv().unwrap_or(Err(ServiceError::WorkerLost))
    }
}

impl Inner {
    fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        // Dropping the senders disconnects each queue once it drains;
        // workers serve everything already queued, then exit.
        for worker in &self.workers {
            drop(
                worker
                    .sender
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take(),
            );
        }
        for worker in &self.workers {
            let handle = worker
                .thread
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take();
            if let Some(handle) = handle {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: Receiver<Envelope>, depth: Arc<AtomicUsize>, ctx: WorkerCtx) {
    let mut sessions: HashMap<u64, Slot> = HashMap::new();
    while let Ok(envelope) = rx.recv() {
        depth.fetch_sub(1, Ordering::Relaxed);
        let t0 = ctx.recorder.is_enabled().then(Instant::now);
        let metric = metric_name(&envelope.request);
        let result = handle(&mut sessions, envelope.session, envelope.request, &ctx);
        if let Some(t0) = t0 {
            ctx.recorder.observe(metric, t0.elapsed().as_nanos() as u64);
        }
        // A gone client is not an error; the work is already done.
        let _ = envelope.reply.send(result);
    }
}

fn metric_name(request: &Request) -> &'static str {
    match request {
        Request::OpenSession { .. } => "service.request.open_ns",
        Request::SubmitEvents { .. } => "service.request.events_ns",
        Request::Solve { .. } => "service.request.solve_ns",
        Request::Snapshot { .. } => "service.request.snapshot_ns",
        Request::Restore { .. } => "service.request.restore_ns",
        Request::Health { .. } => "service.request.health_ns",
        Request::CloseSession { .. } => "service.request.close_ns",
    }
}

fn handle(
    sessions: &mut HashMap<u64, Slot>,
    session: SessionId,
    request: Request,
    ctx: &WorkerCtx,
) -> Result<Response, ServiceError> {
    match request {
        Request::OpenSession { config, links } => {
            let telemetry = ctx.telemetry;
            let built = catch_unwind(AssertUnwindSafe(move || {
                let mut builder = Session::builder().config(config).links(&links);
                if let Some(tuning) = telemetry {
                    builder = builder.flight_recorder(FlightRecorder::with_config(tuning));
                }
                Box::new(builder.build())
            }));
            match built {
                Ok(built) => {
                    sessions.insert(session.0, Slot::Live(built));
                    Ok(Response::Opened { session })
                }
                Err(_) => {
                    // A config the builder asserts on (e.g. degenerate
                    // partition hints) poisons the id it would have used.
                    sessions.insert(session.0, Slot::Poisoned);
                    Err(ServiceError::SessionPoisoned { session })
                }
            }
        }
        Request::Restore { frame } => {
            let state = match Frame::decode(&frame) {
                Ok(Frame::Snapshot(state)) => state,
                Ok(other) => {
                    return Err(ServiceError::UnexpectedFrame { kind: other.kind() });
                }
                Err(e) => return Err(ServiceError::Codec(e)),
            };
            let mut restored = Session::restore_state(&state).map_err(ServiceError::Restore)?;
            if let Some(tuning) = ctx.telemetry {
                if !restored.flight_recorder().is_enabled() {
                    restored.set_flight_recorder(FlightRecorder::with_config(tuning));
                }
            }
            sessions.insert(session.0, Slot::Live(Box::new(restored)));
            Ok(Response::Restored { session })
        }
        Request::SubmitEvents { events, .. } => with_live(sessions, session, move |s| {
            s.apply_events(&events)
                .map(|applied| Response::EventsApplied { session, applied })
                .map_err(ServiceError::Session)
        }),
        Request::Solve { .. } => with_live(sessions, session, move |s| {
            Ok(Response::Solved {
                session,
                report: Box::new(s.solve()),
            })
        }),
        Request::Snapshot { .. } => with_live(sessions, session, move |s| {
            let frame = Frame::Snapshot(s.capture_state())
                .encode()
                .map_err(ServiceError::Encode)?;
            Ok(Response::Snapshot { session, frame })
        }),
        Request::Health { .. } => with_live(sessions, session, move |s| {
            Ok(Response::Health {
                session,
                health: Box::new(ServiceHealth {
                    stats: s.stats(),
                    health: s.flight_recorder().health(),
                }),
            })
        }),
        Request::CloseSession { .. } => match sessions.remove(&session.0) {
            Some(_) => Ok(Response::Closed { session }),
            None => Err(ServiceError::UnknownSession { session }),
        },
    }
}

/// Runs `f` against the live session under `id`, isolating panics: the
/// slot is taken out of the map, so a panicking operation drops the
/// (possibly corrupt) session during unwind and the slot is re-inserted
/// poisoned. Every other session is untouched.
fn with_live<F>(
    sessions: &mut HashMap<u64, Slot>,
    session: SessionId,
    f: F,
) -> Result<Response, ServiceError>
where
    F: FnOnce(&mut Session) -> Result<Response, ServiceError>,
{
    match sessions.remove(&session.0) {
        None => Err(ServiceError::UnknownSession { session }),
        Some(Slot::Poisoned) => {
            sessions.insert(session.0, Slot::Poisoned);
            Err(ServiceError::SessionPoisoned { session })
        }
        Some(Slot::Live(mut live)) => {
            match catch_unwind(AssertUnwindSafe(move || {
                let result = f(&mut live);
                (live, result)
            })) {
                Ok((live, result)) => {
                    sessions.insert(session.0, Slot::Live(live));
                    result
                }
                Err(_) => {
                    sessions.insert(session.0, Slot::Poisoned);
                    Err(ServiceError::SessionPoisoned { session })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_geometry::Point;

    fn links(n: usize) -> Vec<Link> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64 * 9.0;
                let y = (i / 10) as f64 * 9.0;
                Link::new(i, Point::new(x, y), Point::new(x + 1.2, y))
            })
            .collect()
    }

    #[test]
    fn open_solve_close_round_trip() {
        let service = SchedulerService::start(ServiceConfig::default());
        let id = service
            .open_session(SessionConfig::default(), &links(20))
            .expect("opens");
        let report = service.solve(id).expect("solves");
        assert_eq!(report.report.num_links, 20);
        service.close_session(id).expect("closes");
        assert_eq!(
            service.solve(id),
            Err(ServiceError::UnknownSession { session: id })
        );
        service.shutdown();
    }

    #[test]
    fn requests_after_shutdown_are_rejected() {
        let service = SchedulerService::start(ServiceConfig::default());
        let id = service
            .open_session(SessionConfig::default(), &links(5))
            .expect("opens");
        service.shutdown();
        assert_eq!(service.solve(id), Err(ServiceError::ShuttingDown));
        // Idempotent.
        service.shutdown();
    }

    #[test]
    fn unknown_and_garbage_frames_are_typed() {
        let service = SchedulerService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        assert!(matches!(
            service.restore(b"not a frame"),
            Err(ServiceError::Codec(_))
        ));
        let config_frame = Frame::Config(SessionConfig::default()).encode().unwrap();
        assert_eq!(
            service.restore(&config_frame),
            Err(ServiceError::UnexpectedFrame {
                kind: FrameKind::Config
            })
        );
        service.shutdown();
    }
}
