//! Error type for the multi-hop layer.

use std::error::Error;
use std::fmt;

/// Errors raised by the power-limited / multi-hop pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MultihopError {
    /// Fewer than two nodes were supplied.
    TooFewPoints {
        /// The number of points that was supplied.
        found: usize,
    },
    /// The communication range is not a positive finite number.
    InvalidRange {
        /// The offending range value.
        range: f64,
    },
    /// The cluster radius is not a positive finite number.
    InvalidRadius {
        /// The offending radius value.
        radius: f64,
    },
    /// The sink index does not refer to a node.
    SinkOutOfRange {
        /// The offending sink index.
        sink: usize,
        /// Number of nodes in the instance.
        nodes: usize,
    },
    /// The range-reduced communication graph is disconnected: no spanning tree
    /// exists within the power budget.
    Disconnected {
        /// Number of connected components of the reduced graph.
        components: usize,
        /// The minimum range that would make the graph connected (the longest
        /// edge of the unrestricted MST).
        critical_range: f64,
    },
    /// Building the spanning tree failed even though the reduced graph is
    /// connected (degenerate pointset with coincident nodes).
    Tree(wagg_mst::MstError),
}

impl fmt::Display for MultihopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultihopError::TooFewPoints { found } => {
                write!(f, "need at least two nodes, found {found}")
            }
            MultihopError::InvalidRange { range } => {
                write!(f, "communication range {range} is not a positive finite number")
            }
            MultihopError::InvalidRadius { radius } => {
                write!(f, "cluster radius {radius} is not a positive finite number")
            }
            MultihopError::SinkOutOfRange { sink, nodes } => {
                write!(f, "sink index {sink} is out of range for {nodes} nodes")
            }
            MultihopError::Disconnected {
                components,
                critical_range,
            } => write!(
                f,
                "range-reduced graph has {components} components; connectivity needs range >= {critical_range}"
            ),
            MultihopError::Tree(e) => write!(f, "spanning tree construction failed: {e}"),
        }
    }
}

impl Error for MultihopError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MultihopError::Tree(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wagg_mst::MstError> for MultihopError {
    fn from(e: wagg_mst::MstError) -> Self {
        MultihopError::Tree(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let errors = [
            MultihopError::TooFewPoints { found: 1 },
            MultihopError::InvalidRange { range: -1.0 },
            MultihopError::InvalidRadius { radius: 0.0 },
            MultihopError::SinkOutOfRange { sink: 9, nodes: 4 },
            MultihopError::Disconnected {
                components: 3,
                critical_range: 12.5,
            },
            MultihopError::Tree(wagg_mst::MstError::TooFewPoints { found: 1 }),
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn tree_errors_expose_their_source() {
        let err: MultihopError = wagg_mst::MstError::TooFewPoints { found: 0 }.into();
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync_and_static() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<MultihopError>();
    }
}
