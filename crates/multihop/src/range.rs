//! Range-reduced communication graphs for power-limited nodes.
//!
//! When every sender is limited to power `P_max`, a link of length `l` is
//! usable (even without any concurrent transmission) only if
//! `P_max >= (1 + eps) * beta * N * l^alpha`, i.e. only if `l` is at most the
//! *communication range* determined by the power budget. The pointset then
//! induces a *reduced* graph containing exactly the pairs within range, and
//! the aggregation tree must be a spanning tree of that graph (the paper's
//! interference-limited assumption, Sec. 3.1).

use crate::error::MultihopError;
use serde::{Deserialize, Serialize};
use wagg_geometry::Point;
use wagg_mst::{euclidean_mst, Edge, SpanningTree};
use wagg_sinr::SinrModel;

/// The maximum link length communicable with sender power `power` under
/// `model`, with slack factor `eps` (the paper's interference-limited margin
/// `P(i) >= (1 + eps) * beta * N * l^alpha`).
///
/// Returns `f64::INFINITY` when the model is noise-free (any distance is
/// reachable given enough SINR margin, since there is no noise floor).
///
/// # Examples
///
/// ```
/// use wagg_multihop::max_range_for_power;
/// use wagg_sinr::SinrModel;
///
/// let model = SinrModel::new(3.0, 1.0, 1e-6).unwrap();
/// let range = max_range_for_power(8e-3, &model, 0.5);
/// assert!(range > 10.0 && range < 20.0);
/// ```
pub fn max_range_for_power(power: f64, model: &SinrModel, eps: f64) -> f64 {
    let noise = model.noise();
    if noise <= 0.0 {
        return f64::INFINITY;
    }
    let denom = (1.0 + eps.max(0.0)) * model.beta() * noise;
    (power / denom).powf(1.0 / model.alpha())
}

/// The smallest communication range that keeps the pointset connected: the
/// length of the longest edge of the (unrestricted) Euclidean MST.
///
/// # Errors
///
/// Returns the MST construction errors for degenerate pointsets.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_multihop::critical_range;
///
/// let points: Vec<Point> = (0..5).map(|i| Point::new(3.0 * i as f64, 0.0)).collect();
/// assert_eq!(critical_range(&points).unwrap(), 3.0);
/// ```
pub fn critical_range(points: &[Point]) -> Result<f64, MultihopError> {
    let mst = euclidean_mst(points)?;
    Ok(mst.max_edge_length())
}

/// The communication graph induced by a maximum range: nodes are adjacent
/// exactly when their distance is at most `range`.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_multihop::RangeGraph;
///
/// let points: Vec<Point> = (0..4).map(|i| Point::new(2.0 * i as f64, 0.0)).collect();
/// let graph = RangeGraph::new(points, 2.5).unwrap();
/// assert!(graph.is_connected());
/// assert_eq!(graph.degree(0), 1);
/// assert_eq!(graph.degree(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeGraph {
    points: Vec<Point>,
    range: f64,
    adjacency: Vec<Vec<usize>>,
}

impl RangeGraph {
    /// Builds the reduced graph for the given range.
    ///
    /// # Errors
    ///
    /// Returns [`MultihopError::TooFewPoints`] for fewer than two nodes and
    /// [`MultihopError::InvalidRange`] for a non-positive or non-finite range.
    pub fn new(points: Vec<Point>, range: f64) -> Result<Self, MultihopError> {
        if points.len() < 2 {
            return Err(MultihopError::TooFewPoints {
                found: points.len(),
            });
        }
        if range <= 0.0 || !range.is_finite() {
            return Err(MultihopError::InvalidRange { range });
        }
        let n = points.len();
        let mut adjacency = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if points[i].distance(points[j]) <= range {
                    adjacency[i].push(j);
                    adjacency[j].push(i);
                }
            }
        }
        Ok(RangeGraph {
            points,
            range,
            adjacency,
        })
    }

    /// The node positions.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The communication range.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.points.len()
    }

    /// The neighbours of a node (all nodes within range).
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjacency[v]
    }

    /// Degree of a node.
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// All undirected edges of the reduced graph.
    pub fn edges(&self) -> Vec<Edge> {
        let mut edges = Vec::new();
        for (i, neigh) in self.adjacency.iter().enumerate() {
            for &j in neigh {
                if i < j {
                    edges.push(Edge::new(i, j));
                }
            }
        }
        edges
    }

    /// The connected components, each a sorted list of node indices.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.points.len();
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut component = Vec::new();
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(v) = stack.pop() {
                component.push(v);
                for &w in &self.adjacency[v] {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }

    /// Whether the reduced graph is connected.
    pub fn is_connected(&self) -> bool {
        self.components().len() == 1
    }

    /// Hop distances from `source` to every node (BFS); `None` for unreachable
    /// nodes.
    pub fn hop_distances(&self, source: usize) -> Vec<Option<usize>> {
        let n = self.points.len();
        let mut dist = vec![None; n];
        if source >= n {
            return dist;
        }
        let mut queue = std::collections::VecDeque::new();
        dist[source] = Some(0);
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            let d = dist[v].expect("visited nodes have a distance");
            for &w in &self.adjacency[v] {
                if dist[w].is_none() {
                    dist[w] = Some(d + 1);
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// The minimum spanning tree of the reduced graph (Kruskal over the
    /// in-range edges only).
    ///
    /// # Errors
    ///
    /// Returns [`MultihopError::Disconnected`] when no spanning tree exists
    /// within the range.
    pub fn mst(&self) -> Result<SpanningTree, MultihopError> {
        range_restricted_mst(&self.points, self.range)
    }
}

/// Union-find with path compression and union by size.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }
}

/// The minimum spanning tree of the pointset using only edges of length at
/// most `range` (Kruskal restricted to the reduced graph).
///
/// When the reduced graph is connected this is exactly the Euclidean MST,
/// because every MST edge is no longer than the critical range; the
/// restriction only matters as a feasibility check against the power budget.
///
/// # Errors
///
/// Returns [`MultihopError::Disconnected`] (reporting the number of
/// components and the critical range) when the range is too small, and the
/// construction errors for degenerate inputs.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_multihop::range_restricted_mst;
///
/// let points: Vec<Point> = (0..6).map(|i| Point::new(i as f64, 0.0)).collect();
/// let tree = range_restricted_mst(&points, 1.5).unwrap();
/// assert_eq!(tree.edges().len(), 5);
/// assert!(range_restricted_mst(&points, 0.5).is_err());
/// ```
pub fn range_restricted_mst(points: &[Point], range: f64) -> Result<SpanningTree, MultihopError> {
    if points.len() < 2 {
        return Err(MultihopError::TooFewPoints {
            found: points.len(),
        });
    }
    if range <= 0.0 || !range.is_finite() {
        return Err(MultihopError::InvalidRange { range });
    }
    let n = points.len();
    let mut candidates: Vec<(f64, usize, usize)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let d = points[i].distance(points[j]);
            if d <= range {
                candidates.push((d, i, j));
            }
        }
    }
    candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));

    let mut uf = UnionFind::new(n);
    let mut edges = Vec::with_capacity(n - 1);
    for (_, i, j) in candidates {
        if uf.union(i, j) {
            edges.push(Edge::new(i, j));
            if edges.len() == n - 1 {
                break;
            }
        }
    }
    if edges.len() != n - 1 {
        let graph = RangeGraph::new(points.to_vec(), range)?;
        let critical = critical_range(points).unwrap_or(f64::INFINITY);
        return Err(MultihopError::Disconnected {
            components: graph.components().len(),
            critical_range: critical,
        });
    }
    SpanningTree::new(points.to_vec(), edges).map_err(MultihopError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_instances::random::uniform_square;

    fn line(n: usize, spacing: f64) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(spacing * i as f64, 0.0))
            .collect()
    }

    #[test]
    fn range_graph_rejects_bad_inputs() {
        assert!(matches!(
            RangeGraph::new(vec![Point::origin()], 1.0),
            Err(MultihopError::TooFewPoints { found: 1 })
        ));
        assert!(matches!(
            RangeGraph::new(line(3, 1.0), 0.0),
            Err(MultihopError::InvalidRange { .. })
        ));
        assert!(matches!(
            RangeGraph::new(line(3, 1.0), f64::NAN),
            Err(MultihopError::InvalidRange { .. })
        ));
    }

    #[test]
    fn connectivity_threshold_is_the_critical_range() {
        let points = line(10, 2.0);
        let critical = critical_range(&points).unwrap();
        assert_eq!(critical, 2.0);
        assert!(!RangeGraph::new(points.clone(), 1.9).unwrap().is_connected());
        assert!(RangeGraph::new(points, 2.0).unwrap().is_connected());
    }

    #[test]
    fn components_partition_the_nodes() {
        // Two clusters far apart.
        let mut points = line(4, 1.0);
        points.extend((0..3).map(|i| Point::new(100.0 + i as f64, 0.0)));
        let graph = RangeGraph::new(points, 2.0).unwrap();
        let components = graph.components();
        assert_eq!(components.len(), 2);
        let total: usize = components.iter().map(Vec::len).sum();
        assert_eq!(total, 7);
        assert_eq!(components[0], vec![0, 1, 2, 3]);
        assert_eq!(components[1], vec![4, 5, 6]);
    }

    #[test]
    fn hop_distances_grow_along_a_chain() {
        let graph = RangeGraph::new(line(6, 1.0), 1.0).unwrap();
        let dist = graph.hop_distances(0);
        for (i, d) in dist.iter().enumerate() {
            assert_eq!(*d, Some(i));
        }
        // Unreachable nodes stay None when the graph is split.
        let graph = RangeGraph::new(line(6, 3.0), 1.0).unwrap();
        assert_eq!(graph.hop_distances(0)[1], None);
    }

    #[test]
    fn restricted_mst_equals_euclidean_mst_when_connected() {
        let inst = uniform_square(40, 100.0, 9);
        let unrestricted = euclidean_mst(&inst.points).unwrap();
        let range = unrestricted.max_edge_length() * 1.01;
        let restricted = range_restricted_mst(&inst.points, range).unwrap();
        assert_eq!(restricted.edges().len(), unrestricted.edges().len());
        assert!((restricted.total_length() - unrestricted.total_length()).abs() < 1e-9);
    }

    #[test]
    fn restricted_mst_reports_disconnection_with_critical_range() {
        let points = line(8, 5.0);
        match range_restricted_mst(&points, 4.0) {
            Err(MultihopError::Disconnected {
                components,
                critical_range,
            }) => {
                assert_eq!(components, 8);
                assert_eq!(critical_range, 5.0);
            }
            other => panic!("expected disconnection, got {other:?}"),
        }
    }

    #[test]
    fn edge_count_and_edges_agree() {
        let graph = RangeGraph::new(line(5, 1.0), 2.0).unwrap();
        assert_eq!(graph.edges().len(), graph.edge_count());
        // Chain with range 2: neighbours at distance 1 and 2 → edges (i,i+1),(i,i+2).
        assert_eq!(graph.edge_count(), 4 + 3);
    }

    #[test]
    fn max_range_follows_the_power_budget() {
        let model = SinrModel::new(3.0, 1.0, 1e-6).unwrap();
        let r1 = max_range_for_power(1e-3, &model, 0.0);
        let r2 = max_range_for_power(8e-3, &model, 0.0);
        // Eight-fold power with alpha = 3 doubles the range.
        assert!((r2 / r1 - 2.0).abs() < 1e-9);
        // Slack eps shrinks the range.
        assert!(max_range_for_power(1e-3, &model, 1.0) < r1);
        // Noise-free models have unbounded range.
        let noise_free = SinrModel::new(3.0, 1.0, 0.0).unwrap();
        assert_eq!(max_range_for_power(1.0, &noise_free, 0.5), f64::INFINITY);
    }
}
