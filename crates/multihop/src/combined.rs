//! The end-to-end two-tier pipeline for power-limited, multi-hop networks.
//!
//! The pipeline elects leaders, schedules every cluster's local convergecast
//! (short links, lengths bounded by the cluster radius), schedules the leader
//! overlay, and accounts for the slots of both phases. It also computes the
//! single-tier schedule of the plain MST for comparison, so experiments can
//! quantify what the two-tier organisation costs or saves.

use crate::error::MultihopError;
use crate::flooding::{flood_schedule, FloodReport};
use crate::leaders::{elect_leaders_mis, LeaderSet};
use crate::range::range_restricted_mst;
use serde::{Deserialize, Serialize};
use wagg_geometry::Point;
use wagg_mst::euclidean_mst;
use wagg_schedule::{solve_static, PowerMode, Schedule, SchedulerConfig};
use wagg_sinr::{Link, NodeId, SinrModel};

/// Configuration of the two-tier pipeline.
///
/// # Examples
///
/// ```
/// use wagg_multihop::MultihopConfig;
///
/// let config = MultihopConfig::default()
///     .with_cluster_radius(25.0)
///     .with_range(30.0);
/// assert_eq!(config.cluster_radius, 25.0);
/// assert_eq!(config.range, Some(30.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultihopConfig {
    /// Radius of the leader clusters (nodes aggregate to a leader within this
    /// distance).
    pub cluster_radius: f64,
    /// Maximum communication range imposed by the power budget, or `None`
    /// when the nodes are not power-limited.
    pub range: Option<f64>,
    /// The SINR model used for scheduling and verification.
    pub model: SinrModel,
}

impl Default for MultihopConfig {
    fn default() -> Self {
        MultihopConfig {
            cluster_radius: 50.0,
            range: None,
            model: SinrModel::default(),
        }
    }
}

impl MultihopConfig {
    /// Sets the cluster radius.
    pub fn with_cluster_radius(mut self, radius: f64) -> Self {
        self.cluster_radius = radius;
        self
    }

    /// Sets (or clears, with `f64::INFINITY`) the maximum communication range.
    pub fn with_range(mut self, range: f64) -> Self {
        self.range = if range.is_finite() { Some(range) } else { None };
        self
    }

    /// Sets the SINR model.
    pub fn with_model(mut self, model: SinrModel) -> Self {
        self.model = model;
        self
    }
}

/// The two-tier aggregation pipeline: points, sink, and configuration.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultihopPipeline {
    points: Vec<Point>,
    sink: usize,
    config: MultihopConfig,
}

impl MultihopPipeline {
    /// Creates a pipeline with the default configuration.
    pub fn new(points: Vec<Point>, sink: usize) -> Self {
        MultihopPipeline {
            points,
            sink,
            config: MultihopConfig::default(),
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: MultihopConfig) -> Self {
        self.config = config;
        self
    }

    /// The node positions.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The sink index.
    pub fn sink(&self) -> usize {
        self.sink
    }

    /// The configuration.
    pub fn config(&self) -> MultihopConfig {
        self.config
    }

    /// Runs the pipeline under the given power mode.
    ///
    /// # Errors
    ///
    /// Returns [`MultihopError::SinkOutOfRange`] / [`MultihopError::TooFewPoints`]
    /// for malformed inputs, [`MultihopError::Disconnected`] when a power
    /// range is configured and too small for connectivity, and tree errors
    /// for degenerate pointsets.
    pub fn run(&self, mode: PowerMode) -> Result<MultihopReport, MultihopError> {
        if self.points.len() < 2 {
            return Err(MultihopError::TooFewPoints {
                found: self.points.len(),
            });
        }
        if self.sink >= self.points.len() {
            return Err(MultihopError::SinkOutOfRange {
                sink: self.sink,
                nodes: self.points.len(),
            });
        }
        let scheduler = SchedulerConfig::new(mode).with_model(self.config.model);

        // Power-limited feasibility: the range-restricted MST must exist. When
        // it does, it coincides with the plain MST, which we use as the
        // single-tier baseline.
        let baseline_tree = match self.config.range {
            Some(range) => range_restricted_mst(&self.points, range)?,
            None => euclidean_mst(&self.points)?,
        };
        let baseline_links = baseline_tree.try_orient_towards(self.sink)?;
        let single_tier = solve_static(&baseline_links, scheduler);

        // Tier 1: elect leaders and schedule every cluster's local convergecast.
        let leaders = elect_leaders_mis(&self.points, self.config.cluster_radius)?;
        let mut intra_links: Vec<Link> = Vec::new();
        for &leader in &leaders.leaders {
            let cluster = leaders.cluster_of(leader);
            if cluster.len() < 2 {
                continue;
            }
            let cluster_points: Vec<Point> = cluster.iter().map(|&v| self.points[v]).collect();
            let cluster_mst = euclidean_mst(&cluster_points)?;
            let root_local = cluster
                .iter()
                .position(|&v| v == leader)
                .expect("leader is in its own cluster");
            for link in cluster_mst.try_orient_towards(root_local)? {
                let s_local = link.sender_node.expect("oriented links carry ids").index();
                let r_local = link
                    .receiver_node
                    .expect("oriented links carry ids")
                    .index();
                intra_links.push(Link::with_nodes(
                    intra_links.len(),
                    link.sender,
                    link.receiver,
                    NodeId(cluster[s_local]),
                    NodeId(cluster[r_local]),
                ));
            }
        }
        let intra_schedule = if intra_links.is_empty() {
            Schedule::new(Vec::new())
        } else {
            solve_static(&intra_links, scheduler).schedule
        };

        // Tier 2: the leader overlay.
        let overlay = flood_schedule(&self.points, &leaders, self.sink, scheduler)?;

        let max_link_length = intra_links
            .iter()
            .chain(overlay.links.iter())
            .map(Link::length)
            .fold(0.0f64, f64::max);
        let within_range = match self.config.range {
            Some(range) => max_link_length <= range + 1e-12,
            None => true,
        };

        Ok(MultihopReport {
            leader_count: leaders.leader_count(),
            cluster_radius: self.config.cluster_radius,
            intra_links: intra_links.len(),
            overlay_links: overlay.links.len(),
            intra_slots: intra_schedule.len(),
            overlay_slots: overlay.slots(),
            single_tier_slots: single_tier.schedule.len(),
            max_link_length,
            within_range,
            mode,
            leaders,
            intra_schedule,
            overlay,
        })
    }
}

/// The outcome of the two-tier pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultihopReport {
    /// Number of elected leaders.
    pub leader_count: usize,
    /// The cluster radius that was used.
    pub cluster_radius: f64,
    /// Number of intra-cluster links.
    pub intra_links: usize,
    /// Number of overlay links (including the final leader-to-sink hop).
    pub overlay_links: usize,
    /// Slots used by the intra-cluster phase.
    pub intra_slots: usize,
    /// Slots used by the overlay phase.
    pub overlay_slots: usize,
    /// Slots the plain single-tier MST schedule uses (the baseline).
    pub single_tier_slots: usize,
    /// The longest link used by either phase.
    pub max_link_length: f64,
    /// Whether every link respects the configured power range.
    pub within_range: bool,
    /// The power mode the schedules were computed for.
    pub mode: PowerMode,
    /// The elected leader set.
    pub leaders: LeaderSet,
    /// The verified intra-cluster schedule.
    pub intra_schedule: Schedule,
    /// The scheduled overlay.
    pub overlay: FloodReport,
}

impl MultihopReport {
    /// Total slots of one two-tier round (intra phase followed by overlay
    /// phase).
    pub fn total_slots(&self) -> usize {
        self.intra_slots + self.overlay_slots
    }

    /// The aggregation rate of the two-tier pipeline (`1 / total slots`).
    pub fn rate(&self) -> f64 {
        let total = self.total_slots();
        if total == 0 {
            0.0
        } else {
            1.0 / total as f64
        }
    }

    /// Ratio of two-tier slots to single-tier slots (values near 1 mean the
    /// two-tier organisation is essentially free).
    pub fn overhead_vs_single_tier(&self) -> f64 {
        if self.single_tier_slots == 0 {
            return 1.0;
        }
        self.total_slots() as f64 / self.single_tier_slots as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_instances::random::{grid, uniform_square};

    #[test]
    fn malformed_inputs_are_rejected() {
        let points = vec![Point::origin()];
        assert!(matches!(
            MultihopPipeline::new(points, 0).run(PowerMode::Uniform),
            Err(MultihopError::TooFewPoints { found: 1 })
        ));
        let points = vec![Point::origin(), Point::new(1.0, 0.0)];
        assert!(matches!(
            MultihopPipeline::new(points, 5).run(PowerMode::Uniform),
            Err(MultihopError::SinkOutOfRange { sink: 5, nodes: 2 })
        ));
    }

    #[test]
    fn too_small_power_range_is_reported_as_disconnection() {
        let inst = uniform_square(30, 500.0, 21);
        let pipeline = MultihopPipeline::new(inst.points, inst.sink)
            .with_config(MultihopConfig::default().with_range(1.0));
        assert!(matches!(
            pipeline.run(PowerMode::GlobalControl),
            Err(MultihopError::Disconnected { .. })
        ));
    }

    #[test]
    fn two_tier_pipeline_covers_every_non_sink_node() {
        let inst = uniform_square(80, 200.0, 13);
        let pipeline = MultihopPipeline::new(inst.points.clone(), inst.sink)
            .with_config(MultihopConfig::default().with_cluster_radius(40.0));
        let report = pipeline.run(PowerMode::GlobalControl).unwrap();
        // Every node either transmits on an intra-cluster link (non-leaders), or is
        // a leader handled by the overlay. Link counts add up to n - 1 plus the
        // extra leader-to-sink hop when the sink is not a leader.
        let n = inst.points.len();
        let extra_hop = usize::from(!report.leaders.is_leader(inst.sink));
        assert_eq!(report.intra_links + report.overlay_links, n - 1 + extra_hop);
        assert!(report.total_slots() >= 1);
        assert!(report.rate() > 0.0);
        assert!(report.within_range);
        // Intra-cluster links respect the cluster radius.
        assert!(report.max_link_length.is_finite());
    }

    #[test]
    fn overhead_vs_single_tier_stays_bounded_on_uniform_deployments() {
        let inst = uniform_square(120, 300.0, 29);
        let pipeline = MultihopPipeline::new(inst.points, inst.sink)
            .with_config(MultihopConfig::default().with_cluster_radius(60.0));
        let report = pipeline.run(PowerMode::GlobalControl).unwrap();
        assert!(
            report.overhead_vs_single_tier() < 6.0,
            "two-tier overhead {} unexpectedly large",
            report.overhead_vs_single_tier()
        );
    }

    #[test]
    fn power_limited_run_respects_the_range() {
        let inst = grid(8, 8, 10.0);
        let pipeline = MultihopPipeline::new(inst.points, inst.sink).with_config(
            MultihopConfig::default()
                .with_cluster_radius(25.0)
                .with_range(40.0),
        );
        let report = pipeline.run(PowerMode::mean_oblivious()).unwrap();
        assert!(report.within_range);
        assert!(report.max_link_length <= 40.0 + 1e-9);
    }

    #[test]
    fn giant_cluster_radius_degenerates_to_single_tier() {
        let inst = uniform_square(50, 100.0, 31);
        let pipeline = MultihopPipeline::new(inst.points.clone(), inst.sink)
            .with_config(MultihopConfig::default().with_cluster_radius(1e6));
        let report = pipeline.run(PowerMode::GlobalControl).unwrap();
        assert_eq!(report.leader_count, 1);
        // One cluster containing everything: the intra phase is the whole tree
        // rooted at the single leader, and the overlay is at most the final hop
        // from that leader to the sink.
        assert_eq!(report.intra_links, 49);
        assert!(report.overlay_links <= 1);
    }

    #[test]
    fn builder_round_trips_configuration() {
        let config = MultihopConfig::default()
            .with_cluster_radius(12.0)
            .with_range(f64::INFINITY)
            .with_model(SinrModel::new(4.0, 2.0, 0.0).unwrap());
        assert_eq!(config.range, None);
        let pipeline = MultihopPipeline::new(vec![Point::origin(), Point::new(1.0, 0.0)], 0)
            .with_config(config);
        assert_eq!(pipeline.config(), config);
        assert_eq!(pipeline.sink(), 0);
        assert_eq!(pipeline.points().len(), 2);
    }
}
