//! Power-limited and multi-hop extensions of the aggregation scheduler.
//!
//! The core results of the paper assume every pair of nodes can communicate
//! when given enough power (the *single-hop* setting). Section 3.1 discusses
//! the two relaxations this crate implements:
//!
//! * **Power limitations.** When senders have a maximum transmission power,
//!   only node pairs within a *range* can communicate at all. The relevant
//!   tree is then the MST of the *range-reduced* communication graph, and the
//!   paper's bounds continue to hold as long as the maximum power suffices
//!   for the longest MST edge (the interference-limited assumption).
//!   [`range`] provides the reduced graph, its connectivity analysis, the
//!   critical range, and the range-restricted MST.
//! * **Multi-hop operation.** For large networks the standard technique is to
//!   elect local leaders, aggregate within each leader's cluster, and flood
//!   or converge-cast over the overlay graph connecting the leaders. Because
//!   overlay links all have comparable lengths, the overlay schedules in a
//!   constant number of slots and does not change the asymptotic rate.
//!   [`leaders`] elects the leaders, [`flooding`] schedules the overlay, and
//!   [`combined`] assembles the full two-tier pipeline with slot accounting.
//!
//! # Examples
//!
//! ```
//! use wagg_multihop::{MultihopConfig, MultihopPipeline};
//! use wagg_instances::random::uniform_square;
//! use wagg_schedule::PowerMode;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let inst = uniform_square(80, 200.0, 3);
//! let pipeline = MultihopPipeline::new(inst.points.clone(), inst.sink)
//!     .with_config(MultihopConfig::default().with_cluster_radius(40.0));
//! let report = pipeline.run(PowerMode::GlobalControl)?;
//! assert!(report.total_slots() > 0);
//! assert!(report.leader_count <= 80);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod combined;
pub mod error;
pub mod flooding;
pub mod leaders;
pub mod range;

pub use combined::{MultihopConfig, MultihopPipeline, MultihopReport};
pub use error::MultihopError;
pub use flooding::{flood_schedule, FloodReport};
pub use leaders::{elect_leaders_grid, elect_leaders_mis, LeaderSet};
pub use range::{critical_range, max_range_for_power, range_restricted_mst, RangeGraph};
