//! Scheduling the leader overlay.
//!
//! Once leaders are elected, the long-haul part of the convergecast runs over
//! the graph connecting the leaders. Because leaders are pairwise separated
//! by at least the cluster radius and adjacent leaders of the overlay MST are
//! at most a constant factor further apart, the overlay links all have
//! comparable lengths — precisely the regime in which the paper notes that
//! flooding/aggregation runs at constant throughput, so the overlay phase
//! does not affect the asymptotic rate.

use crate::error::MultihopError;
use crate::leaders::LeaderSet;
use serde::{Deserialize, Serialize};
use wagg_geometry::Point;
use wagg_mst::euclidean_mst;
use wagg_schedule::{solve_static, Schedule, SchedulerConfig};
use wagg_sinr::{Link, NodeId};

/// The scheduled leader overlay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloodReport {
    /// The overlay links (leader-to-leader, plus the final leader-to-sink hop
    /// when the sink is not itself a leader), with node ids referring to the
    /// *original* pointset.
    pub links: Vec<Link>,
    /// The verified TDMA schedule of the overlay links.
    pub schedule: Schedule,
    /// Ratio between the longest and shortest overlay link (1.0 when there
    /// are fewer than two links). Small ratios are what make the overlay
    /// schedule short.
    pub length_ratio: f64,
}

impl FloodReport {
    /// Number of slots of the overlay schedule.
    pub fn slots(&self) -> usize {
        self.schedule.len()
    }
}

/// Builds and schedules the leader overlay: the MST of the leader positions,
/// oriented towards the leader of the sink's cluster, plus a final hop from
/// that leader to the sink when the sink is not a leader.
///
/// # Errors
///
/// Returns [`MultihopError::SinkOutOfRange`] for a bad sink index and the MST
/// construction errors for degenerate leader sets.
///
/// # Examples
///
/// ```
/// use wagg_multihop::{elect_leaders_mis, flood_schedule};
/// use wagg_instances::random::uniform_square;
/// use wagg_schedule::{PowerMode, SchedulerConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let inst = uniform_square(60, 200.0, 5);
/// let leaders = elect_leaders_mis(&inst.points, 50.0)?;
/// let config = SchedulerConfig::new(PowerMode::GlobalControl);
/// let report = flood_schedule(&inst.points, &leaders, inst.sink, config)?;
/// assert!(report.slots() >= 1);
/// # Ok(())
/// # }
/// ```
pub fn flood_schedule(
    points: &[Point],
    leaders: &LeaderSet,
    sink: usize,
    config: SchedulerConfig,
) -> Result<FloodReport, MultihopError> {
    if sink >= points.len() {
        return Err(MultihopError::SinkOutOfRange {
            sink,
            nodes: points.len(),
        });
    }
    let sink_leader = leaders.assignment[sink];

    let mut links: Vec<Link> = Vec::new();
    if leaders.leader_count() >= 2 {
        let leader_points: Vec<Point> = leaders.leaders.iter().map(|&l| points[l]).collect();
        let overlay_mst = euclidean_mst(&leader_points)?;
        let root_local = leaders
            .leaders
            .iter()
            .position(|&l| l == sink_leader)
            .expect("the sink's leader is a leader");
        for link in overlay_mst.try_orient_towards(root_local)? {
            let s_local = link
                .sender_node
                .expect("oriented links carry node ids")
                .index();
            let r_local = link
                .receiver_node
                .expect("oriented links carry node ids")
                .index();
            links.push(Link::with_nodes(
                links.len(),
                link.sender,
                link.receiver,
                NodeId(leaders.leaders[s_local]),
                NodeId(leaders.leaders[r_local]),
            ));
        }
    }
    // The final hop from the sink's leader down to the sink itself.
    if sink_leader != sink {
        links.push(Link::with_nodes(
            links.len(),
            points[sink_leader],
            points[sink],
            NodeId(sink_leader),
            NodeId(sink),
        ));
    }

    let schedule = if links.is_empty() {
        Schedule::new(Vec::new())
    } else {
        solve_static(&links, config).schedule
    };

    let length_ratio = {
        let lengths: Vec<f64> = links.iter().map(Link::length).collect();
        match (
            lengths.iter().cloned().fold(f64::INFINITY, f64::min),
            lengths.iter().cloned().fold(0.0f64, f64::max),
        ) {
            (min, max) if min > 0.0 && max > 0.0 => max / min,
            _ => 1.0,
        }
    };

    Ok(FloodReport {
        links,
        schedule,
        length_ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leaders::elect_leaders_mis;
    use wagg_instances::random::uniform_square;
    use wagg_schedule::PowerMode;

    fn config() -> SchedulerConfig {
        SchedulerConfig::new(PowerMode::GlobalControl)
    }

    #[test]
    fn bad_sink_is_rejected() {
        let inst = uniform_square(20, 50.0, 1);
        let leaders = elect_leaders_mis(&inst.points, 10.0).unwrap();
        assert!(matches!(
            flood_schedule(&inst.points, &leaders, 99, config()),
            Err(MultihopError::SinkOutOfRange {
                sink: 99,
                nodes: 20
            })
        ));
    }

    #[test]
    fn overlay_spans_all_leaders_and_reaches_the_sink() {
        let inst = uniform_square(100, 300.0, 7);
        let leaders = elect_leaders_mis(&inst.points, 60.0).unwrap();
        let report = flood_schedule(&inst.points, &leaders, inst.sink, config()).unwrap();
        let k = leaders.leader_count();
        let expected_links = if leaders.is_leader(inst.sink) {
            k - 1
        } else {
            k
        };
        assert_eq!(report.links.len(), expected_links);
        // Every overlay sender is a leader; the only non-leader receiver is the sink.
        for link in &report.links {
            let s = link.sender_node.unwrap().index();
            let r = link.receiver_node.unwrap().index();
            assert!(leaders.is_leader(s));
            assert!(leaders.is_leader(r) || r == inst.sink);
        }
        assert!(report.schedule.is_partition(report.links.len()));
        assert!(report.slots() >= 1);
    }

    #[test]
    fn single_leader_overlay_is_just_the_sink_hop() {
        let inst = uniform_square(15, 10.0, 3);
        let leaders = elect_leaders_mis(&inst.points, 1e4).unwrap();
        assert_eq!(leaders.leader_count(), 1);
        let report = flood_schedule(&inst.points, &leaders, inst.sink, config()).unwrap();
        if leaders.is_leader(inst.sink) {
            assert!(report.links.is_empty());
            assert_eq!(report.slots(), 0);
        } else {
            assert_eq!(report.links.len(), 1);
            assert_eq!(report.slots(), 1);
        }
    }

    #[test]
    fn overlay_lengths_are_comparable() {
        let inst = uniform_square(200, 400.0, 11);
        let radius = 80.0;
        let leaders = elect_leaders_mis(&inst.points, radius).unwrap();
        let report = flood_schedule(&inst.points, &leaders, inst.sink, config()).unwrap();
        // Leader separation > radius and overlay MST edges stay within a small
        // constant multiple of the radius on uniform deployments, so the
        // leader-to-leader lengths are comparable — this is what keeps the
        // overlay schedule short. (The final sink hop can be arbitrarily short
        // and is excluded here.)
        let leader_lengths: Vec<f64> = report
            .links
            .iter()
            .filter(|l| leaders.is_leader(l.receiver_node.unwrap().index()))
            .map(|l| l.length())
            .collect();
        let min = leader_lengths.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = leader_lengths.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max / min < 8.0,
            "leader link length ratio {} unexpectedly large",
            max / min
        );
        assert!(report.length_ratio >= 1.0);
        assert!(report.slots() <= report.links.len());
    }
}
