//! Leader election for the two-tier multi-hop pipeline.
//!
//! The multi-hop technique sketched in Sec. 3.1 of the paper selects *local
//! leaders*, aggregates each leader's cluster locally, and then runs the
//! convergecast over the much sparser graph connecting the leaders. Two
//! standard election rules are provided:
//!
//! * [`elect_leaders_grid`] — partition the bounding box into square cells of
//!   a given side and pick, in every non-empty cell, the node closest to the
//!   cell centre;
//! * [`elect_leaders_mis`] — a greedy maximal independent set at a given
//!   radius: leaders are pairwise more than `radius` apart and every node has
//!   a leader within `radius`.

use crate::error::MultihopError;
use serde::{Deserialize, Serialize};
use wagg_geometry::{BoundingBox, Point};

/// The outcome of a leader election: which nodes lead and which leader each
/// node is assigned to.
///
/// # Examples
///
/// ```
/// use wagg_geometry::Point;
/// use wagg_multihop::elect_leaders_mis;
///
/// let points: Vec<Point> = (0..10).map(|i| Point::new(i as f64, 0.0)).collect();
/// let leaders = elect_leaders_mis(&points, 2.5).unwrap();
/// assert!(leaders.leader_count() >= 3);
/// assert!(leaders.max_assignment_distance(&points) <= 2.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaderSet {
    /// Indices of the elected leaders, sorted increasingly.
    pub leaders: Vec<usize>,
    /// `assignment[v]` = index of the leader node that `v` belongs to
    /// (leaders are assigned to themselves).
    pub assignment: Vec<usize>,
}

impl LeaderSet {
    /// Number of leaders.
    pub fn leader_count(&self) -> usize {
        self.leaders.len()
    }

    /// Whether `v` is a leader.
    pub fn is_leader(&self, v: usize) -> bool {
        self.leaders.binary_search(&v).is_ok()
    }

    /// The members of a leader's cluster (including the leader itself).
    pub fn cluster_of(&self, leader: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(v, &l)| (l == leader).then_some(v))
            .collect()
    }

    /// Sizes of every cluster, in the order of `leaders`.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        self.leaders
            .iter()
            .map(|&l| self.assignment.iter().filter(|&&a| a == l).count())
            .collect()
    }

    /// The largest node-to-assigned-leader distance.
    pub fn max_assignment_distance(&self, points: &[Point]) -> f64 {
        self.assignment
            .iter()
            .enumerate()
            .map(|(v, &l)| points[v].distance(points[l]))
            .fold(0.0, f64::max)
    }

    /// The smallest pairwise distance between two distinct leaders
    /// (`f64::INFINITY` when there is a single leader).
    pub fn min_leader_separation(&self, points: &[Point]) -> f64 {
        let mut min = f64::INFINITY;
        for (i, &a) in self.leaders.iter().enumerate() {
            for &b in &self.leaders[i + 1..] {
                min = min.min(points[a].distance(points[b]));
            }
        }
        min
    }
}

fn validate(points: &[Point], radius: f64) -> Result<(), MultihopError> {
    if points.is_empty() {
        return Err(MultihopError::TooFewPoints { found: 0 });
    }
    if radius <= 0.0 || !radius.is_finite() {
        return Err(MultihopError::InvalidRadius { radius });
    }
    Ok(())
}

/// Elects leaders by a greedy maximal independent set at distance `radius`:
/// nodes are processed in index order and selected when no earlier leader is
/// within `radius`; every node is then assigned to its closest leader.
///
/// The resulting leaders are pairwise more than `radius` apart and every node
/// is within `radius` of its assigned leader.
///
/// # Errors
///
/// Returns [`MultihopError::TooFewPoints`] for an empty pointset and
/// [`MultihopError::InvalidRadius`] for a non-positive radius.
pub fn elect_leaders_mis(points: &[Point], radius: f64) -> Result<LeaderSet, MultihopError> {
    validate(points, radius)?;
    let mut leaders: Vec<usize> = Vec::new();
    for (v, p) in points.iter().enumerate() {
        if leaders.iter().all(|&l| points[l].distance(*p) > radius) {
            leaders.push(v);
        }
    }
    let assignment = assign_to_closest(points, &leaders);
    Ok(LeaderSet {
        leaders,
        assignment,
    })
}

/// Elects leaders by partitioning the bounding box into square cells of side
/// `cell_side` and choosing, in every non-empty cell, the node closest to the
/// cell centre; every node is then assigned to its closest leader.
///
/// # Errors
///
/// Returns [`MultihopError::TooFewPoints`] for an empty pointset and
/// [`MultihopError::InvalidRadius`] for a non-positive cell side.
pub fn elect_leaders_grid(points: &[Point], cell_side: f64) -> Result<LeaderSet, MultihopError> {
    validate(points, cell_side)?;
    let bbox = BoundingBox::of_points(points).ok_or(MultihopError::TooFewPoints { found: 0 })?;
    let cell_of = |p: &Point| -> (i64, i64) {
        (
            ((p.x - bbox.min_x) / cell_side).floor() as i64,
            ((p.y - bbox.min_y) / cell_side).floor() as i64,
        )
    };
    use std::collections::HashMap;
    let mut best_in_cell: HashMap<(i64, i64), (usize, f64)> = HashMap::new();
    for (v, p) in points.iter().enumerate() {
        let cell = cell_of(p);
        let centre = Point::new(
            bbox.min_x + (cell.0 as f64 + 0.5) * cell_side,
            bbox.min_y + (cell.1 as f64 + 0.5) * cell_side,
        );
        let d = p.distance(centre);
        match best_in_cell.get(&cell) {
            Some(&(_, best)) if best <= d => {}
            _ => {
                best_in_cell.insert(cell, (v, d));
            }
        }
    }
    let mut leaders: Vec<usize> = best_in_cell.values().map(|&(v, _)| v).collect();
    leaders.sort_unstable();
    let assignment = assign_to_closest(points, &leaders);
    Ok(LeaderSet {
        leaders,
        assignment,
    })
}

fn assign_to_closest(points: &[Point], leaders: &[usize]) -> Vec<usize> {
    points
        .iter()
        .map(|p| {
            *leaders
                .iter()
                .min_by(|&&a, &&b| {
                    points[a]
                        .distance(*p)
                        .partial_cmp(&points[b].distance(*p))
                        .expect("finite distances")
                })
                .expect("at least one leader")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wagg_instances::random::uniform_square;

    #[test]
    fn empty_and_invalid_inputs_are_rejected() {
        assert!(elect_leaders_mis(&[], 1.0).is_err());
        let points = vec![Point::origin(), Point::new(1.0, 0.0)];
        assert!(elect_leaders_mis(&points, 0.0).is_err());
        assert!(elect_leaders_grid(&points, f64::INFINITY).is_err());
    }

    #[test]
    fn mis_leaders_are_separated_and_cover_all_nodes() {
        let inst = uniform_square(120, 200.0, 17);
        let radius = 30.0;
        let leaders = elect_leaders_mis(&inst.points, radius).unwrap();
        assert!(leaders.min_leader_separation(&inst.points) > radius);
        assert!(leaders.max_assignment_distance(&inst.points) <= radius);
        assert_eq!(leaders.assignment.len(), 120);
        // Every node's assigned leader is a leader.
        for &l in &leaders.assignment {
            assert!(leaders.is_leader(l));
        }
        // Cluster sizes sum to the population.
        assert_eq!(leaders.cluster_sizes().iter().sum::<usize>(), 120);
    }

    #[test]
    fn grid_leaders_cover_all_nodes_within_a_cell_diagonal() {
        let inst = uniform_square(150, 300.0, 23);
        let cell = 60.0;
        let leaders = elect_leaders_grid(&inst.points, cell).unwrap();
        // Assigned to the *closest* leader, so the distance is at most the
        // distance to the own-cell leader, which is at most the cell diagonal.
        assert!(leaders.max_assignment_distance(&inst.points) <= cell * 2f64.sqrt() + 1e-9);
        assert!(leaders.leader_count() <= 36); // at most (300/60 + 1)^2 cells
        assert!(leaders.leader_count() >= 4);
    }

    #[test]
    fn single_cluster_when_radius_dominates() {
        let inst = uniform_square(30, 10.0, 3);
        let leaders = elect_leaders_mis(&inst.points, 1e4).unwrap();
        assert_eq!(leaders.leader_count(), 1);
        assert_eq!(leaders.cluster_of(leaders.leaders[0]).len(), 30);
        assert_eq!(leaders.min_leader_separation(&inst.points), f64::INFINITY);
    }

    #[test]
    fn every_node_is_its_own_leader_for_tiny_radius() {
        let points: Vec<Point> = (0..8).map(|i| Point::new(i as f64 * 5.0, 0.0)).collect();
        let leaders = elect_leaders_mis(&points, 0.5).unwrap();
        assert_eq!(leaders.leader_count(), 8);
        for (v, &l) in leaders.assignment.iter().enumerate() {
            assert_eq!(v, l);
        }
    }

    #[test]
    fn cluster_of_lists_exactly_the_assigned_nodes() {
        let points: Vec<Point> = (0..12).map(|i| Point::new(i as f64, 0.0)).collect();
        let leaders = elect_leaders_mis(&points, 3.5).unwrap();
        for &l in &leaders.leaders {
            for v in leaders.cluster_of(l) {
                assert_eq!(leaders.assignment[v], l);
            }
        }
    }
}
