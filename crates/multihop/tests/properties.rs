//! Property-based tests for the power-limited / multi-hop layer.

use proptest::prelude::*;
use wagg_instances::random::uniform_square;
use wagg_multihop::{
    critical_range, elect_leaders_grid, elect_leaders_mis, range_restricted_mst, MultihopConfig,
    MultihopPipeline, RangeGraph,
};
use wagg_schedule::PowerMode;

fn deployment() -> impl Strategy<Value = (usize, f64, u64)> {
    (8usize..60, 50.0f64..400.0, 0u64..500)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn critical_range_is_the_connectivity_threshold((n, side, seed) in deployment()) {
        let inst = uniform_square(n, side, seed);
        let critical = critical_range(&inst.points).unwrap();
        // Just below the threshold the reduced graph is disconnected, at the
        // threshold it is connected.
        let above = RangeGraph::new(inst.points.clone(), critical * 1.0001).unwrap();
        prop_assert!(above.is_connected());
        let below = RangeGraph::new(inst.points.clone(), critical * 0.9999).unwrap();
        prop_assert!(!below.is_connected());
    }

    #[test]
    fn restricted_mst_matches_euclidean_mst_at_sufficient_range((n, side, seed) in deployment()) {
        let inst = uniform_square(n, side, seed);
        let critical = critical_range(&inst.points).unwrap();
        let tree = range_restricted_mst(&inst.points, critical).unwrap();
        let unrestricted = wagg_mst::euclidean_mst(&inst.points).unwrap();
        prop_assert!((tree.total_length() - unrestricted.total_length()).abs() < 1e-6);
    }

    #[test]
    fn mis_leaders_are_separated_and_cover((n, side, seed) in deployment(), radius in 10.0f64..120.0) {
        let inst = uniform_square(n, side, seed);
        let leaders = elect_leaders_mis(&inst.points, radius).unwrap();
        prop_assert!(leaders.min_leader_separation(&inst.points) > radius);
        prop_assert!(leaders.max_assignment_distance(&inst.points) <= radius + 1e-9);
        prop_assert_eq!(leaders.cluster_sizes().iter().sum::<usize>(), n);
    }

    #[test]
    fn grid_leaders_cover_within_a_diagonal((n, side, seed) in deployment(), cell in 20.0f64..150.0) {
        let inst = uniform_square(n, side, seed);
        let leaders = elect_leaders_grid(&inst.points, cell).unwrap();
        prop_assert!(leaders.max_assignment_distance(&inst.points) <= cell * 2f64.sqrt() + 1e-9);
    }

    #[test]
    fn pipeline_link_counts_add_up((n, side, seed) in deployment(), radius in 20.0f64..150.0) {
        let inst = uniform_square(n, side, seed);
        let pipeline = MultihopPipeline::new(inst.points.clone(), inst.sink)
            .with_config(MultihopConfig::default().with_cluster_radius(radius));
        let report = pipeline.run(PowerMode::GlobalControl).unwrap();
        let extra_hop = usize::from(!report.leaders.is_leader(inst.sink));
        prop_assert_eq!(report.intra_links + report.overlay_links, n - 1 + extra_hop);
        prop_assert!(report.within_range);
        prop_assert!(report.total_slots() >= 1);
    }
}
